"""Command-line interface.

Drives the full pipeline from a shell::

    repro-video generate  --out ads.npz --preset precision --seed 7
    repro-video stats     --dataset ads.npz
    repro-video summarize --dataset ads.npz --epsilon 0.3
    repro-video build     --dataset ads.npz --epsilon 0.3 --out ads-index
    repro-video query     --index ads-index --dataset ads.npz \\
                          --video-id 0 --k 10

``build`` writes three files under the ``--out`` prefix: ``<out>.btree``
(the B+-tree pages), ``<out>.heap`` (the flat ViTri file) and
``<out>.meta.json`` (epsilon, reference point, per-video frame counts).
``query`` reopens them, summarises the query video with the stored
epsilon, and prints the ranked results plus the exact query cost.

``repro-video check`` opens an index built by ``build`` and verifies its
physical and structural integrity: every page frame's CRC32 checksum,
every B+-tree invariant (via the tree checker) and the heap file's slot
accounting.  Exit code 0 means consistent, 1 means corruption.

``repro-video lint`` runs the project's own static-analysis pass
(vilint; see ``docs/static_analysis.md``) over ``src/repro`` or any
given paths.

``repro-video bench-serve`` builds an in-memory index over a simulated
disk (``--read-latency`` seconds per physical page read) and sweeps the
concurrent query engine across worker counts, printing a throughput
table and writing the full metrics to ``--out`` (JSON).

``repro-video bench-shard`` does the same for the sharded scatter-gather
router, sweeping fleet sizes instead of worker counts; every fleet's
rankings are asserted identical to the 1-shard reference.  ``check
--sharded`` verifies a durable fleet directory: each shard's page
checksums, B+-tree invariants and heap accounting, the fleet-level
placement report, and the persisted ``health.json`` (unknown shards,
invalid breaker states, shards that would be skipped at open time).

``repro-video bench-faults`` runs the deterministic fault sweep
(hard-down / transient / straggler / timeout scenarios against a sharded
fleet) and reports availability plus tail latency; ``repro-video
fleet-health`` opens a durable fleet and prints each shard's health
counters and breaker state.

``repro-video serve`` stands a durable fleet directory up as a network
service: one shard server per shard (in-process threads or spawned
subprocesses), a read-only scatter router over remote proxies, and a
TCP front door with bounded admission.  Ctrl-C drains gracefully.
``repro-video bench-service`` runs the end-to-end burst benchmark
against that stack (baseline pass, then every client offering
``--overadmission`` times its admission quota) and reports availability,
typed-shed counts and tail latency.

``repro-video bench-replication`` measures read scaling for one shard
group — a durable primary plus WAL-shipped read replicas — under a
zipf-skewed closed-loop stream, sweeping replica counts and reporting
throughput plus per-tier cache hit rates; every configuration's
rankings are asserted bit-identical to primary-only serving.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.index import VitriIndex
from repro.core.summarize import summarize_video
from repro.datasets.loader import VideoDataset
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.eval.harness import format_table

__all__ = ["main"]

_PRESETS = {
    "default": lambda **kw: DatasetConfig(**kw),
    "precision": DatasetConfig.precision_preset,
    "indexing": DatasetConfig.indexing_preset,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    overrides = {}
    if args.families is not None:
        overrides["num_families"] = args.families
    if args.family_size is not None:
        overrides["family_size"] = args.family_size
    if args.distractors is not None:
        overrides["num_distractors"] = args.distractors
    config = _PRESETS[args.preset](**overrides)
    dataset = generate_dataset(config, seed=args.seed)
    dataset.save(args.out)
    print(
        f"wrote {dataset.num_videos} videos / {dataset.total_frames} frames "
        f"({dataset.dim}-d) to {args.out}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = VideoDataset.load(args.dataset)
    rows = dataset.duration_table()
    print(
        format_table(
            ["Frames per video", "Videos", "Frames"],
            rows,
            title=f"{args.dataset}: {dataset.num_videos} videos, "
            f"{dataset.total_frames} frames, dim {dataset.dim}",
        )
    )
    return 0


def _summaries(dataset: VideoDataset, epsilon: float):
    return [
        summarize_video(i, dataset.frames(i), epsilon, seed=i)
        for i in range(dataset.num_videos)
    ]


def _cmd_summarize(args: argparse.Namespace) -> int:
    dataset = VideoDataset.load(args.dataset)
    summaries = _summaries(dataset, args.epsilon)
    clusters = sum(len(s) for s in summaries)
    print(
        format_table(
            ["epsilon", "clusters", "avg cluster size", "clusters/video"],
            [
                (
                    args.epsilon,
                    clusters,
                    round(dataset.total_frames / clusters, 1),
                    round(clusters / dataset.num_videos, 2),
                )
            ],
            title=f"summary statistics for {args.dataset}",
        )
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.summary_io import load_summaries, save_summaries

    dataset = VideoDataset.load(args.dataset)
    if args.summaries:
        summaries, _ = load_summaries(
            args.summaries, expected_epsilon=args.epsilon
        )
    else:
        summaries = _summaries(dataset, args.epsilon)
        if args.save_summaries:
            save_summaries(args.save_summaries, summaries, args.epsilon)
    index = VitriIndex.build(
        summaries,
        args.epsilon,
        reference=args.reference,
        btree_path=f"{args.out}.btree",
        heap_path=f"{args.out}.heap",
    )
    index.flush()
    index.save_meta(f"{args.out}.meta.json")
    print(
        f"built {index.num_vitris} ViTris over {index.num_videos} videos "
        f"-> {args.out}.btree / {args.out}.heap / {args.out}.meta.json"
    )
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.eval.serving import make_query_stream, run_serving_benchmark
    from repro.storage.buffer_pool import BufferPool
    from repro.storage.pager import Pager

    if args.dataset:
        dataset = VideoDataset.load(args.dataset)
    else:
        dataset = generate_dataset(seed=args.seed)
    summaries = _summaries(dataset, args.epsilon)
    index = VitriIndex.build(
        summaries,
        args.epsilon,
        btree_pool=BufferPool(
            Pager(read_latency=args.read_latency),
            capacity=args.buffer_capacity,
        ),
    )
    try:
        worker_counts = tuple(
            int(part) for part in args.workers.split(",") if part
        )
    except ValueError:
        print(
            f"error: --workers must be comma-separated ints, "
            f"got {args.workers!r}",
            file=sys.stderr,
        )
        return 1
    stream = make_query_stream(
        summaries,
        args.queries,
        seed=args.seed,
        repeat_fraction=args.repeat_fraction,
    )
    results = run_serving_benchmark(
        index,
        stream,
        args.k,
        worker_counts=worker_counts,
        buffer_capacity=args.buffer_capacity,
        cache_size=args.cache_size,
        cold=not args.warm,
    )
    rows = [
        (
            run["workers"],
            f"{run['qps']:.1f}",
            f"{run['speedup_vs_single']:.2f}x",
            f"{run['latency_p50'] * 1e3:.1f}",
            f"{run['latency_p95'] * 1e3:.1f}",
            f"{run['cache_hit_rate']:.2f}",
            run["total_physical_reads"],
        )
        for run in results["runs"]
    ]
    print(
        format_table(
            [
                "workers",
                "QPS",
                "speedup",
                "p50 ms",
                "p95 ms",
                "hit rate",
                "reads",
            ],
            rows,
            title=(
                f"serving {results['queries']} queries, k={results['k']}, "
                f"read latency {args.read_latency * 1e3:.1f} ms"
            ),
        )
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"\nwrote metrics to {args.out}")
    return 0


def _cmd_bench_shard(args: argparse.Namespace) -> int:
    import json

    from repro.eval.serving import make_query_stream
    from repro.eval.sharding import run_sharding_benchmark

    if args.dataset:
        dataset = VideoDataset.load(args.dataset)
    else:
        dataset = generate_dataset(seed=args.seed)
    summaries = _summaries(dataset, args.epsilon)
    try:
        shard_counts = tuple(
            int(part) for part in args.shards.split(",") if part
        )
    except ValueError:
        print(
            f"error: --shards must be comma-separated ints, "
            f"got {args.shards!r}",
            file=sys.stderr,
        )
        return 1
    stream = make_query_stream(
        summaries, args.queries, seed=args.seed, repeat_fraction=0.0
    )
    try:
        results = run_sharding_benchmark(
            summaries,
            stream,
            args.k,
            epsilon=args.epsilon,
            shard_counts=shard_counts,
            partitioner=args.partitioner,
            read_latency=args.read_latency,
            buffer_capacity=args.buffer_capacity,
            cache_size=0,
            prune=not args.no_prune,
            cold=True,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [
        (
            run["shards"],
            f"{run['qps']:.1f}",
            f"{run['speedup_vs_single']:.2f}x",
            f"{run['latency_p50'] * 1e3:.1f}",
            f"{run['latency_p95'] * 1e3:.1f}",
            f"{run['pruned_fraction']:.2f}",
            run["total_physical_reads"],
        )
        for run in results["runs"]
    ]
    print(
        format_table(
            ["shards", "QPS", "speedup", "p50 ms", "p95 ms", "pruned", "reads"],
            rows,
            title=(
                f"scatter-gather: {results['queries']} queries, "
                f"k={results['k']}, {args.partitioner} placement, "
                f"read latency {args.read_latency * 1e3:.1f} ms"
            ),
        )
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"\nwrote metrics to {args.out}")
    return 0


def _cmd_bench_faults(args: argparse.Namespace) -> int:
    import json

    from repro.eval.faults import run_fault_benchmark
    from repro.eval.serving import make_query_stream

    if args.dataset:
        dataset = VideoDataset.load(args.dataset)
    else:
        dataset = generate_dataset(seed=args.seed)
    summaries = _summaries(dataset, args.epsilon)
    stream = make_query_stream(
        summaries, args.queries, seed=args.seed, repeat_fraction=0.0
    )
    try:
        results = run_fault_benchmark(
            summaries,
            stream,
            args.k,
            epsilon=args.epsilon,
            num_shards=args.shards,
            seed=args.seed,
            down_shard=args.down_shard,
            buffer_capacity=args.buffer_capacity,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [
        (
            entry["scenario"],
            f"{entry['availability']:.3f}",
            entry["degraded_queries"],
            entry["retries"],
            entry["hedges"],
            entry["timeouts"],
            entry["breaker_trips"],
            f"{entry['latency_p99'] * 1e3:.1f}",
        )
        for entry in results["scenarios"]
    ]
    print(
        format_table(
            [
                "scenario",
                "avail",
                "degraded",
                "retries",
                "hedges",
                "timeouts",
                "trips",
                "p99 ms",
            ],
            rows,
            title=(
                f"fault sweep: {results['queries']} queries, "
                f"k={results['k']}, {results['num_shards']} shards, "
                f"shard {results['down_shard']} faulted"
            ),
        )
    )
    print(
        f"\navailability: {results['availability']:.4f} "
        f"(p99 latency {results['p99_latency'] * 1e3:.1f} ms)"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote metrics to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.frontdoor import FrontDoorServer, NetworkFleet

    try:
        fleet = NetworkFleet(
            args.index,
            mode=args.mode,
            workers=args.workers,
            max_queue=args.max_queue,
            rate=args.rate,
            burst=args.burst,
            drain_timeout=args.drain_timeout,
        )
    except (ValueError, OSError) as exc:
        print(f"error: cannot open fleet: {exc}", file=sys.stderr)
        return 1
    try:
        server = FrontDoorServer(
            fleet.frontdoor, host=args.host, port=args.port
        )
        host, port = server.run_in_thread()
        status = fleet.status()
        videos = sum(
            entry["videos"] for entry in status["shards"].values()
        )
        print(
            f"serving {videos} videos across {fleet.num_shards} "
            f"{args.mode}-mode shard server(s) on {host}:{port}"
        )
        print("Ctrl-C drains the front door and shard servers, then exits")
        try:
            while not server.wait_closed(1.0):
                pass
        except KeyboardInterrupt:
            print("\ndraining...")
        server.stop()
        server.wait_closed(args.drain_timeout + 5.0)
    finally:
        fleet.close()
    print("drained; all shard servers stopped")
    return 0


def _cmd_bench_service(args: argparse.Namespace) -> int:
    import json

    from repro.eval.service import run_service_benchmark
    from repro.eval.serving import make_query_stream

    if args.dataset:
        dataset = VideoDataset.load(args.dataset)
    else:
        dataset = generate_dataset(seed=args.seed)
    summaries = _summaries(dataset, args.epsilon)
    stream = make_query_stream(
        summaries, args.queries, seed=args.seed, repeat_fraction=0.0
    )
    try:
        results = run_service_benchmark(
            summaries,
            stream,
            args.k,
            epsilon=args.epsilon,
            num_shards=args.shards,
            workers=args.workers,
            max_queue=args.max_queue,
            clients=args.clients,
            overadmission=args.overadmission,
        )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    baseline, burst = results["baseline"], results["burst"]
    rows = [
        (
            "baseline",
            baseline["latency"]["samples"],
            baseline["latency"]["samples"],
            0,
            "1.000",
            f"{baseline['latency']['p50_ms']:.1f}",
            f"{baseline['latency']['p99_ms']:.1f}",
        ),
        (
            "burst",
            burst["offered"],
            burst["admitted"],
            burst["shed"],
            f"{burst['availability']:.3f}",
            f"{burst['latency']['p50_ms']:.1f}",
            f"{burst['latency']['p99_ms']:.1f}",
        ),
    ]
    print(
        format_table(
            [
                "phase",
                "offered",
                "admitted",
                "shed",
                "avail",
                "p50 ms",
                "p99 ms",
            ],
            rows,
            title=(
                f"network service: {results['num_shards']} shards, "
                f"{results['clients']} clients at "
                f"{results['overadmission']:.1f}x quota, k={results['k']}"
            ),
        )
    )
    print(
        f"\navailability: {burst['availability']:.4f} "
        f"(p99 {burst['latency']['p99_ms']:.1f} ms, "
        f"bound {results['p99_bound_ms']:.1f} ms)"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote metrics to {args.out}")
    return 0


def _cmd_bench_replication(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.eval.replication import run_replication_benchmark
    from repro.eval.serving import make_query_stream

    if args.dataset:
        dataset = VideoDataset.load(args.dataset)
    else:
        dataset = generate_dataset(
            DatasetConfig(
                dim=8, num_families=20, family_size=3, num_distractors=180
            ),
            seed=args.seed,
        )
    summaries = _summaries(dataset, args.epsilon)
    stream = make_query_stream(
        summaries,
        args.queries,
        seed=args.seed,
        repeat_fraction=args.repeat_fraction,
        skew=args.skew,
    )
    try:
        with tempfile.TemporaryDirectory(prefix="bench-replication-") as tmp:
            results = run_replication_benchmark(
                tmp,
                summaries,
                stream,
                epsilon=args.epsilon,
                replica_counts=tuple(args.replicas),
                clients=args.clients,
                warmup=args.warmup,
                seed=args.seed,
                buffer_capacity=args.buffer_capacity,
                read_latency=args.read_latency,
                cache_size=args.cache_size,
                range_cache_size=args.range_cache_size,
            )
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rows = [
        (
            run["replicas"],
            run["copies"],
            f"{run['qps']:.1f}",
            f"{run['latency_p50_ms']:.1f}",
            f"{run['latency_p95_ms']:.1f}",
            f"{run['result_cache_hit_rate']:.2f}",
            f"{run['range_cache_hit_rate']:.2f}",
            f"{run['combined_cache_hit_rate']:.2f}",
            run["fallbacks_to_primary"],
        )
        for run in results["runs"]
    ]
    print(
        format_table(
            [
                "replicas",
                "copies",
                "QPS",
                "p50 ms",
                "p95 ms",
                "L1 hit",
                "L2 hit",
                "combined",
                "fallbacks",
            ],
            rows,
            title=(
                f"replicated reads: {results['measured']} measured queries, "
                f"zipf s={args.skew}, {results['clients']} clients, "
                f"{args.read_latency * 1e3:.1f} ms/read simulated disk"
            ),
        )
    )
    print(
        f"\nspeedup at {results['replica_counts'][-1]} replicas: "
        f"{results['speedup_replicated']:.2f}x "
        f"(combined cache hit rate "
        f"{results['combined_cache_hit_rate']:.2f})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2)
        print(f"wrote metrics to {args.out}")
    return 0


def _cmd_fleet_health(args: argparse.Namespace) -> int:
    from repro.shard.resilience import CircuitBreaker
    from repro.shard.router import ShardedVideoDatabase
    from repro.storage.serialization import ChecksumError

    try:
        # Reopening restores health.json (when present) into the
        # registry, including reopening any persisted open breakers.
        fleet = ShardedVideoDatabase(path=args.index)
    except (ChecksumError, ValueError, OSError) as exc:
        print(f"error: cannot open fleet: {exc}", file=sys.stderr)
        return 1
    report = fleet.fleet_health()
    rows = [
        (
            shard_id,
            entry["breaker_state"],
            entry["successes"],
            entry["failures"],
            entry["retries"],
            entry["hedges_fired"],
            entry["timeouts"],
            entry["trips"],
            f"{entry['p95_latency'] * 1e3:.1f}",
        )
        for shard_id, entry in report.items()
    ]
    print(
        format_table(
            [
                "shard",
                "breaker",
                "ok",
                "fail",
                "retries",
                "hedges",
                "timeouts",
                "trips",
                "p95 ms",
            ],
            rows,
            title=f"fleet health: {len(fleet)} videos across "
            f"{fleet.num_shards} shards",
        )
    )
    skipped = [
        shard_id
        for shard_id, entry in report.items()
        if entry["breaker_state"] != CircuitBreaker.CLOSED
    ]
    if skipped:
        print(
            f"\nwarning: shard(s) {skipped} have non-closed breakers and "
            "would be skipped by degraded queries until a probe succeeds"
        )
    fleet.close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _check_fleet_health_file(path: str, num_shards: int) -> list[str]:
    """Verify ``health.json`` (if present) against the fleet manifest.

    Returns failure strings; prints the shards whose persisted breaker
    state would make degraded queries skip them at open time.
    """
    import json

    from repro.shard.resilience import CircuitBreaker

    health_path = os.path.join(path, "health.json")
    if not os.path.exists(health_path):
        print("health: no health.json (fleet never served resilient queries)")
        return []
    try:
        with open(health_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        entries = {int(key): dict(value) for key, value in payload.items()}
    except (ValueError, OSError) as exc:
        return [f"health: cannot parse health.json: {exc}"]
    failures: list[str] = []
    valid_states = (
        CircuitBreaker.CLOSED,
        CircuitBreaker.OPEN,
        CircuitBreaker.HALF_OPEN,
    )
    skipped: list[int] = []
    for shard_id, entry in sorted(entries.items()):
        if not 0 <= shard_id < num_shards:
            failures.append(
                f"health: entry for shard {shard_id} but the manifest "
                f"lists only shards 0..{num_shards - 1}"
            )
            continue
        state = entry.get("breaker_state", CircuitBreaker.CLOSED)
        if state not in valid_states:
            failures.append(
                f"health: shard {shard_id} has unknown breaker state "
                f"{state!r}"
            )
            continue
        if state != CircuitBreaker.CLOSED:
            skipped.append(shard_id)
    if skipped:
        print(
            f"health: shard(s) {skipped} persisted non-closed breakers — "
            "degraded queries will skip them at open until a probe succeeds"
        )
    else:
        print(f"health: {len(entries)} shard record(s), all breakers closed")
    return failures


def _check_segment_log(path: str, label: str) -> list[str]:
    """Chain-verify one replication segment log file.

    Runs what a replica's apply gauntlet checks minus the apply itself:
    per-frame CRCs, gap-free ascending sequence numbers, and the
    base/after hash chain (see
    :func:`repro.replication.segments.verify_segment_chain`).  A
    truncated or corrupt log is caught *here*, offline, instead of at
    replica apply time.  Returns failure strings.
    """
    from repro.replication.segments import (
        SegmentFrameError,
        verify_segment_chain,
    )

    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return [f"{label}: cannot read segment log: {exc}"]
    try:
        summary = verify_segment_chain(raw)
    except SegmentFrameError as exc:
        return [f"{label}: segment chain broken: {exc}"]
    if summary["segments"] == 0:
        print(f"{label}: segment log empty (valid chain of length 0)")
    else:
        print(
            f"{label}: {summary['segments']} segment(s), "
            f"seq {summary['first_seq']}..{summary['last_seq']}, "
            "hash chain verified"
        )
    return []


def _check_segment_logs(root: str) -> list[str]:
    """Verify every ``segments.log`` under a fleet directory."""
    failures: list[str] = []
    candidates = [(os.path.join(root, "segments.log"), "segments")]
    for entry in sorted(os.listdir(root)):
        shard_log = os.path.join(root, entry, "segments.log")
        if entry.startswith("shard-") and os.path.exists(shard_log):
            candidates.append((shard_log, f"{entry} segments"))
    found = False
    for path, label in candidates:
        if os.path.exists(path):
            found = True
            failures.extend(_check_segment_log(path, label))
    if not found:
        print("segments: no segments.log (fleet never shipped WAL segments)")
    return failures


def _check_sharded(args: argparse.Namespace) -> int:
    from repro.btree.checker import check_tree
    from repro.shard.router import ShardedVideoDatabase
    from repro.storage.serialization import ChecksumError

    try:
        # Reopening performs each shard's standard WAL recovery and the
        # fleet's reconciliation (exactly what a restart would do).
        fleet = ShardedVideoDatabase(path=args.index)
    except (ChecksumError, ValueError, OSError) as exc:
        print(f"error: cannot open fleet: {exc}", file=sys.stderr)
        return 1
    failures: list[str] = []
    failures.extend(_check_fleet_health_file(args.index, fleet.num_shards))
    failures.extend(_check_segment_logs(args.index))
    misplaced = 0
    for shard in fleet.shards:
        label = f"shard {shard.shard_id}"
        if len(shard) == 0:
            print(f"{label}: empty")
            continue
        index = shard.database.index
        try:
            pages = index.btree.buffer_pool.pager.verify_checksums()
            pages += index.heap.buffer_pool.pager.verify_checksums()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{label} checksum: {exc}")
            continue
        try:
            check_tree(index.btree)
        except AssertionError as exc:
            failures.append(f"{label} btree: {exc}")
        heap_violations = index.heap.verify()
        failures.extend(f"{label} heap: {v}" for v in heap_violations)
        for summary in shard.summaries():
            if fleet.partitioner.shard_for(summary) != shard.shard_id:
                misplaced += 1
        print(
            f"{label}: {len(shard)} video(s), {pages} page frame(s) "
            "verified, invariants hold"
        )
    if misplaced:
        # Legal after a crash mid-rebalance (placement is a performance
        # matter, not a correctness one) — report, don't fail.
        print(f"note: {misplaced} video(s) off their partitioned shard")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    print(
        f"{args.index}: consistent ({len(fleet)} videos across "
        f"{fleet.num_shards} shards, {fleet.partitioner.name} placement)"
    )
    fleet.close()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.btree.checker import check_tree
    from repro.storage.serialization import ChecksumError

    if getattr(args, "segments", None):
        failures = _check_segment_log(args.segments, args.segments)
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        if failures:
            return 1
        if args.index is None:
            return 0
    if args.index is None:
        print("error: nothing to check (give an index or --segments)",
              file=sys.stderr)
        return 1
    if args.sharded:
        return _check_sharded(args)
    try:
        index = VitriIndex.open(
            f"{args.index}.btree",
            f"{args.index}.heap",
            f"{args.index}.meta.json",
        )
    except (ChecksumError, ValueError, OSError) as exc:
        # Opening already scans the heap, so corruption can surface here.
        print(f"error: cannot open index: {exc}", file=sys.stderr)
        return 1
    failures: list[str] = []
    try:
        pages = index.btree.buffer_pool.pager.verify_checksums()
        pages += index.heap.buffer_pool.pager.verify_checksums()
        print(f"checksums: {pages} page frame(s) verified")
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        failures.append(f"checksum: {exc}")
    try:
        check_tree(index.btree)
        print(f"b+tree: {index.num_vitris} entries, invariants hold")
    except AssertionError as exc:
        failures.append(f"btree: {exc}")
    heap_violations = index.heap.verify()
    if heap_violations:
        failures.extend(f"heap: {v}" for v in heap_violations)
    else:
        print(f"heap: {index.heap.num_records} record(s), accounting holds")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    print(f"{args.index}: consistent ({index.num_videos} videos)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = VitriIndex.open(
        f"{args.index}.btree",
        f"{args.index}.heap",
        f"{args.index}.meta.json",
    )
    dataset = VideoDataset.load(args.dataset)
    if args.video_id < 0 or args.video_id >= dataset.num_videos:
        print(
            f"error: video-id {args.video_id} out of range "
            f"[0, {dataset.num_videos})",
            file=sys.stderr,
        )
        return 1
    query = summarize_video(
        args.video_id,
        dataset.frames(args.video_id),
        index.epsilon,
        seed=args.video_id,
    )
    result = index.knn(query, args.k, method=args.method, cold=True)
    rows = [
        (rank, video, f"{score:.4f}")
        for rank, (video, score) in enumerate(
            zip(result.videos, result.scores), 1
        )
    ]
    print(
        format_table(
            ["rank", "video", "similarity"],
            rows,
            title=f"top-{args.k} for video {args.video_id} "
            f"({args.method} method)",
        )
    )
    stats = result.stats
    print(
        f"\ncost: {stats.page_requests} page accesses, "
        f"{stats.similarity_computations} similarity computations, "
        f"{stats.ranges} range search(es)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-video",
        description="ViTri video-sequence indexing (SIGMOD 2005 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic video dataset"
    )
    generate.add_argument("--out", required=True, help="output .npz path")
    generate.add_argument(
        "--preset", choices=sorted(_PRESETS), default="default"
    )
    generate.add_argument("--families", type=int, default=None)
    generate.add_argument("--family-size", type=int, default=None)
    generate.add_argument("--distractors", type=int, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    stats = commands.add_parser("stats", help="dataset statistics (Table 2)")
    stats.add_argument("--dataset", required=True)
    stats.set_defaults(func=_cmd_stats)

    summarize = commands.add_parser(
        "summarize", help="summary statistics at one epsilon (Table 3 row)"
    )
    summarize.add_argument("--dataset", required=True)
    summarize.add_argument("--epsilon", type=float, default=0.3)
    summarize.set_defaults(func=_cmd_summarize)

    build = commands.add_parser("build", help="build a file-backed index")
    build.add_argument("--dataset", required=True)
    build.add_argument("--out", required=True, help="index file prefix")
    build.add_argument("--epsilon", type=float, default=0.3)
    build.add_argument(
        "--reference",
        choices=("optimal", "data_center", "space_center"),
        default="optimal",
    )
    build.add_argument(
        "--summaries",
        default=None,
        help="load cached summaries (.npz) instead of re-clustering",
    )
    build.add_argument(
        "--save-summaries",
        default=None,
        help="cache the computed summaries to this .npz path",
    )
    build.set_defaults(func=_cmd_build)

    query = commands.add_parser("query", help="KNN query against an index")
    query.add_argument("--index", required=True, help="index file prefix")
    query.add_argument("--dataset", required=True)
    query.add_argument("--video-id", type=int, required=True)
    query.add_argument("--k", type=int, default=10)
    query.add_argument(
        "--method", choices=("composed", "naive"), default="composed"
    )
    query.set_defaults(func=_cmd_query)

    check = commands.add_parser(
        "check",
        help="verify a file-backed index's integrity",
        description=(
            "Verify page checksums, B+-tree invariants and heap-file "
            "accounting of an index written by 'build'.  With --sharded, "
            "also chain-verify any replication segments.log in the fleet "
            "directory; --segments verifies a standalone segment log."
        ),
    )
    check.add_argument(
        "--index",
        default=None,
        help="index file prefix (or fleet directory with --sharded)",
    )
    check.add_argument(
        "--sharded",
        action="store_true",
        help="treat --index as a ShardedVideoDatabase fleet directory",
    )
    check.add_argument(
        "--segments",
        default=None,
        help=(
            "replication segment log to chain-verify (sequence "
            "continuity + hash-chain tokens); usable with or without "
            "--index"
        ),
    )
    check.set_defaults(func=_cmd_check)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="benchmark the concurrent query engine",
        description=(
            "Sweep QueryEngine worker counts over a seeded query stream "
            "against a simulated-latency disk; write metrics as JSON."
        ),
    )
    bench_serve.add_argument(
        "--dataset",
        default=None,
        help=".npz dataset (default: generate a small synthetic one)",
    )
    bench_serve.add_argument("--epsilon", type=float, default=0.3)
    bench_serve.add_argument("--k", type=int, default=10)
    bench_serve.add_argument(
        "--queries", type=int, default=24, help="query-stream length"
    )
    bench_serve.add_argument(
        "--workers", default="1,2,4", help="comma-separated worker counts"
    )
    bench_serve.add_argument(
        "--read-latency",
        type=float,
        default=0.002,
        help="simulated seconds per physical page read",
    )
    bench_serve.add_argument("--buffer-capacity", type=int, default=32)
    bench_serve.add_argument("--cache-size", type=int, default=128)
    bench_serve.add_argument(
        "--repeat-fraction",
        type=float,
        default=0.5,
        help="fraction of stream positions repeating an earlier query",
    )
    bench_serve.add_argument(
        "--warm",
        action="store_true",
        help="keep worker pools warm between queries (default: cold)",
    )
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument(
        "--out", default=None, help="write full metrics JSON here"
    )
    bench_serve.set_defaults(func=_cmd_bench_serve)

    bench_shard = commands.add_parser(
        "bench-shard",
        help="benchmark the sharded scatter-gather router",
        description=(
            "Sweep fleet sizes over a seeded query stream against "
            "simulated-latency disks; every fleet's rankings are asserted "
            "identical to the 1-shard reference. Write metrics as JSON."
        ),
    )
    bench_shard.add_argument(
        "--dataset",
        default=None,
        help=".npz dataset (default: generate a small synthetic one)",
    )
    bench_shard.add_argument("--epsilon", type=float, default=0.3)
    bench_shard.add_argument("--k", type=int, default=10)
    bench_shard.add_argument(
        "--queries", type=int, default=16, help="query-stream length"
    )
    bench_shard.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts (must start with 1)",
    )
    bench_shard.add_argument(
        "--partitioner", choices=("key_range", "hash"), default="key_range"
    )
    bench_shard.add_argument(
        "--read-latency",
        type=float,
        default=0.002,
        help="simulated seconds per physical page read",
    )
    bench_shard.add_argument("--buffer-capacity", type=int, default=32)
    bench_shard.add_argument(
        "--no-prune",
        action="store_true",
        help="disable key-bounds shard pruning",
    )
    bench_shard.add_argument("--seed", type=int, default=0)
    bench_shard.add_argument(
        "--out", default=None, help="write full metrics JSON here"
    )
    bench_shard.set_defaults(func=_cmd_bench_shard)

    bench_faults = commands.add_parser(
        "bench-faults",
        help="benchmark the fleet under injected faults",
        description=(
            "Run the deterministic fault sweep (hard-down, transient, "
            "straggler and timeout scenarios) against a sharded fleet; "
            "correctness is asserted inside the sweep, the report gives "
            "availability and tail latency. Write metrics as JSON."
        ),
    )
    bench_faults.add_argument(
        "--dataset",
        default=None,
        help=".npz dataset (default: generate a small synthetic one)",
    )
    bench_faults.add_argument("--epsilon", type=float, default=0.3)
    bench_faults.add_argument("--k", type=int, default=10)
    bench_faults.add_argument(
        "--queries", type=int, default=16, help="query-stream length"
    )
    bench_faults.add_argument(
        "--shards", type=int, default=4, help="fleet size"
    )
    bench_faults.add_argument(
        "--down-shard",
        type=int,
        default=1,
        help="which shard the fault scenarios target",
    )
    bench_faults.add_argument("--buffer-capacity", type=int, default=32)
    bench_faults.add_argument("--seed", type=int, default=0)
    bench_faults.add_argument(
        "--out", default=None, help="write full metrics JSON here"
    )
    bench_faults.set_defaults(func=_cmd_bench_faults)

    serve = commands.add_parser(
        "serve",
        help="serve a durable fleet over TCP behind a bounded front door",
        description=(
            "Start one shard server per shard of a fleet directory, a "
            "read-only scatter router over remote proxies, and a TCP "
            "front door with bounded admission. Ctrl-C drains gracefully."
        ),
    )
    serve.add_argument("--index", required=True, help="fleet directory")
    serve.add_argument(
        "--mode",
        choices=("thread", "subprocess"),
        default="thread",
        help="run shard servers on threads or as child processes",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="front-door port (0 = ephemeral)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="front-door worker threads"
    )
    serve.add_argument(
        "--max-queue", type=int, default=32, help="admission queue depth"
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client token-bucket refill (queries/s; default: unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-client token-bucket capacity (default: --rate)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        help="seconds to wait for in-flight queries at shutdown",
    )
    serve.set_defaults(func=_cmd_serve)

    bench_service = commands.add_parser(
        "bench-service",
        help="benchmark the network service under an over-admission burst",
        description=(
            "Stand a fleet up as a network service (thread-mode shard "
            "servers, front door) and drive it through a serial baseline "
            "and a closed-loop burst at --overadmission times each "
            "client's admission quota; rankings are asserted bit-identical "
            "to the in-process router inside the sweep. Write metrics as "
            "JSON."
        ),
    )
    bench_service.add_argument(
        "--dataset",
        default=None,
        help=".npz dataset (default: generate a small synthetic one)",
    )
    bench_service.add_argument("--epsilon", type=float, default=0.3)
    bench_service.add_argument("--k", type=int, default=10)
    bench_service.add_argument(
        "--queries", type=int, default=16, help="query-stream length"
    )
    bench_service.add_argument(
        "--shards", type=int, default=3, help="fleet size"
    )
    bench_service.add_argument(
        "--workers", type=int, default=2, help="front-door worker threads"
    )
    bench_service.add_argument(
        "--max-queue", type=int, default=8, help="admission queue depth"
    )
    bench_service.add_argument(
        "--clients", type=int, default=4, help="burst client threads"
    )
    bench_service.add_argument(
        "--overadmission",
        type=float,
        default=2.0,
        help="offered load as a multiple of each client's quota",
    )
    bench_service.add_argument("--seed", type=int, default=0)
    bench_service.add_argument(
        "--out", default=None, help="write full metrics JSON here"
    )
    bench_service.set_defaults(func=_cmd_bench_service)

    bench_replication = commands.add_parser(
        "bench-replication",
        help="benchmark read replicas and the tiered cache hierarchy",
        description=(
            "Build one durable primary, attach WAL-shipped read replicas, "
            "and drive a zipf-skewed query stream through the replica "
            "group closed-loop at each replica count; rankings are "
            "asserted bit-identical to primary-only serving inside the "
            "sweep. Reports throughput and per-tier cache hit rates; "
            "write metrics as JSON."
        ),
    )
    bench_replication.add_argument(
        "--dataset",
        default=None,
        help=".npz dataset (default: generate a small synthetic one)",
    )
    bench_replication.add_argument("--epsilon", type=float, default=0.3)
    bench_replication.add_argument(
        "--queries", type=int, default=300, help="query-stream length"
    )
    bench_replication.add_argument(
        "--warmup",
        type=int,
        default=60,
        help="stream prefix served on the bare primary before replicas attach",
    )
    bench_replication.add_argument(
        "--replicas",
        type=int,
        nargs="+",
        default=[0, 2],
        help="replica counts to sweep (0 = primary-only baseline)",
    )
    bench_replication.add_argument(
        "--clients", type=int, default=48, help="closed-loop client threads"
    )
    bench_replication.add_argument(
        "--skew",
        type=float,
        default=1.2,
        help="zipf exponent of the query stream (0 = uniform)",
    )
    bench_replication.add_argument(
        "--repeat-fraction",
        type=float,
        default=0.35,
        help="probability a stream position repeats an earlier one",
    )
    bench_replication.add_argument(
        "--read-latency",
        type=float,
        default=0.015,
        help="simulated seconds per physical page read",
    )
    bench_replication.add_argument("--buffer-capacity", type=int, default=4)
    bench_replication.add_argument("--cache-size", type=int, default=128)
    bench_replication.add_argument(
        "--range-cache-size",
        type=int,
        default=256,
        help="L2 range-block cache capacity per copy (0 disables the tier)",
    )
    bench_replication.add_argument("--seed", type=int, default=0)
    bench_replication.add_argument(
        "--out", default=None, help="write full metrics JSON here"
    )
    bench_replication.set_defaults(func=_cmd_bench_replication)

    fleet_health = commands.add_parser(
        "fleet-health",
        help="per-shard health and breaker state of a durable fleet",
        description=(
            "Open a ShardedVideoDatabase fleet directory (restoring "
            "health.json) and print each shard's health counters, "
            "breaker state and which shards degraded queries would skip."
        ),
    )
    fleet_health.add_argument(
        "--index", required=True, help="fleet directory"
    )
    fleet_health.set_defaults(func=_cmd_fleet_health)

    lint = commands.add_parser(
        "lint",
        help="run vilint, the project's static-analysis pass",
        description=(
            "Check determinism, validation and cost-accounting invariants "
            "(see docs/static_analysis.md)."
        ),
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    lint.add_argument("--baseline", default=None, metavar="FILE")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--update-baseline", action="store_true")
    lint.add_argument("--select", default=None, metavar="RULES")
    lint.add_argument(
        "--concurrency",
        action="store_true",
        help="run only the concurrency rules (VIL008-VIL010)",
    )
    lint.add_argument("--lock-graph-dot", default=None, metavar="FILE")
    lint.add_argument("--jobs", type=int, default=None, metavar="N")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--list-rules", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
