"""Tests for the scatter-gather router (repro.shard.router).

The load-bearing property is *exactness*: a sharded database must return
rankings identical to an unsharded :class:`VitriIndex` over the same
content, for every partitioner and fleet size, with and without shard
pruning.  Everything else (durability, rebalancing, serving metrics)
builds on that.
"""

import numpy as np
import pytest

from repro.core.index import VitriIndex
from repro.shard import (
    KeyRangePartitioner,
    Shard,
    ShardedVideoDatabase,
)

EPSILON = 0.3


def make_fleet(summaries, partitioner, num_shards, **kwargs):
    if partitioner == "key_range":
        fleet = ShardedVideoDatabase(
            EPSILON,
            partitioner=KeyRangePartitioner.fit(list(summaries), num_shards),
            **kwargs,
        )
    else:
        fleet = ShardedVideoDatabase(
            EPSILON, partitioner=partitioner, num_shards=num_shards, **kwargs
        )
    for summary in summaries:
        fleet.add_summary(summary)
    return fleet


class TestExactness:
    """Acceptance: sharded rankings == single-index oracle rankings."""

    @pytest.mark.parametrize("partitioner", ["hash", "key_range"])
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_knn_matches_oracle(
        self, small_summaries, small_index, partitioner, num_shards
    ):
        fleet = make_fleet(small_summaries, partitioner, num_shards)
        for query in small_summaries[:6]:
            expected = small_index.knn(query, 5)
            got = fleet.knn(query, 5)
            assert got.videos == expected.videos
            assert np.allclose(got.scores, expected.scores)

    @pytest.mark.parametrize("partitioner", ["hash", "key_range"])
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_similarity_range_matches_oracle(
        self, small_summaries, small_index, partitioner, num_shards
    ):
        fleet = make_fleet(small_summaries, partitioner, num_shards)
        for query in small_summaries[:4]:
            expected = small_index.similarity_range(query, 0.2)
            got = fleet.similarity_range(query, 0.2)
            assert got.videos == expected.videos
            assert np.allclose(got.scores, expected.scores)

    def test_pruning_is_lossless(self, small_summaries):
        fleet = make_fleet(small_summaries, "key_range", 4)
        for query in small_summaries[:6]:
            pruned = fleet.knn(query, 5, prune=True)
            unpruned = fleet.knn(query, 5, prune=False)
            assert pruned.videos == unpruned.videos
            assert np.allclose(pruned.scores, unpruned.scores)

    def test_naive_method_matches_oracle(self, small_summaries, small_index):
        fleet = make_fleet(small_summaries, "hash", 4)
        query = small_summaries[0]
        expected = small_index.knn(query, 5, method="naive")
        got = fleet.knn(query, 5, method="naive")
        assert got.videos == expected.videos

    def test_more_shards_than_videos(self, small_summaries):
        few = small_summaries[:3]
        oracle = VitriIndex.build(list(few), EPSILON)
        fleet = make_fleet(few, "hash", 8)  # most shards stay empty
        got = fleet.knn(few[0], 3)
        expected = oracle.knn(few[0], 3)
        assert got.videos == expected.videos
        assert got.scatter.shards_total == 8


class TestScatterStats:
    def test_fanout_accounting(self, small_summaries):
        fleet = make_fleet(small_summaries, "key_range", 4)
        result = fleet.knn(small_summaries[0], 5)
        queried = set(result.scatter.shards_queried)
        pruned = set(result.scatter.shards_pruned)
        assert queried  # something answered
        assert not queried & pruned
        assert len(queried) + len(pruned) <= result.scatter.shards_total

    def test_global_stats_from_bundles(self, small_summaries):
        fleet = make_fleet(small_summaries, "key_range", 4, cache_size=0)
        result = fleet.knn(small_summaries[0], 5)
        # The folded per-shard bundles must show real work.
        assert result.stats.page_requests > 0
        assert result.stats.similarity_computations > 0
        assert result.stats.ranges >= 1
        assert result.stats.wall_time >= 0.0

    def test_cache_hit_costs_nothing(self, small_summaries):
        fleet = make_fleet(small_summaries, "hash", 2, cache_size=8)
        query = small_summaries[0]
        first = fleet.knn(query, 5)
        second = fleet.knn(query, 5)
        assert second.videos == first.videos
        # Served from the shard result caches: no pages, no similarity.
        assert second.stats.page_requests == 0
        assert second.stats.similarity_computations == 0


class TestMutation:
    def test_membership_tracks_routing(self, small_summaries):
        fleet = make_fleet(small_summaries, "hash", 4)
        assert len(fleet) == len(small_summaries)
        assert fleet.video_ids() == {s.video_id for s in small_summaries}
        for summary in small_summaries:
            shard = fleet.shard_of(summary.video_id)
            assert shard == fleet.partitioner.shard_for(summary)
            assert summary.video_id in fleet.shards[shard].video_ids()

    def test_duplicate_id_rejected(self, small_summaries):
        fleet = make_fleet(small_summaries, "hash", 2)
        with pytest.raises(ValueError, match="already present"):
            fleet.add_summary(small_summaries[0])

    def test_remove_updates_results(self, small_summaries, small_index):
        fleet = make_fleet(small_summaries, "hash", 4)
        query = small_summaries[0]
        top = fleet.knn(query, 1).videos[0]
        fleet.remove(top)
        assert len(fleet) == len(small_summaries) - 1
        with pytest.raises(ValueError, match="not in the database"):
            fleet.shard_of(top)
        after = fleet.knn(query, 5)
        assert top not in after.videos
        oracle = VitriIndex.build(
            [s for s in small_summaries if s.video_id != top], EPSILON
        )
        assert after.videos == oracle.knn(query, 5).videos

    def test_add_routes_raw_frames(self, small_dataset):
        fleet = ShardedVideoDatabase(
            EPSILON, partitioner="hash", num_shards=3
        )
        ids = fleet.add_many(small_dataset.frames(i) for i in range(5))
        assert ids == [0, 1, 2, 3, 4]
        result = fleet.query(small_dataset.frames(0), k=3)
        assert result.videos[0] == 0  # self-match ranks first


class TestValidation:
    def test_bad_k(self, small_summaries):
        fleet = make_fleet(small_summaries[:4], "hash", 2)
        for bad in (0, -1, 2.5, True, "3"):
            with pytest.raises(ValueError, match="positive int"):
                fleet.knn(small_summaries[0], bad)

    def test_bad_query_type(self, small_summaries):
        fleet = make_fleet(small_summaries[:4], "hash", 2)
        with pytest.raises(TypeError, match="VideoSummary"):
            fleet.knn("query", 5)

    def test_bad_method(self, small_summaries):
        fleet = make_fleet(small_summaries[:4], "hash", 2)
        with pytest.raises(ValueError, match="method"):
            fleet.knn(small_summaries[0], 5, method="magic")

    def test_empty_fleet_rejects_queries(self, small_summaries):
        fleet = ShardedVideoDatabase(
            EPSILON, partitioner="hash", num_shards=2
        )
        with pytest.raises(ValueError, match="empty"):
            fleet.knn(small_summaries[0], 5)

    def test_shard_count_conflict(self):
        with pytest.raises(ValueError, match="conflicts"):
            ShardedVideoDatabase(
                EPSILON,
                partitioner=KeyRangePartitioner([0.5]),
                num_shards=4,
            )

    def test_bad_partitioner_type(self):
        with pytest.raises(TypeError, match="Partitioner"):
            ShardedVideoDatabase(EPSILON, partitioner=42)

    def test_kind_name_requires_num_shards(self):
        with pytest.raises(ValueError, match="positive int"):
            ShardedVideoDatabase(EPSILON, partitioner="hash")

    def test_closed_database_rejects_use(self, small_summaries):
        fleet = make_fleet(small_summaries[:4], "hash", 2)
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.knn(small_summaries[0], 5)
        fleet.close()  # idempotent


class TestServeMany:
    def test_results_match_individual_queries(self, small_summaries):
        stream = list(small_summaries[:5])
        fleet = make_fleet(small_summaries, "key_range", 4, cache_size=0)
        expected = [fleet.knn(q, 5) for q in stream]
        batch = fleet.serve_many(stream, 5)
        assert len(batch) == 5
        for got, want in zip(batch.results, expected):
            assert got.videos == want.videos

    def test_metrics_shape(self, small_summaries):
        fleet = make_fleet(small_summaries, "hash", 3, cache_size=0)
        batch = fleet.serve_many(list(small_summaries[:4]), 5)
        metrics = batch.metrics
        assert metrics.queries == 4
        assert metrics.shards == 3
        assert metrics.qps > 0.0
        assert metrics.latency_p50 <= metrics.latency_p95 <= metrics.latency_p99
        assert len(metrics.shard_page_requests) == 3
        assert metrics.total_page_requests == sum(metrics.shard_page_requests)
        assert metrics.total_page_requests > 0
        payload = metrics.to_dict()
        assert payload["queries"] == 4
        assert payload["shard_page_requests"] == list(
            metrics.shard_page_requests
        )

    def test_repeats_hit_the_result_cache(self, small_summaries):
        fleet = make_fleet(small_summaries, "hash", 2, cache_size=16)
        stream = [small_summaries[0]] * 3 + [small_summaries[1]]
        metrics = fleet.serve_many(stream, 5).metrics
        assert metrics.cache_hits > 0
        assert metrics.cache_misses > 0


class TestDurability:
    def test_reopen_round_trip(self, small_summaries, small_index, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = make_fleet(small_summaries, "key_range", 3, path=path)
        query = small_summaries[0]
        expected = small_index.knn(query, 5)
        assert fleet.knn(query, 5).videos == expected.videos
        fleet.close()

        reopened = ShardedVideoDatabase(path=path)
        assert reopened.num_shards == 3
        assert reopened.partitioner.name == "key_range"
        assert reopened.video_ids() == {s.video_id for s in small_summaries}
        got = reopened.knn(query, 5)
        assert got.videos == expected.videos
        assert np.allclose(got.scores, expected.scores)
        reopened.close()

    def test_reopen_after_mutation(self, small_summaries, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = make_fleet(small_summaries, "hash", 2, path=path)
        fleet.remove(small_summaries[0].video_id)
        fleet.checkpoint()
        fleet.close()
        reopened = ShardedVideoDatabase(path=path)
        assert (
            small_summaries[0].video_id not in reopened.video_ids()
        )
        assert len(reopened) == len(small_summaries) - 1
        reopened.close()

    def test_crash_discards_uncheckpointed(self, small_summaries, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = make_fleet(small_summaries[:8], "hash", 2, path=path)
        fleet.checkpoint()
        fleet.add_summary(small_summaries[8])
        fleet.crash()
        reopened = ShardedVideoDatabase(path=path)
        assert reopened.video_ids() == {
            s.video_id for s in small_summaries[:8]
        }
        reopened.close()

    def test_checkpoint_requires_path(self, small_summaries):
        fleet = make_fleet(small_summaries[:4], "hash", 2)
        with pytest.raises(RuntimeError, match="durable"):
            fleet.checkpoint()
        with pytest.raises(RuntimeError, match="durable"):
            fleet.crash()

    def test_context_manager_closes(self, small_summaries, tmp_path):
        path = str(tmp_path / "fleet")
        with make_fleet(small_summaries[:6], "hash", 2, path=path) as fleet:
            assert len(fleet) == 6
        reopened = ShardedVideoDatabase(path=path)
        assert len(reopened) == 6  # close() checkpointed
        reopened.close()


class TestRebalance:
    def test_requires_key_range(self, small_summaries):
        fleet = make_fleet(small_summaries, "hash", 2)
        with pytest.raises(ValueError, match="KeyRangePartitioner"):
            fleet.rebalance()

    def test_splits_hottest_shard(self, small_summaries, small_index):
        fleet = make_fleet(small_summaries, "key_range", 2)
        for query in small_summaries[:4]:
            fleet.knn(query, 5)
        before = len(fleet)
        new_shard = fleet.rebalance()
        assert new_shard is not None
        assert fleet.num_shards == 3
        assert fleet.partitioner.num_shards == 3
        assert len(fleet) == before  # nothing lost, nothing duplicated
        assert [s.shard_id for s in fleet.shards] == [0, 1, 2]
        # Exactness survives the split.
        for query in small_summaries[:4]:
            got = fleet.knn(query, 5)
            expected = small_index.knn(query, 5)
            assert got.videos == expected.videos

    def test_durable_rebalance_survives_reopen(
        self, small_summaries, small_index, tmp_path
    ):
        path = str(tmp_path / "fleet")
        fleet = make_fleet(small_summaries, "key_range", 2, path=path)
        fleet.knn(small_summaries[0], 5)
        assert fleet.rebalance() is not None
        fleet.close()
        reopened = ShardedVideoDatabase(path=path)
        assert reopened.num_shards == 3
        assert len(reopened) == len(small_summaries)
        got = reopened.knn(small_summaries[0], 5)
        assert got.videos == small_index.knn(small_summaries[0], 5).videos
        reopened.close()

    def test_unsplittable_shard_returns_none(self, small_summaries):
        # One video per populated shard: a single routing key never splits.
        fleet = make_fleet(small_summaries[:1], "key_range", 2)
        assert fleet.rebalance() is None
        assert fleet.num_shards == 2

    def test_queries_are_served_during_the_copy_phase(
        self, small_summaries, small_index
    ):
        """Regression: rebalance must not hold the router lock while it
        scans and copies the hottest shard.

        The copy phase (``hottest.summaries()`` onward) is blocked on an
        event while the main thread runs a query; if the router lock
        were held across the copy — the old coarse-grained behaviour —
        the query would deadlock against the blocked rebalance.
        """
        import threading

        fleet = make_fleet(small_summaries, "key_range", 2)
        for query in small_summaries[:4]:
            fleet.knn(query, 5)

        copy_started = threading.Event()
        release_copy = threading.Event()
        for shard in fleet.shards:
            original = shard.summaries

            def blocking(original=original):
                copy_started.set()
                assert release_copy.wait(timeout=30.0)
                return original()

            shard.summaries = blocking

        result: dict = {}

        def run_rebalance():
            result["new_shard"] = fleet.rebalance()

        rebalancer = threading.Thread(target=run_rebalance)
        rebalancer.start()
        try:
            assert copy_started.wait(timeout=30.0)
            # The copy phase is parked; reads must still complete.
            for query in small_summaries[:4]:
                got = fleet.knn(query, 5)
                expected = small_index.knn(query, 5)
                assert got.videos == expected.videos
        finally:
            release_copy.set()
            rebalancer.join(timeout=30.0)
        assert not rebalancer.is_alive()
        assert result["new_shard"] is not None
        assert fleet.num_shards == 3
        for query in small_summaries[:4]:
            got = fleet.knn(query, 5)
            assert got.videos == small_index.knn(query, 5).videos


class TestShardUnit:
    def test_engine_refreshes_on_content_change(self, small_summaries):
        shard = Shard(0, epsilon=EPSILON)
        for summary in small_summaries[:6]:
            shard.add_summary(summary)
        first = shard.knn(small_summaries[0], 3)
        assert first.videos
        engine = shard.engine()
        token = engine.snapshot_token
        shard.add_summary(small_summaries[6])
        # Same index object, new content: the shard must refresh the
        # engine in place rather than serve the stale snapshot.
        after = shard.knn(small_summaries[6], 1)
        assert after.videos[0] == small_summaries[6].video_id
        assert shard.engine() is engine
        assert engine.snapshot_token != token
        assert shard.queries_served == 2

    def test_key_bounds_cached_per_token(self, small_summaries):
        shard = Shard(0, epsilon=EPSILON)
        for summary in small_summaries[:6]:
            shard.add_summary(summary)
        bounds = shard.key_bounds()
        assert bounds is not None and bounds[0] <= bounds[1]
        assert shard.key_bounds() == bounds  # cached (same token)
        shard.add_summary(small_summaries[6])
        refreshed = shard.key_bounds()
        assert refreshed is not None
        assert refreshed[0] <= bounds[0] and refreshed[1] >= bounds[1]

    def test_empty_shard_metadata(self, small_summaries):
        shard = Shard(0, epsilon=EPSILON)
        assert shard.key_bounds() is None
        assert not shard.may_contain(small_summaries[0])
        assert len(shard) == 0

    def test_may_contain_never_prunes_a_match(self, small_summaries):
        shard = Shard(0, epsilon=EPSILON)
        for summary in small_summaries[:8]:
            shard.add_summary(summary)
        for query in small_summaries:
            local = shard.knn(query, len(small_summaries))
            if any(score > 0.0 for score in local.scores):
                assert shard.may_contain(query)
