"""Tests for the streaming ingest pipeline (repro.ingest).

Admission must shed with *typed* errors before doing any work; commits
must be whole batches (one WAL transaction / one shipped segment each);
the group-commit linger must coalesce a paced trickle without ever
delaying a full batch; and a drift-triggered rebuild must leave the
target serving oracle-exact rankings.
"""

import numpy as np
import pytest

from repro.core.index import VitriIndex
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.ingest import (
    DriftCheck,
    DriftMonitor,
    IngestBackpressure,
    IngestDraining,
    IngestFailed,
    IngestOverloaded,
    IngestPipeline,
)
from repro.replication import ReplicaSet, ReplicaShard
from repro.replication.segments import verify_segment_chain
from repro.shard.shard import Shard
from repro.utils.clock import VirtualClock

EPSILON = 0.3
DIM = 8


def make_summaries(count: int = 12, *, seed: int = 7, first_id: int = 0):
    config = DatasetConfig(
        dim=DIM,
        num_families=2,
        family_size=3,
        num_distractors=max(count - 6, 1),
    )
    dataset = generate_dataset(config, seed=seed)
    return [
        summarize_video(first_id + i, dataset.frames(i), EPSILON, seed=first_id + i)
        for i in range(min(count, dataset.num_videos))
    ]


def rotated_summaries(count: int, *, seed: int, first_id: int):
    """Summaries from a rolled frame space — the drifted stream tail."""
    config = DatasetConfig(
        dim=DIM,
        num_families=2,
        family_size=3,
        num_distractors=max(count - 6, 1),
    )
    dataset = generate_dataset(config, seed=seed)
    rotation = np.roll(np.eye(DIM), 3, axis=0)
    return [
        summarize_video(
            first_id + i,
            dataset.frames(i) @ rotation.T,
            EPSILON,
            seed=first_id + i,
        )
        for i in range(min(count, dataset.num_videos))
    ]


class TestValidation:
    def test_rejects_target_without_add_summary(self):
        with pytest.raises(TypeError, match="add_summary"):
            IngestPipeline(object())

    def test_rejects_bad_knobs(self):
        shard = Shard(0, epsilon=EPSILON)
        with pytest.raises(ValueError, match="batch_size"):
            IngestPipeline(shard, batch_size=0)
        with pytest.raises(ValueError, match="max_queue"):
            IngestPipeline(shard, max_queue=0)
        with pytest.raises(ValueError, match="linger"):
            IngestPipeline(shard, linger=-1.0)
        with pytest.raises(ValueError, match="backoff"):
            IngestPipeline(shard, min_backoff=0.5, max_backoff=0.1)
        with pytest.raises(TypeError, match="DriftMonitor"):
            IngestPipeline(shard, drift=object())
        with pytest.raises(TypeError, match="Clock"):
            IngestPipeline(shard, clock=object())


class TestAdmission:
    def test_full_queue_sheds_typed_overload(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON), max_queue=2)
        summaries = make_summaries(3)
        pipeline.submit(summaries[0])
        pipeline.submit(summaries[1])
        with pytest.raises(IngestOverloaded, match="back off"):
            pipeline.submit(summaries[2])
        # The shed is typed-retriable and costs nothing but the retry.
        assert issubclass(IngestOverloaded, IngestBackpressure)
        assert pipeline.depth == 2
        assert pipeline.submitted == 2
        assert pipeline.shed == 1

    def test_rejects_non_summary_before_queueing(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON))
        with pytest.raises(TypeError, match="VideoSummary"):
            pipeline.submit("not a summary")
        assert pipeline.depth == 0

    def test_draining_pipeline_sheds_typed_refusal(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON))
        pipeline.drain()
        with pytest.raises(IngestDraining, match="draining"):
            pipeline.submit(make_summaries(1)[0])
        assert pipeline.shed == 1


class TestBatching:
    def test_pump_commits_in_batches(self):
        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=4)
        for summary in make_summaries(10):
            pipeline.submit(summary)
        assert pipeline.pump() == 10
        assert pipeline.batches == 3  # 4 + 4 + 2
        assert pipeline.ingested == 10
        assert pipeline.depth == 0
        assert len(shard) == 10

    def test_each_batch_ships_as_one_segment(self, tmp_path):
        initial = make_summaries(8)
        primary = Shard(0, epsilon=EPSILON, path=str(tmp_path / "primary"))
        for summary in initial:
            primary.add_summary(summary)
        primary.checkpoint()
        clock = VirtualClock()
        log_path = str(tmp_path / "segments.log")
        group = ReplicaSet(primary, clock=clock, segment_log_path=log_path)
        group.attach_replica(
            ReplicaShard(0, tmp_path / "replica", epsilon=EPSILON, clock=clock)
        )
        group.sync()
        seq_before = group.shipper.seq

        pipeline = IngestPipeline(group, batch_size=4)
        for summary in make_summaries(8, seed=11, first_id=len(initial)):
            pipeline.submit(summary)
        assert pipeline.pump() == 8

        # One checkpoint per batch == one sealed, chained segment each.
        assert group.shipper.seq == seq_before + 2
        with open(log_path, "rb") as handle:
            chain = verify_segment_chain(handle.read())
        assert chain["last_seq"] == group.shipper.seq

        # _apply syncs after each commit: replicas already serve it all.
        oracle = VitriIndex.build(group.primary.summaries(), EPSILON)
        for probe in initial[:3]:
            expected = oracle.knn(probe, 5)
            got = group.knn(probe, 5)
            assert tuple(got.videos) == tuple(expected.videos)
            assert np.allclose(got.scores, expected.scores)
        group.close()

    def test_invalid_summary_is_rejected_not_fatal(self):
        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=4)
        summaries = make_summaries(4)
        for summary in summaries:
            pipeline.submit(summary)
        pipeline.submit(summaries[0])  # duplicate id: rejected at insert
        assert pipeline.pump() == 4
        assert pipeline.rejected == 1
        assert len(shard) == 4


class TestGroupCommit:
    def make_pipeline(self, clock, **kwargs):
        shard = Shard(0, epsilon=EPSILON)
        return shard, IngestPipeline(shard, clock=clock, **kwargs)

    def test_partial_batch_waits_for_linger(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=5.0)
        for summary in make_summaries(2):
            pipeline.submit(summary)
        assert pipeline._pump_once() == 0  # partial and not yet lingered
        assert pipeline.depth == 2
        clock.advance(6.0)
        assert pipeline._pump_once() == 2  # linger expired: commit it
        assert pipeline.batches == 1

    def test_full_batch_never_waits(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=60.0)
        for summary in make_summaries(4):
            pipeline.submit(summary)
        assert pipeline._pump_once() == 4  # no clock movement needed

    def test_pump_flushes_partials_regardless_of_linger(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=60.0)
        pipeline.submit(make_summaries(1)[0])
        assert pipeline.pump() == 1

    def test_zero_linger_commits_partials_immediately(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=0.0)
        pipeline.submit(make_summaries(1)[0])
        assert pipeline._pump_once() == 1

    def test_first_batch_after_idle_still_lingers(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=5.0)
        clock.advance(100.0)  # long idle gap, no commits in it
        pipeline.submit(make_summaries(1)[0])
        # The linger gates on the oldest *queued* summary's age, not on
        # the time since the last commit, so the first post-idle summary
        # coalesces instead of committing as a batch of one.
        assert pipeline._pump_once() == 0
        clock.advance(5.0)
        assert pipeline._pump_once() == 1


class TestWorker:
    def test_background_worker_drains_the_queue(self):
        import time

        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=2, min_backoff=0.001)
        pipeline.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                pipeline.start()
            for summary in make_summaries(6):
                pipeline.submit(summary)
            for _ in range(1000):  # bounded poll, ~10s worst case
                if pipeline.ingested >= 6:
                    break
                time.sleep(0.01)
        finally:
            pipeline.stop()
        assert pipeline.ingested == 6
        assert len(shard) == 6

    def test_context_manager_drains_on_exit(self):
        shard = Shard(0, epsilon=EPSILON)
        with IngestPipeline(shard, batch_size=4) as pipeline:
            for summary in make_summaries(3):
                pipeline.submit(summary)
        assert pipeline.ingested == 3
        assert pipeline.stats()["draining"] is True


class FlakyShard:
    """A bare-shard target whose first ``fail`` inserts raise transiently."""

    def __init__(self, shard, fail: int) -> None:
        self._shard = shard
        self.remaining = fail

    def add_summary(self, summary):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient insert fault")
        return self._shard.add_summary(summary)

    @property
    def database(self):
        return self._shard.database


class TestPumpFailure:
    def test_failed_commit_keeps_unapplied_batch(self):
        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(FlakyShard(shard, fail=1), batch_size=4)
        for summary in make_summaries(4):
            pipeline.submit(summary)
        with pytest.raises(RuntimeError, match="transient"):
            pipeline.pump()
        # The dequeued batch is carried, not lost: a retry commits it all.
        assert pipeline.depth == 4
        assert pipeline.pump() == 4
        assert len(shard) == 4

    def test_worker_survives_transient_failures(self):
        import time

        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(
            FlakyShard(shard, fail=2),
            batch_size=2,
            min_backoff=0.001,
            max_pump_failures=10,
        )
        pipeline.start()
        try:
            for summary in make_summaries(4):
                pipeline.submit(summary)
            for _ in range(1000):  # bounded poll, ~10s worst case
                if pipeline.ingested >= 4:
                    break
                time.sleep(0.01)
        finally:
            pipeline.stop()
        assert pipeline.ingested == 4
        assert len(shard) == 4
        stats = pipeline.stats()
        assert stats["pump_errors"] >= 1
        assert stats["failed"] is None

    def test_worker_fails_terminally_and_submit_reports_it(self):
        import time

        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(
            FlakyShard(shard, fail=10_000),
            batch_size=2,
            min_backoff=0.001,
            max_pump_failures=3,
        )
        pipeline.start()
        try:
            for summary in make_summaries(2):
                pipeline.submit(summary)
            for _ in range(1000):  # bounded poll, ~10s worst case
                if pipeline.stats()["failed"] is not None:
                    break
                time.sleep(0.01)
        finally:
            pipeline.stop()
        stats = pipeline.stats()
        assert stats["failed"] is not None
        assert "transient insert fault" in stats["failed"]
        assert stats["pump_errors"] == 3
        # No silent dead thread: producers get a typed, non-retriable error.
        with pytest.raises(IngestFailed, match="failed terminally"):
            pipeline.submit(make_summaries(3)[2])

    def test_rejects_bad_max_pump_failures(self):
        with pytest.raises(ValueError, match="max_pump_failures"):
            IngestPipeline(Shard(0, epsilon=EPSILON), max_pump_failures=0)


class TestDrainRace:
    def test_drain_commits_everything_admitted(self):
        import threading

        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=4)
        chunks = [make_summaries(6, seed=s, first_id=s * 100) for s in (1, 2, 3)]

        def producer(chunk):
            for summary in chunk:
                try:
                    pipeline.submit(summary)
                except IngestBackpressure:
                    pass  # shed after the drain flag: refused, not lost

        threads = [
            threading.Thread(target=producer, args=(chunk,)) for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        pipeline.drain()
        for thread in threads:
            thread.join()
        # Nothing admitted is left volatile: every submit that returned
        # successfully was committed (or rejected at insert) by the drain.
        assert pipeline.stats()["depth"] == 0
        assert pipeline.submitted == pipeline.ingested + pipeline.rejected
        assert len(shard) == pipeline.ingested


class TestDrift:
    def test_min_interval_floor_on_injected_clock(self):
        clock = VirtualClock()
        monitor = DriftMonitor(
            max_angle_degrees=15.0,
            check_every=2,
            min_interval=10.0,
            clock=clock,
        )
        index = VitriIndex.build(make_summaries(10), EPSILON)
        first = monitor.observe("shard", index, inserted=2)
        assert isinstance(first, DriftCheck)
        # Inside the floor: due by count, suppressed by the clock.
        assert monitor.observe("shard", index, inserted=2) is None
        clock.advance(11.0)
        second = monitor.observe("shard", index, inserted=2)
        assert isinstance(second, DriftCheck)
        assert second.at - first.at >= 10.0
        assert monitor.checks == 2

    def test_drift_triggers_online_rebuild_and_stays_exact(self, tmp_path):
        initial = make_summaries(12)
        shard = Shard(0, epsilon=EPSILON, path=str(tmp_path / "shard"))
        for summary in initial:
            shard.add_summary(summary)
        shard.checkpoint()

        monitor = DriftMonitor(max_angle_degrees=2.0, check_every=8)
        pipeline = IngestPipeline(shard, batch_size=8, drift=monitor)
        stream = rotated_summaries(16, seed=11, first_id=len(initial))
        for summary in stream:
            pipeline.submit(summary)
        pipeline.drain()

        assert pipeline.rebuilds >= 1
        assert shard.database.epoch >= 1
        oracle = VitriIndex.build(initial + stream, EPSILON)
        for probe in (initial + stream)[::7]:
            expected = oracle.knn(probe, 5)
            got = shard.knn(probe, 5)
            assert tuple(got.videos) == tuple(expected.videos)
            assert np.allclose(got.scores, expected.scores)

    def test_replica_set_rebuild_holds_write_gate(self, tmp_path, monkeypatch):
        """The online cutover must exclude in-flight primary reads.

        ``commit_cutover`` detaches the primary's database mid-swap, so
        a drift-triggered rebuild has to hold the primary copy's serving
        gate exactly like a batch commit does.
        """
        primary = Shard(0, epsilon=EPSILON, path=str(tmp_path / "primary"))
        for summary in make_summaries(8):
            primary.add_summary(summary)
        primary.checkpoint()
        clock = VirtualClock()
        group = ReplicaSet(primary, clock=clock)

        class GateProbe:
            def __init__(self, inner):
                self._inner = inner
                self.held = 0

            def __enter__(self):
                self._inner.__enter__()
                self.held += 1
                return self

            def __exit__(self, *exc):
                self.held -= 1
                return self._inner.__exit__(*exc)

        probe = GateProbe(group.write_gate)
        group._primary_copy.gate = probe
        held_during_rebuild = []
        monkeypatch.setattr(
            "repro.ingest.pipeline.rebuild_online",
            lambda shard, **kwargs: held_during_rebuild.append(probe.held),
        )

        pipeline = IngestPipeline(group, drift=DriftMonitor(clock=clock))
        pipeline._rebuild("primary")
        assert held_during_rebuild == [1]
        assert probe.held == 0  # released after the cutover
        assert pipeline.rebuilds == 1
        group.close()

    def test_fleet_drift_key_survives_renumbering(self):
        """A rebalance between commit and rebuild must not retarget it.

        Drift is keyed by shard *identity*; the position is resolved
        only at rebuild time, so a concurrent split that renumbers the
        fleet cannot aim the rebuild at the wrong shard.
        """
        home = Shard(0, epsilon=EPSILON)
        for summary in make_summaries(6):
            home.add_summary(summary)
        home.database.build()

        class FakeFleet:
            path = None

            def __init__(self, home):
                self.home = home
                self._shards = [home]
                self.rebuilt = []

            @property
            def shards(self):
                return tuple(self._shards)

            def add_summary(self, summary):
                return self.home.add_summary(summary)

            def shard_of(self, video_id):
                return self._shards.index(self.home)

            def rebuild_shard(self, position):
                self.rebuilt.append(self._shards[position])

            def split_front(self):
                # A rebalance-shaped renumbering: every existing
                # position shifts by one.
                self._shards.insert(0, Shard(0, epsilon=EPSILON))

        fleet = FakeFleet(home)

        class RenumberingMonitor(DriftMonitor):
            """Forces a rebuild verdict, renumbering the fleet first."""

            def observe(self, key, index, inserted=1):
                fleet.split_front()
                return DriftCheck(
                    key=key, angle=1.0, threshold=0.1, rebuild=True, at=0.0
                )

        pipeline = IngestPipeline(
            fleet, batch_size=4, drift=RenumberingMonitor()
        )
        pipeline.submit(make_summaries(7, seed=11, first_id=100)[6])
        assert pipeline.pump() == 1
        # The rebuild landed on the shard that drifted, at its *new*
        # position — a positional key would have rebuilt the new shard
        # sitting at the old position instead.
        assert fleet.rebuilt == [home]
        assert pipeline.rebuilds == 1

    def test_stats_counters(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON), batch_size=2)
        for summary in make_summaries(3):
            pipeline.submit(summary)
        pipeline.pump()
        stats = pipeline.stats()
        assert stats["submitted"] == 3
        assert stats["ingested"] == 3
        assert stats["batches"] == 2
        assert stats["rejected"] == 0
        assert stats["shed"] == 0
        assert stats["rebuilds"] == 0
        assert stats["depth"] == 0
        assert stats["draining"] is False
