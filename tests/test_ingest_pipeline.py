"""Tests for the streaming ingest pipeline (repro.ingest).

Admission must shed with *typed* errors before doing any work; commits
must be whole batches (one WAL transaction / one shipped segment each);
the group-commit linger must coalesce a paced trickle without ever
delaying a full batch; and a drift-triggered rebuild must leave the
target serving oracle-exact rankings.
"""

import numpy as np
import pytest

from repro.core.index import VitriIndex
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.ingest import (
    DriftCheck,
    DriftMonitor,
    IngestBackpressure,
    IngestDraining,
    IngestOverloaded,
    IngestPipeline,
)
from repro.replication import ReplicaSet, ReplicaShard
from repro.replication.segments import verify_segment_chain
from repro.shard.shard import Shard
from repro.utils.clock import VirtualClock

EPSILON = 0.3
DIM = 8


def make_summaries(count: int = 12, *, seed: int = 7, first_id: int = 0):
    config = DatasetConfig(
        dim=DIM,
        num_families=2,
        family_size=3,
        num_distractors=max(count - 6, 1),
    )
    dataset = generate_dataset(config, seed=seed)
    return [
        summarize_video(first_id + i, dataset.frames(i), EPSILON, seed=first_id + i)
        for i in range(min(count, dataset.num_videos))
    ]


def rotated_summaries(count: int, *, seed: int, first_id: int):
    """Summaries from a rolled frame space — the drifted stream tail."""
    config = DatasetConfig(
        dim=DIM,
        num_families=2,
        family_size=3,
        num_distractors=max(count - 6, 1),
    )
    dataset = generate_dataset(config, seed=seed)
    rotation = np.roll(np.eye(DIM), 3, axis=0)
    return [
        summarize_video(
            first_id + i,
            dataset.frames(i) @ rotation.T,
            EPSILON,
            seed=first_id + i,
        )
        for i in range(min(count, dataset.num_videos))
    ]


class TestValidation:
    def test_rejects_target_without_add_summary(self):
        with pytest.raises(TypeError, match="add_summary"):
            IngestPipeline(object())

    def test_rejects_bad_knobs(self):
        shard = Shard(0, epsilon=EPSILON)
        with pytest.raises(ValueError, match="batch_size"):
            IngestPipeline(shard, batch_size=0)
        with pytest.raises(ValueError, match="max_queue"):
            IngestPipeline(shard, max_queue=0)
        with pytest.raises(ValueError, match="linger"):
            IngestPipeline(shard, linger=-1.0)
        with pytest.raises(ValueError, match="backoff"):
            IngestPipeline(shard, min_backoff=0.5, max_backoff=0.1)
        with pytest.raises(TypeError, match="DriftMonitor"):
            IngestPipeline(shard, drift=object())
        with pytest.raises(TypeError, match="Clock"):
            IngestPipeline(shard, clock=object())


class TestAdmission:
    def test_full_queue_sheds_typed_overload(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON), max_queue=2)
        summaries = make_summaries(3)
        pipeline.submit(summaries[0])
        pipeline.submit(summaries[1])
        with pytest.raises(IngestOverloaded, match="back off"):
            pipeline.submit(summaries[2])
        # The shed is typed-retriable and costs nothing but the retry.
        assert issubclass(IngestOverloaded, IngestBackpressure)
        assert pipeline.depth == 2
        assert pipeline.submitted == 2
        assert pipeline.shed == 1

    def test_rejects_non_summary_before_queueing(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON))
        with pytest.raises(TypeError, match="VideoSummary"):
            pipeline.submit("not a summary")
        assert pipeline.depth == 0

    def test_draining_pipeline_sheds_typed_refusal(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON))
        pipeline.drain()
        with pytest.raises(IngestDraining, match="draining"):
            pipeline.submit(make_summaries(1)[0])
        assert pipeline.shed == 1


class TestBatching:
    def test_pump_commits_in_batches(self):
        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=4)
        for summary in make_summaries(10):
            pipeline.submit(summary)
        assert pipeline.pump() == 10
        assert pipeline.batches == 3  # 4 + 4 + 2
        assert pipeline.ingested == 10
        assert pipeline.depth == 0
        assert len(shard) == 10

    def test_each_batch_ships_as_one_segment(self, tmp_path):
        initial = make_summaries(8)
        primary = Shard(0, epsilon=EPSILON, path=str(tmp_path / "primary"))
        for summary in initial:
            primary.add_summary(summary)
        primary.checkpoint()
        clock = VirtualClock()
        log_path = str(tmp_path / "segments.log")
        group = ReplicaSet(primary, clock=clock, segment_log_path=log_path)
        group.attach_replica(
            ReplicaShard(0, tmp_path / "replica", epsilon=EPSILON, clock=clock)
        )
        group.sync()
        seq_before = group.shipper.seq

        pipeline = IngestPipeline(group, batch_size=4)
        for summary in make_summaries(8, seed=11, first_id=len(initial)):
            pipeline.submit(summary)
        assert pipeline.pump() == 8

        # One checkpoint per batch == one sealed, chained segment each.
        assert group.shipper.seq == seq_before + 2
        with open(log_path, "rb") as handle:
            chain = verify_segment_chain(handle.read())
        assert chain["last_seq"] == group.shipper.seq

        # _apply syncs after each commit: replicas already serve it all.
        oracle = VitriIndex.build(group.primary.summaries(), EPSILON)
        for probe in initial[:3]:
            expected = oracle.knn(probe, 5)
            got = group.knn(probe, 5)
            assert tuple(got.videos) == tuple(expected.videos)
            assert np.allclose(got.scores, expected.scores)
        group.close()

    def test_invalid_summary_is_rejected_not_fatal(self):
        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=4)
        summaries = make_summaries(4)
        for summary in summaries:
            pipeline.submit(summary)
        pipeline.submit(summaries[0])  # duplicate id: rejected at insert
        assert pipeline.pump() == 4
        assert pipeline.rejected == 1
        assert len(shard) == 4


class TestGroupCommit:
    def make_pipeline(self, clock, **kwargs):
        shard = Shard(0, epsilon=EPSILON)
        return shard, IngestPipeline(shard, clock=clock, **kwargs)

    def test_partial_batch_waits_for_linger(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=5.0)
        for summary in make_summaries(2):
            pipeline.submit(summary)
        assert pipeline._pump_once() == 0  # partial and not yet lingered
        assert pipeline.depth == 2
        clock.advance(6.0)
        assert pipeline._pump_once() == 2  # linger expired: commit it
        assert pipeline.batches == 1

    def test_full_batch_never_waits(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=60.0)
        for summary in make_summaries(4):
            pipeline.submit(summary)
        assert pipeline._pump_once() == 4  # no clock movement needed

    def test_pump_flushes_partials_regardless_of_linger(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=60.0)
        pipeline.submit(make_summaries(1)[0])
        assert pipeline.pump() == 1

    def test_zero_linger_commits_partials_immediately(self):
        clock = VirtualClock()
        _, pipeline = self.make_pipeline(clock, batch_size=4, linger=0.0)
        pipeline.submit(make_summaries(1)[0])
        assert pipeline._pump_once() == 1


class TestWorker:
    def test_background_worker_drains_the_queue(self):
        import time

        shard = Shard(0, epsilon=EPSILON)
        pipeline = IngestPipeline(shard, batch_size=2, min_backoff=0.001)
        pipeline.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                pipeline.start()
            for summary in make_summaries(6):
                pipeline.submit(summary)
            for _ in range(1000):  # bounded poll, ~10s worst case
                if pipeline.ingested >= 6:
                    break
                time.sleep(0.01)
        finally:
            pipeline.stop()
        assert pipeline.ingested == 6
        assert len(shard) == 6

    def test_context_manager_drains_on_exit(self):
        shard = Shard(0, epsilon=EPSILON)
        with IngestPipeline(shard, batch_size=4) as pipeline:
            for summary in make_summaries(3):
                pipeline.submit(summary)
        assert pipeline.ingested == 3
        assert pipeline.stats()["draining"] is True


class TestDrift:
    def test_min_interval_floor_on_injected_clock(self):
        clock = VirtualClock()
        monitor = DriftMonitor(
            max_angle_degrees=15.0,
            check_every=2,
            min_interval=10.0,
            clock=clock,
        )
        index = VitriIndex.build(make_summaries(10), EPSILON)
        first = monitor.observe("shard", index, inserted=2)
        assert isinstance(first, DriftCheck)
        # Inside the floor: due by count, suppressed by the clock.
        assert monitor.observe("shard", index, inserted=2) is None
        clock.advance(11.0)
        second = monitor.observe("shard", index, inserted=2)
        assert isinstance(second, DriftCheck)
        assert second.at - first.at >= 10.0
        assert monitor.checks == 2

    def test_drift_triggers_online_rebuild_and_stays_exact(self, tmp_path):
        initial = make_summaries(12)
        shard = Shard(0, epsilon=EPSILON, path=str(tmp_path / "shard"))
        for summary in initial:
            shard.add_summary(summary)
        shard.checkpoint()

        monitor = DriftMonitor(max_angle_degrees=2.0, check_every=8)
        pipeline = IngestPipeline(shard, batch_size=8, drift=monitor)
        stream = rotated_summaries(16, seed=11, first_id=len(initial))
        for summary in stream:
            pipeline.submit(summary)
        pipeline.drain()

        assert pipeline.rebuilds >= 1
        assert shard.database.epoch >= 1
        oracle = VitriIndex.build(initial + stream, EPSILON)
        for probe in (initial + stream)[::7]:
            expected = oracle.knn(probe, 5)
            got = shard.knn(probe, 5)
            assert tuple(got.videos) == tuple(expected.videos)
            assert np.allclose(got.scores, expected.scores)

    def test_stats_counters(self):
        pipeline = IngestPipeline(Shard(0, epsilon=EPSILON), batch_size=2)
        for summary in make_summaries(3):
            pipeline.submit(summary)
        pipeline.pump()
        stats = pipeline.stats()
        assert stats["submitted"] == 3
        assert stats["ingested"] == 3
        assert stats["batches"] == 2
        assert stats["rejected"] == 0
        assert stats["shed"] == 0
        assert stats["rebuilds"] == 0
        assert stats["depth"] == 0
        assert stats["draining"] is False
