"""Tests for ViTri summary persistence."""

import numpy as np
import pytest

from repro.core.index import VitriIndex
from repro.core.summary_io import load_summaries, save_summaries

EPSILON = 0.3


class TestSummaryIO:
    def test_round_trip(self, small_summaries, tmp_path):
        path = str(tmp_path / "summaries.npz")
        save_summaries(path, small_summaries, EPSILON)
        loaded, epsilon = load_summaries(path)
        assert epsilon == EPSILON
        assert len(loaded) == len(small_summaries)
        for original, restored in zip(small_summaries, loaded):
            assert restored.video_id == original.video_id
            assert restored.num_frames == original.num_frames
            assert len(restored) == len(original)
            for a, b in zip(original.vitris, restored.vitris):
                assert np.array_equal(a.position, b.position)
                assert a.radius == b.radius
                assert a.count == b.count

    def test_loaded_summaries_build_identical_index(
        self, small_summaries, tmp_path
    ):
        path = str(tmp_path / "summaries.npz")
        save_summaries(path, small_summaries, EPSILON)
        loaded, epsilon = load_summaries(path)
        original_index = VitriIndex.build(small_summaries, EPSILON)
        restored_index = VitriIndex.build(loaded, epsilon)
        query = loaded[0]
        assert (
            original_index.knn(query, 8).videos
            == restored_index.knn(query, 8).videos
        )

    def test_epsilon_mismatch_rejected(self, small_summaries, tmp_path):
        path = str(tmp_path / "summaries.npz")
        save_summaries(path, small_summaries, EPSILON)
        with pytest.raises(ValueError, match="epsilon"):
            load_summaries(path, expected_epsilon=0.5)

    def test_expected_epsilon_accepted(self, small_summaries, tmp_path):
        path = str(tmp_path / "summaries.npz")
        save_summaries(path, small_summaries, EPSILON)
        loaded, _ = load_summaries(path, expected_epsilon=EPSILON)
        assert loaded

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_summaries(str(tmp_path / "x.npz"), [], EPSILON)

    def test_invalid_epsilon_rejected(self, small_summaries, tmp_path):
        with pytest.raises(ValueError):
            save_summaries(str(tmp_path / "x.npz"), small_summaries, 0.0)
