"""Tests for the ViTri and VideoSummary models."""

import math

import numpy as np
import pytest

from repro.core.vitri import VideoSummary, ViTri
from repro.geometry.volumes import sphere_volume


def vitri(dim=4, radius=0.5, count=10, offset=0.0):
    return ViTri(position=np.full(dim, offset), radius=radius, count=count)


class TestViTri:
    def test_basic_properties(self):
        v = vitri()
        assert v.dim == 4
        assert v.radius == 0.5
        assert v.count == 10

    def test_density_definition(self):
        v = vitri(dim=3, radius=1.0, count=8)
        assert v.density == pytest.approx(8.0 / sphere_volume(3, 1.0))

    def test_log_density_consistent(self):
        v = vitri(dim=5, radius=0.7, count=3)
        assert math.exp(v.log_density) == pytest.approx(v.density, rel=1e-10)

    def test_point_mass_density_infinite(self):
        v = vitri(radius=0.0)
        assert v.log_volume == -math.inf
        assert v.log_density == math.inf
        assert v.density == math.inf

    def test_high_dim_density_overflow_handled(self):
        v = ViTri(position=np.zeros(256), radius=0.01, count=5)
        assert v.density == math.inf  # linear value overflows...
        assert math.isfinite(v.log_density)  # ...but the log is fine

    def test_frozen(self):
        v = vitri()
        with pytest.raises(AttributeError):
            v.radius = 1.0

    def test_position_validated(self):
        with pytest.raises(ValueError):
            ViTri(position=np.array([[1.0]]), radius=0.1, count=1)
        with pytest.raises(ValueError):
            ViTri(position=np.array([np.nan]), radius=0.1, count=1)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            vitri(radius=-0.1)

    def test_count_validated(self):
        with pytest.raises(ValueError):
            vitri(count=0)
        with pytest.raises(TypeError):
            ViTri(position=np.zeros(2), radius=0.1, count=1.5)

    def test_numpy_count_accepted(self):
        v = ViTri(position=np.zeros(2), radius=0.1, count=np.int64(3))
        assert v.count == 3
        assert isinstance(v.count, int)


class TestVideoSummary:
    def test_basic(self):
        summary = VideoSummary(
            video_id=3, vitris=(vitri(count=4), vitri(count=6))
        )
        assert summary.video_id == 3
        assert len(summary) == 2
        assert summary.num_frames == 10
        assert summary.dim == 4

    def test_explicit_num_frames_must_match(self):
        with pytest.raises(ValueError, match="num_frames"):
            VideoSummary(video_id=0, vitris=(vitri(count=4),), num_frames=5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VideoSummary(video_id=0, vitris=())

    def test_mixed_dims_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            VideoSummary(video_id=0, vitris=(vitri(dim=3), vitri(dim=4)))

    def test_non_vitri_rejected(self):
        with pytest.raises(TypeError):
            VideoSummary(video_id=0, vitris=("not a vitri",))

    def test_matrix_accessors(self):
        summary = VideoSummary(
            video_id=0,
            vitris=(
                vitri(count=2, radius=0.1, offset=0.0),
                vitri(count=3, radius=0.2, offset=1.0),
            ),
        )
        assert summary.positions().shape == (2, 4)
        assert np.allclose(summary.radii(), [0.1, 0.2])
        assert np.array_equal(summary.counts(), [2, 3])

    def test_accepts_list_of_vitris(self):
        summary = VideoSummary(video_id=1, vitris=[vitri()])
        assert isinstance(summary.vitris, tuple)
