"""Tests for the quantised-RGB-histogram feature extractor."""

import numpy as np
import pytest

from repro.datasets.features import histogram_dim, rgb_histogram, video_histograms


class TestHistogramDim:
    def test_paper_setting(self):
        assert histogram_dim(2) == 64

    def test_other_depths(self):
        assert histogram_dim(1) == 8
        assert histogram_dim(3) == 512

    def test_invalid(self):
        with pytest.raises(ValueError):
            histogram_dim(0)
        with pytest.raises(TypeError):
            histogram_dim(2.0)


class TestRgbHistogram:
    def test_normalised(self, rng):
        image = rng.integers(0, 256, (24, 32, 3), dtype=np.uint8)
        hist = rgb_histogram(image)
        assert hist.shape == (64,)
        assert (hist >= 0).all()
        assert hist.sum() == pytest.approx(1.0)

    def test_solid_color_single_bin(self):
        # Pure black: all mass in bin 0.
        black = np.zeros((10, 10, 3), dtype=np.uint8)
        hist = rgb_histogram(black)
        assert hist[0] == 1.0
        assert hist[1:].sum() == 0.0

    def test_pure_white_last_bin(self):
        white = np.full((4, 4, 3), 255, dtype=np.uint8)
        hist = rgb_histogram(white)
        assert hist[63] == 1.0

    def test_known_bin_index(self):
        # R=255 (level 3), G=0, B=128 (level 2): bin = 3*16 + 0*4 + 2 = 50.
        pixel = np.zeros((1, 1, 3), dtype=np.uint8)
        pixel[0, 0] = [255, 0, 128]
        hist = rgb_histogram(pixel)
        assert hist[50] == 1.0

    def test_quantisation_uses_high_bits(self):
        # Values 0..63 all map to level 0 at 2 bits.
        image = np.full((2, 2, 3), 63, dtype=np.uint8)
        assert rgb_histogram(image)[0] == 1.0
        image = np.full((2, 2, 3), 64, dtype=np.uint8)
        assert rgb_histogram(image)[0] == 0.0

    def test_float_images_accepted(self):
        image = np.ones((3, 3, 3)) * 0.999
        hist = rgb_histogram(image)
        assert hist[63] == 1.0

    def test_float_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rgb_histogram(np.full((2, 2, 3), 2.0))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            rgb_histogram(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            rgb_histogram(np.zeros((4, 4, 4), dtype=np.uint8))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            rgb_histogram(np.zeros((2, 2, 3), dtype=np.int32))

    def test_bits_3(self, rng):
        image = rng.integers(0, 256, (8, 8, 3), dtype=np.uint8)
        hist = rgb_histogram(image, bits=3)
        assert hist.shape == (512,)
        assert hist.sum() == pytest.approx(1.0)

    def test_similar_images_similar_histograms(self, rng):
        base = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        noisy = np.clip(
            base.astype(np.int32) + rng.integers(-5, 6, base.shape), 0, 255
        ).astype(np.uint8)
        different = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        d_noisy = np.linalg.norm(rgb_histogram(base) - rgb_histogram(noisy))
        d_other = np.linalg.norm(rgb_histogram(base) - rgb_histogram(different))
        assert d_noisy < d_other


class TestVideoHistograms:
    def test_stack_shape(self, rng):
        frames = rng.integers(0, 256, (5, 8, 8, 3), dtype=np.uint8)
        features = video_histograms(frames)
        assert features.shape == (5, 64)
        assert np.allclose(features.sum(axis=1), 1.0)

    def test_accepts_iterable(self, rng):
        frames = [
            rng.integers(0, 256, (4, 4, 3), dtype=np.uint8) for _ in range(3)
        ]
        assert video_histograms(frames).shape == (3, 64)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            video_histograms([])

    def test_end_to_end_with_summarize(self, rng):
        """The advertised real-data pipeline: decoded frames -> histograms
        -> summary -> index."""
        import repro

        def synthetic_clip(tint):
            frames = []
            for _ in range(12):
                base = np.full((8, 8, 3), tint, dtype=np.int32)
                noise = rng.integers(-10, 11, base.shape)
                frames.append(np.clip(base + noise, 0, 255).astype(np.uint8))
            return video_histograms(frames)

        summaries = [
            repro.summarize_video(i, synthetic_clip(tint), 0.3, seed=i)
            for i, tint in enumerate((30, 100, 220))
        ]
        index = repro.VitriIndex.build(summaries, 0.3)
        result = index.knn(summaries[1], 1)
        assert result.videos[0] == 1
