"""Tests for repro.storage.wal (write-ahead log protocol)."""

import os

import pytest

from repro.storage.page import PAGE_CONTENT_SIZE
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog


def content(byte: int) -> bytes:
    return bytes([byte]) * PAGE_CONTENT_SIZE


class TestWalBasics:
    def test_fresh_log_has_header(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "x.wal")
        assert os.path.getsize(tmp_path / "x.wal") == 8
        wal.close()

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "notawal"
        path.write_bytes(b"definitely not a log")
        with pytest.raises(ValueError, match="write-ahead log"):
            WriteAheadLog(path)

    def test_torn_header_is_restamped(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(b"\x4c")  # 1 byte: crash during creation
        wal = WriteAheadLog(path)
        assert os.path.getsize(path) == 8
        wal.close()

    def test_register_rejects_duplicates_and_bad_ids(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "x.wal")
        wal.register(0, object())
        with pytest.raises(ValueError, match="already registered"):
            wal.register(0, object())
        with pytest.raises(ValueError):
            wal.register(300, object())
        with pytest.raises(TypeError):
            wal.register("zero", object())
        wal.crash()

    def test_log_page_validates_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "x.wal")
        with pytest.raises(ValueError):
            wal.log_page(0, 0, b"short")
        wal.close()

    def test_pending_served_before_commit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "x.wal")
        wal.log_page(0, 3, content(7))
        assert wal.pending_page(0, 3) == content(7)
        assert wal.pending_page(0, 4) is None
        assert wal.has_pending
        wal.crash()


class TestWalCommitAndRecovery:
    def test_commit_applies_and_resets(self, tmp_path):
        data = tmp_path / "d.pages"
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        wal.recover()
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:4] = b"wxyz"
        pager.write_page(page)
        wal.commit()
        # Log back to bare header, data applied to the file.
        assert os.path.getsize(tmp_path / "d.wal") == 8
        assert not wal.has_pending
        raw = data.read_bytes()
        assert raw[:4] == b"wxyz"
        wal.close()
        pager.close()

    def test_uncommitted_tail_discarded_on_recovery(self, tmp_path):
        data = tmp_path / "d.pages"
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        wal.recover()
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:3] = b"one"
        pager.write_page(page)
        wal.commit()
        page = pager.read_page(pid)
        page.data[:3] = b"two"
        pager.write_page(page)  # journaled but never committed
        wal.crash()
        pager.crash()

        wal2 = WriteAheadLog(tmp_path / "d.wal")
        pager2 = Pager(data, wal=wal2)
        wal2.recover()
        assert bytes(pager2.read_page(0).data[:3]) == b"one"
        wal2.close()
        pager2.close()

    def test_recovery_is_idempotent(self, tmp_path):
        """Recovering twice (e.g. crash during recovery's apply phase)
        converges to the same state: full-page redo is idempotent."""
        data = tmp_path / "d.pages"
        with Pager(data) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:2] = b"ok"
            pager.write_page(page)
        for _ in range(3):
            wal = WriteAheadLog(tmp_path / "d.pages.wal")
            pager = Pager(data, wal=wal)
            wal.recover()
            assert bytes(pager.read_page(0).data[:2]) == b"ok"
            wal.close()
            pager.close()

    def test_recover_rejects_unregistered_file_ids(self, tmp_path):
        """A committed log referencing a file id nobody registered must
        fail loudly instead of silently dropping committed data."""
        import struct
        import zlib

        def record(kind, file_id, page_id, payload):
            body = struct.pack("<BBQI", kind, file_id, page_id, len(payload))
            body += payload
            return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

        log = tmp_path / "d.wal"
        raw = struct.pack("<II", 0x5669574C, 1)
        raw += record(1, 5, 0, content(1))  # PAGE for unregistered fid 5
        raw += record(2, 0, 0, struct.pack("<B", 1) + struct.pack("<BQ", 5, 1))
        log.write_bytes(raw)
        wal = WriteAheadLog(log)
        pager = Pager(tmp_path / "d.pages", wal=wal, wal_file_id=0)
        with pytest.raises(ValueError, match="unregistered"):
            wal.recover()
        wal.crash()
        pager.crash()

    def test_multi_file_commit_is_one_unit(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "shared.wal")
        a = Pager(tmp_path / "a.pages", wal=wal, wal_file_id=0)
        b = Pager(tmp_path / "b.pages", wal=wal, wal_file_id=1)
        wal.recover()
        pa = a.allocate_page()
        pb = b.allocate_page()
        page = a.read_page(pa)
        page.data[:1] = b"A"
        a.write_page(page)
        page = b.read_page(pb)
        page.data[:1] = b"B"
        b.write_page(page)
        wal.commit()
        wal.close()
        a.close()
        b.close()

        wal2 = WriteAheadLog(tmp_path / "shared.wal")
        a2 = Pager(tmp_path / "a.pages", wal=wal2, wal_file_id=0)
        b2 = Pager(tmp_path / "b.pages", wal=wal2, wal_file_id=1)
        wal2.recover()
        assert bytes(a2.read_page(0).data[:1]) == b"A"
        assert bytes(b2.read_page(0).data[:1]) == b"B"
        wal2.close()
        a2.close()
        b2.close()

    def test_meta_blob_committed_atomically(self, tmp_path):
        meta_path = tmp_path / "meta.json"
        wal = WriteAheadLog(tmp_path / "d.wal", meta_path=meta_path)
        pager = Pager(tmp_path / "d.pages", wal=wal)
        wal.recover()
        pager.allocate_page()
        wal.commit(meta=b'{"n": 1}')
        assert meta_path.read_bytes() == b'{"n": 1}'
        wal.close()
        pager.close()

    def test_meta_without_meta_path_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(tmp_path / "d.pages", wal=wal)
        wal.recover()
        pager.allocate_page()
        with pytest.raises(ValueError, match="meta_path"):
            wal.commit(meta=b"{}")
        wal.crash()
        pager.crash()

    def test_empty_commit_is_fsync_only(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(tmp_path / "d.pages", wal=wal)
        wal.recover()
        wal.commit()  # nothing pending
        assert os.path.getsize(tmp_path / "d.wal") == 8
        wal.close()
        pager.close()

    def test_allocations_roll_back_without_commit(self, tmp_path):
        data = tmp_path / "d.pages"
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        wal.recover()
        pager.allocate_page()
        pager.allocate_page()
        assert pager.num_pages == 2
        wal.crash()
        pager.crash()
        # Nothing committed: the data file never grew.
        wal2 = WriteAheadLog(tmp_path / "d.wal")
        pager2 = Pager(data, wal=wal2)
        wal2.recover()
        assert pager2.num_pages == 0
        wal2.close()
        pager2.close()


class TestWalCorruption:
    def _committed_log(self, tmp_path):
        """Build a log holding one committed transaction, unapplied."""
        data = tmp_path / "d.pages"
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        wal.recover()
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:4] = b"keep"
        pager.write_page(page)
        wal.commit()
        wal.crash()
        pager.crash()
        return data

    def test_garbage_appended_after_reset_is_ignored(self, tmp_path):
        data = self._committed_log(tmp_path)
        with open(tmp_path / "d.wal", "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 10)
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        wal.recover()
        assert bytes(pager.read_page(0).data[:4]) == b"keep"
        wal.close()
        pager.close()

    def test_flipped_record_byte_invalidates_tail(self, tmp_path):
        """A logged record whose CRC fails ends the scan: state committed
        before it survives, the broken transaction is discarded."""
        import struct
        import zlib

        def record(kind, file_id, page_id, payload):
            body = struct.pack("<BBQI", kind, file_id, page_id, len(payload))
            body += payload
            return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

        data = self._committed_log(tmp_path)  # data file holds "keep"
        commit = struct.pack("<B", 1) + struct.pack("<BQ", 0, 1)
        txn = record(1, 0, 0, content(9)) + record(2, 0, 0, commit)
        txn = bytearray(txn)
        txn[100] ^= 0xFF  # corrupt one byte of the logged page image
        with open(tmp_path / "d.wal", "ab") as handle:
            handle.write(bytes(txn))
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        wal.recover()
        assert bytes(pager.read_page(0).data[:4]) == b"keep"
        wal.close()
        pager.close()

    def test_valid_unapplied_commit_is_replayed(self, tmp_path):
        """The mirror case: a valid committed-but-unapplied transaction in
        the log is applied on recovery."""
        import struct
        import zlib

        def record(kind, file_id, page_id, payload):
            body = struct.pack("<BBQI", kind, file_id, page_id, len(payload))
            body += payload
            return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)

        data = self._committed_log(tmp_path)
        commit = struct.pack("<B", 1) + struct.pack("<BQ", 0, 1)
        txn = record(1, 0, 0, content(9)) + record(2, 0, 0, commit)
        with open(tmp_path / "d.wal", "ab") as handle:
            handle.write(txn)
        wal = WriteAheadLog(tmp_path / "d.wal")
        pager = Pager(data, wal=wal)
        assert wal.recover() is True
        assert bytes(pager.read_page(0).data) == content(9)
        wal.close()
        pager.close()
