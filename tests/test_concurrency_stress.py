"""Concurrency stress: runtime lock acquisitions vs. the static model.

The static analysis (:mod:`repro.analysis.concurrency`) derives a
lock-order graph without running anything; :mod:`repro.utils.locks`
records the orders actually taken at runtime.  These tests hammer the
sharded database and the query engine from many threads with tracking
enabled and assert the two views agree:

* no :class:`LockOrderViolation` fires (the runtime graph stays acyclic
  even under adversarial interleavings), and
* every runtime edge is present in the static graph — the analysis is
  an over-approximation, so an unexplained runtime edge means the model
  missed a code path.

``REPRO_TRACK_LOCKS`` is consulted when a lock is *constructed*, so the
fixtures set it (via monkeypatch) before building any objects.
"""

import threading
from pathlib import Path

import pytest

from repro.analysis.concurrency import build_model_from_paths
from repro.core.index import VitriIndex
from repro.core.engine import QueryEngine
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.shard import KeyRangePartitioner, ShardedVideoDatabase
from repro.utils.locks import LOCK_ORDER_GRAPH, TrackedRLock, make_lock

EPSILON = 0.3
SEEDS = [11, 23, 47]

_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


@pytest.fixture(scope="module")
def static_edges():
    """The statically-derived lock-order graph over the whole library."""
    return build_model_from_paths([str(_SRC)]).edge_set()


@pytest.fixture()
def tracked(monkeypatch):
    """Enable lock tracking and isolate this test's observed edges."""
    monkeypatch.setenv("REPRO_TRACK_LOCKS", "1")
    LOCK_ORDER_GRAPH.reset()
    yield
    LOCK_ORDER_GRAPH.reset()


def _summaries(seed):
    config = DatasetConfig(
        dim=8,
        num_families=3,
        family_size=3,
        num_distractors=6,
        duration_classes=((20, 0.5), (12, 0.5)),
    )
    dataset = generate_dataset(config, seed=seed)
    return [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]


def _run_threads(targets):
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


@pytest.mark.parametrize("seed", SEEDS)
def test_fleet_stress_runtime_graph_within_static(
    tracked, static_edges, tmp_path, seed
):
    """Concurrent knn / checkpoint / rebalance on a durable fleet."""
    summaries = _summaries(seed)
    fleet = ShardedVideoDatabase(
        EPSILON,
        partitioner=KeyRangePartitioner.fit(summaries, 3),
        path=str(tmp_path / "fleet"),
    )
    assert isinstance(fleet._lock, TrackedRLock)  # env gate took effect
    for summary in summaries:
        fleet.add_summary(summary)

    stop = threading.Event()

    def query(offset):
        def run():
            position = offset
            while not stop.is_set():
                fleet.knn(summaries[position % len(summaries)], 3)
                position += 1

        return run

    def maintain():
        for _ in range(3):
            fleet.checkpoint()
        fleet.rebalance()
        stop.set()

    errors = _run_threads([query(0), query(5), query(9), maintain])
    stop.set()
    assert errors == []

    observed = LOCK_ORDER_GRAPH.edges()
    # The router's public ops nest into engine/pool/pager locks, so the
    # stress must have observed *something*.
    assert observed, "tracking was enabled but recorded no edges"
    unexplained = observed - static_edges
    assert not unexplained, (
        f"runtime lock-order edges missing from the static model: "
        f"{sorted(unexplained)}"
    )
    fleet.close()


def test_engine_stress_runtime_graph_within_static(tracked, static_edges):
    """knn_many with worker threads against a standalone engine."""
    summaries = _summaries(7)
    index = VitriIndex.build(summaries, EPSILON, reference="optimal")
    engine = QueryEngine(index, cache_size=8)
    batch = engine.knn_many(summaries * 2, 3, workers=4)
    assert len(batch.results) == 2 * len(summaries)

    observed = LOCK_ORDER_GRAPH.edges()
    unexplained = observed - static_edges
    assert not unexplained, (
        f"runtime lock-order edges missing from the static model: "
        f"{sorted(unexplained)}"
    )


def test_static_graph_is_nonempty_and_acyclic(static_edges):
    """The library's own graph orders router above storage, and has no
    cycles (VIL009 clean means this must hold)."""
    assert ("BufferPool._lock", "Pager._lock") in static_edges
    assert any(
        held == "ShardedVideoDatabase._lock" for held, _ in static_edges
    )
    adjacency = {}
    for held, acquired in static_edges:
        adjacency.setdefault(held, set()).add(acquired)

    def reaches(source, target):
        stack, seen = [source], set()
        while stack:
            node = stack.pop()
            if node == target:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    for held, acquired in static_edges:
        assert not reaches(acquired, held), (
            f"static cycle through {held} -> {acquired}"
        )


def test_tracking_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TRACK_LOCKS", raising=False)
    lock = make_lock("Fixture._lock")
    assert not isinstance(lock, TrackedRLock)
