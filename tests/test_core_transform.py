"""Tests for the one-dimensional transformation (paper Section 5.1)."""

import numpy as np
import pytest

from repro.core.transform import OneDimensionalTransform


class TestOneDimensionalTransform:
    def test_key_is_distance_to_reference(self, rng):
        data = rng.uniform(0, 1, (30, 5))
        transform = OneDimensionalTransform("data_center").fit(data)
        reference = transform.reference_point_
        point = data[3]
        assert transform.key(point) == pytest.approx(
            float(np.linalg.norm(point - reference))
        )

    def test_keys_batch_matches_scalar(self, rng):
        data = rng.uniform(0, 1, (25, 4))
        transform = OneDimensionalTransform("optimal").fit(data)
        keys = transform.keys(data)
        for i in range(25):
            assert keys[i] == pytest.approx(transform.key(data[i]))

    def test_triangle_filter_is_lossless(self, rng):
        """Every point within radius r of a query has a key inside
        [key(q) - r, key(q) + r] — no false negatives, ever."""
        data = rng.uniform(0, 1, (200, 6))
        for strategy in ("optimal", "data_center", "space_center"):
            transform = OneDimensionalTransform(strategy).fit(data)
            keys = transform.keys(data)
            for _ in range(20):
                query = rng.uniform(0, 1, 6)
                radius = rng.uniform(0.05, 0.8)
                low, high = transform.search_range(query, radius)
                distances = np.linalg.norm(data - query, axis=1)
                inside = distances <= radius
                in_range = (keys >= low) & (keys <= high)
                assert not np.any(inside & ~in_range)

    def test_search_range_clamped_at_zero(self, rng):
        data = rng.uniform(0, 1, (10, 3))
        transform = OneDimensionalTransform("data_center").fit(data)
        low, high = transform.search_range(data.mean(axis=0), 100.0)
        assert low == 0.0
        assert high > 0.0

    def test_search_range_negative_radius(self, rng):
        data = rng.uniform(0, 1, (10, 3))
        transform = OneDimensionalTransform("data_center").fit(data)
        with pytest.raises(ValueError):
            transform.search_range(data[0], -1.0)

    def test_unfitted_raises(self):
        transform = OneDimensionalTransform()
        with pytest.raises(RuntimeError):
            transform.key(np.zeros(3))
        with pytest.raises(RuntimeError):
            transform.keys(np.zeros((2, 3)))

    def test_strategy_by_name_or_instance(self):
        from repro.core.reference import DataCenter

        assert OneDimensionalTransform("data_center").strategy.name == "data_center"
        assert OneDimensionalTransform(DataCenter()).strategy.name == "data_center"

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            OneDimensionalTransform("bogus")
        with pytest.raises(TypeError):
            OneDimensionalTransform(42)

    def test_dim_mismatch_after_fit(self, rng):
        transform = OneDimensionalTransform("data_center").fit(
            rng.uniform(0, 1, (5, 4))
        )
        with pytest.raises(ValueError):
            transform.key(np.zeros(3))

    def test_keys_non_negative(self, rng):
        data = rng.uniform(0, 1, (50, 4))
        transform = OneDimensionalTransform("optimal").fit(data)
        assert (transform.keys(data) >= 0).all()


class TestKeyBitConsistency:
    """Regression: scalar and batch key computation must agree to the bit.

    numpy's norm(vector) (BLAS dnrm2) and norm(matrix, axis=1) (pairwise
    reduction) can differ in the last ULP; the index relies on a point
    always mapping to the exact key it was stored under (a removal
    recomputes keys of bulk-loaded records)."""

    def test_scalar_equals_batch_bitwise(self, rng):
        for dim in (3, 6, 16, 64):
            data = rng.uniform(0, 1, (200, dim))
            transform = OneDimensionalTransform("optimal").fit(data)
            batch = transform.keys(data)
            for i in range(0, 200, 7):
                assert transform.key(data[i]) == batch[i]  # exact equality
