"""Tests for query composition (interval merging, paper Section 5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.composition import compose_ranges


class TestComposeRanges:
    def test_empty(self):
        assert compose_ranges([]) == []

    def test_single(self):
        assert compose_ranges([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_disjoint_preserved_sorted(self):
        ranges = [(5.0, 6.0), (1.0, 2.0), (3.0, 4.0)]
        assert compose_ranges(ranges) == [(1.0, 2.0), (3.0, 4.0), (5.0, 6.0)]

    def test_overlapping_merged(self):
        assert compose_ranges([(1.0, 3.0), (2.0, 5.0)]) == [(1.0, 5.0)]

    def test_touching_merged(self):
        # Closed-interval semantics: [1,2] and [2,3] share the point 2.
        assert compose_ranges([(1.0, 2.0), (2.0, 3.0)]) == [(1.0, 3.0)]

    def test_containment(self):
        assert compose_ranges([(1.0, 10.0), (3.0, 4.0)]) == [(1.0, 10.0)]

    def test_complete_overlap_example(self):
        # The paper's Figure 13: one range fully covering another.
        assert compose_ranges([(2.0, 8.0), (3.0, 5.0), (2.5, 7.0)]) == [(2.0, 8.0)]

    def test_chain_of_overlaps(self):
        ranges = [(i * 1.0, i + 1.5) for i in range(10)]
        assert compose_ranges(ranges) == [(0.0, 10.5)]

    def test_degenerate_points(self):
        assert compose_ranges([(1.0, 1.0), (1.0, 1.0)]) == [(1.0, 1.0)]
        assert compose_ranges([(1.0, 1.0), (2.0, 2.0)]) == [(1.0, 1.0), (2.0, 2.0)]

    def test_input_not_mutated(self):
        ranges = [(3.0, 4.0), (1.0, 2.0)]
        compose_ranges(ranges)
        assert ranges == [(3.0, 4.0), (1.0, 2.0)]

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            compose_ranges([(2.0, 1.0)])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            compose_ranges([(float("nan"), 1.0)])

    @settings(max_examples=200, deadline=None)
    @given(
        ranges=st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 100, allow_nan=False),
            ).map(lambda pair: (min(pair), max(pair))),
            max_size=30,
        )
    )
    def test_union_preserved_and_disjoint(self, ranges):
        composed = compose_ranges(ranges)
        # Disjoint and sorted.
        for (alow, ahigh), (blow, bhigh) in zip(composed, composed[1:]):
            assert ahigh < blow
        # Union preserved: probe points inside/outside behave identically.
        probes = [low for low, _ in ranges] + [high for _, high in ranges]
        probes += [(low + high) / 2 for low, high in ranges]
        for probe in probes:
            in_original = any(low <= probe <= high for low, high in ranges)
            in_composed = any(low <= probe <= high for low, high in composed)
            assert in_original == in_composed


class TestShardBoundaryComposition:
    """Properties the scatter-gather router relies on.

    Each shard composes a query's ranges in its own key space, and the
    router prunes with the composed output.  These hold only if
    composition behaves like a pure interval union: composing per-shard
    slices and re-composing the concatenation must equal composing
    everything at once, no matter how ranges are split across shards.
    """

    @settings(max_examples=200, deadline=None)
    @given(
        ranges=st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 100, allow_nan=False),
            ).map(lambda pair: (min(pair), max(pair))),
            max_size=24,
        ),
        assignment=st.lists(
            st.integers(min_value=0, max_value=3), max_size=24
        ),
        num_shards=st.integers(min_value=1, max_value=4),
    )
    def test_sharded_composition_matches_oracle(
        self, ranges, assignment, num_shards
    ):
        # Deterministically scatter each range to one of num_shards
        # "shards" (pad/truncate the assignment to the range count).
        assignment = (assignment + [0] * len(ranges))[: len(ranges)]
        shards = [[] for _ in range(num_shards)]
        for target, item in zip(assignment, ranges):
            shards[target % num_shards].append(item)

        per_shard = [compose_ranges(shard) for shard in shards]
        regrouped = [span for shard in per_shard for span in shard]
        oracle = compose_ranges(ranges)
        assert compose_ranges(regrouped) == oracle

    @settings(max_examples=100, deadline=None)
    @given(
        ranges=st.lists(
            st.tuples(
                st.floats(0, 100, allow_nan=False),
                st.floats(0, 100, allow_nan=False),
            ).map(lambda pair: (min(pair), max(pair))),
            max_size=24,
        )
    )
    def test_composition_is_idempotent(self, ranges):
        once = compose_ranges(ranges)
        assert compose_ranges(once) == once

    def test_boundary_touching_slices_merge_back(self):
        # A query interval cut exactly at a shard boundary: the halves
        # share the boundary point (closed intervals) and must fuse back
        # into the original when the router re-composes them.
        left = compose_ranges([(0.0, 2.5)])
        right = compose_ranges([(2.5, 5.0)])
        assert compose_ranges(left + right) == [(0.0, 5.0)]
