"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def dataset_path(tmp_path):
    path = str(tmp_path / "ads.npz")
    code = main(
        [
            "generate",
            "--out", path,
            "--preset", "precision",
            "--families", "3",
            "--family-size", "3",
            "--distractors", "4",
            "--seed", "5",
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_dataset(self, dataset_path, capsys):
        from repro.datasets.loader import VideoDataset

        dataset = VideoDataset.load(dataset_path)
        assert dataset.num_videos == 3 * 3 + 4

    def test_default_preset(self, tmp_path, capsys):
        path = str(tmp_path / "d.npz")
        assert main(["generate", "--out", path, "--families", "1",
                     "--family-size", "1", "--distractors", "1"]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 videos" in out


class TestStats:
    def test_prints_table(self, dataset_path, capsys):
        assert main(["stats", "--dataset", dataset_path]) == 0
        out = capsys.readouterr().out
        assert "Frames per video" in out
        assert "13 videos" in out


class TestSummarize:
    def test_prints_row(self, dataset_path, capsys):
        assert main(
            ["summarize", "--dataset", dataset_path, "--epsilon", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "clusters" in out
        assert "0.3" in out


class TestBuildAndQuery:
    def test_round_trip(self, dataset_path, tmp_path, capsys):
        prefix = str(tmp_path / "idx")
        assert main(
            [
                "build",
                "--dataset", dataset_path,
                "--out", prefix,
                "--epsilon", "0.3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "built" in out

        assert main(
            [
                "query",
                "--index", prefix,
                "--dataset", dataset_path,
                "--video-id", "0",
                "--k", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "top-5 for video 0" in out
        assert "page accesses" in out
        # The query video itself must rank first.
        first_row = [
            line for line in out.splitlines() if line.startswith("1 ")
        ][0]
        assert " 0 " in f" {first_row} "

    def test_query_naive_method(self, dataset_path, tmp_path, capsys):
        prefix = str(tmp_path / "idx")
        main(["build", "--dataset", dataset_path, "--out", prefix])
        capsys.readouterr()
        assert main(
            [
                "query",
                "--index", prefix,
                "--dataset", dataset_path,
                "--video-id", "1",
                "--method", "naive",
            ]
        ) == 0
        assert "naive method" in capsys.readouterr().out

    def test_query_bad_video_id(self, dataset_path, tmp_path, capsys):
        prefix = str(tmp_path / "idx")
        main(["build", "--dataset", dataset_path, "--out", prefix])
        capsys.readouterr()
        assert main(
            [
                "query",
                "--index", prefix,
                "--dataset", dataset_path,
                "--video-id", "999",
            ]
        ) == 1
        assert "out of range" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSummaryCache:
    def test_build_with_cached_summaries(self, dataset_path, tmp_path, capsys):
        cache = str(tmp_path / "cache.npz")
        prefix1 = str(tmp_path / "idx1")
        prefix2 = str(tmp_path / "idx2")
        assert main(
            [
                "build", "--dataset", dataset_path, "--out", prefix1,
                "--save-summaries", cache,
            ]
        ) == 0
        assert main(
            [
                "build", "--dataset", dataset_path, "--out", prefix2,
                "--summaries", cache,
            ]
        ) == 0
        capsys.readouterr()
        # Both indexes answer identically.
        main(["query", "--index", prefix1, "--dataset", dataset_path,
              "--video-id", "0", "--k", "3"])
        first = capsys.readouterr().out
        main(["query", "--index", prefix2, "--dataset", dataset_path,
              "--video-id", "0", "--k", "3"])
        second = capsys.readouterr().out
        assert first.splitlines()[:5] == second.splitlines()[:5]

    def test_cache_epsilon_mismatch(self, dataset_path, tmp_path, capsys):
        cache = str(tmp_path / "cache.npz")
        main(["build", "--dataset", dataset_path,
              "--out", str(tmp_path / "a"), "--save-summaries", cache])
        capsys.readouterr()
        with pytest.raises(ValueError, match="epsilon"):
            main(["build", "--dataset", dataset_path,
                  "--out", str(tmp_path / "b"), "--summaries", cache,
                  "--epsilon", "0.5"])


class TestBenchServe:
    def test_sweeps_and_writes_json(self, dataset_path, tmp_path, capsys):
        import json

        out = str(tmp_path / "serving.json")
        code = main(
            [
                "bench-serve",
                "--dataset", dataset_path,
                "--queries", "6",
                "--k", "3",
                "--workers", "1,2",
                "--read-latency", "0.0005",
                "--out", out,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "workers" in printed and "QPS" in printed
        payload = json.loads(open(out, encoding="utf-8").read())
        assert payload["worker_counts"] == [1, 2]
        assert len(payload["runs"]) == 2
        assert payload["runs"][0]["queries"] == 6

    def test_bad_workers_list(self, dataset_path, capsys):
        code = main(
            [
                "bench-serve",
                "--dataset", dataset_path,
                "--queries", "2",
                "--workers", "1,two",
                "--read-latency", "0",
            ]
        )
        assert code == 1
        assert "comma-separated" in capsys.readouterr().err


class TestBenchShard:
    def test_sweeps_and_writes_json(self, dataset_path, tmp_path, capsys):
        out = str(tmp_path / "sharding.json")
        code = main(
            [
                "bench-shard",
                "--dataset", dataset_path,
                "--queries", "4",
                "--shards", "1,2",
                "--read-latency", "0",
                "--out", out,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "scatter-gather" in printed
        assert "speedup" in printed

        import json

        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["shard_counts"] == [1, 2]
        assert len(payload["runs"]) == 2
        assert payload["runs"][1]["shards"] == 2

    def test_hash_partitioner(self, dataset_path, capsys):
        code = main(
            [
                "bench-shard",
                "--dataset", dataset_path,
                "--queries", "2",
                "--shards", "1,2",
                "--partitioner", "hash",
                "--read-latency", "0",
            ]
        )
        assert code == 0
        assert "hash placement" in capsys.readouterr().out

    def test_bad_shards_list(self, dataset_path, capsys):
        code = main(
            ["bench-shard", "--dataset", dataset_path, "--shards", "1,x"]
        )
        assert code == 1
        assert "comma-separated" in capsys.readouterr().err

    def test_shards_must_start_with_one(self, dataset_path, capsys):
        code = main(
            [
                "bench-shard",
                "--dataset", dataset_path,
                "--queries", "2",
                "--shards", "2,4",
                "--read-latency", "0",
            ]
        )
        assert code == 1
        assert "must start with 1" in capsys.readouterr().err


class TestCheckSharded:
    def _build_fleet(self, dataset_path, path):
        from repro.datasets.loader import VideoDataset
        from repro.shard import ShardedVideoDatabase

        dataset = VideoDataset.load(dataset_path)
        fleet = ShardedVideoDatabase(
            0.3, partitioner="hash", num_shards=3, path=path
        )
        for i in range(dataset.num_videos):
            fleet.add(dataset.frames(i))
        fleet.close()

    def test_reports_consistent_fleet(self, dataset_path, tmp_path, capsys):
        path = str(tmp_path / "fleet")
        self._build_fleet(dataset_path, path)
        assert main(["check", "--index", path, "--sharded"]) == 0
        out = capsys.readouterr().out
        assert "consistent" in out
        assert "3 shards" in out
        assert "hash placement" in out

    def test_missing_fleet_errors(self, tmp_path, capsys):
        code = main(
            ["check", "--index", str(tmp_path / "nowhere"), "--sharded"]
        )
        assert code == 1
        assert "cannot open fleet" in capsys.readouterr().err


class TestBenchFaults:
    def test_sweeps_and_writes_json(self, dataset_path, tmp_path, capsys):
        import json

        out = str(tmp_path / "faults.json")
        code = main(
            [
                "bench-faults",
                "--dataset", dataset_path,
                "--queries", "4",
                "--k", "3",
                "--out", out,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fault sweep" in printed
        assert "availability" in printed
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["availability"] >= 0.99
        assert len(payload["scenarios"]) == 5
        assert payload["total_retries"] > 0
        assert payload["total_breaker_trips"] > 0


class TestFleetHealth:
    def _faulted_fleet(self, dataset_path, path):
        from repro.datasets.loader import VideoDataset
        from repro.shard import (
            BreakerPolicy,
            FaultPolicy,
            KeyRangePartitioner,
            RetryPolicy,
            ShardFault,
            ShardFaultInjector,
            ShardedVideoDatabase,
        )
        from repro.core.summarize import summarize_video
        from repro.utils.clock import VirtualClock

        dataset = VideoDataset.load(dataset_path)
        summaries = [
            summarize_video(i, dataset.frames(i), 0.3, seed=i)
            for i in range(dataset.num_videos)
        ]
        fleet = ShardedVideoDatabase(
            0.3,
            partitioner=KeyRangePartitioner.fit(summaries, 3),
            path=path,
            clock=VirtualClock(),
        )
        for summary in summaries:
            fleet.add_summary(summary)
        fleet.inject_shard_faults(
            ShardFaultInjector({1: [ShardFault.hard_down()]})
        )
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerPolicy(
                failure_rate=0.5, window=4, min_volume=2, cooldown=100.0
            ),
        )
        for summary in summaries[:3]:
            fleet.knn(
                summary, 3, prune=False, fault_policy=policy,
                fail_fast=False,
            )
        # close() checkpoints, which persists health.json.
        fleet.close()

    def test_reports_persisted_breakers(self, dataset_path, tmp_path, capsys):
        path = str(tmp_path / "fleet")
        self._faulted_fleet(dataset_path, path)
        assert main(["fleet-health", "--index", path]) == 0
        out = capsys.readouterr().out
        assert "fleet health" in out
        assert "open" in out
        assert "would be skipped" in out

    def test_healthy_fleet_has_no_warning(self, dataset_path, tmp_path, capsys):
        from repro.datasets.loader import VideoDataset
        from repro.shard import ShardedVideoDatabase

        path = str(tmp_path / "fleet")
        dataset = VideoDataset.load(dataset_path)
        fleet = ShardedVideoDatabase(
            0.3, partitioner="hash", num_shards=2, path=path
        )
        for i in range(dataset.num_videos):
            fleet.add(dataset.frames(i))
        fleet.close()
        assert main(["fleet-health", "--index", path]) == 0
        out = capsys.readouterr().out
        assert "fleet health" in out
        assert "would be skipped" not in out

    def test_missing_fleet_errors(self, tmp_path, capsys):
        code = main(
            ["fleet-health", "--index", str(tmp_path / "nowhere")]
        )
        assert code == 1
        assert "cannot open fleet" in capsys.readouterr().err

    def test_check_sharded_reports_skipped_shards(
        self, dataset_path, tmp_path, capsys
    ):
        path = str(tmp_path / "fleet")
        self._faulted_fleet(dataset_path, path)
        assert main(["check", "--index", path, "--sharded"]) == 0
        out = capsys.readouterr().out
        assert "persisted non-closed breakers" in out
        assert "consistent" in out

    def test_check_sharded_rejects_corrupt_health_file(
        self, dataset_path, tmp_path, capsys
    ):
        import os

        path = str(tmp_path / "fleet")
        self._faulted_fleet(dataset_path, path)
        with open(os.path.join(path, "health.json"), "w") as handle:
            handle.write("{not json")
        assert main(["check", "--index", path, "--sharded"]) == 1
        assert "cannot parse health.json" in capsys.readouterr().err


class TestCheckSegments:
    """`repro-video check --segments`: offline chain verification of a
    replication segment log, with or without an index to check."""

    @staticmethod
    def write_chain(path, tokens, *, first_seq=1):
        from repro.replication import SealedSegment, encode_segment

        raw = b""
        for offset, (base, after) in enumerate(zip(tokens, tokens[1:])):
            raw += encode_segment(
                SealedSegment(
                    seq=first_seq + offset,
                    base_token=base,
                    after_token=after,
                    payload=bytes([offset]),
                )
            )
        with open(path, "wb") as handle:
            handle.write(raw)
        return raw

    def test_standalone_log_verifies(self, tmp_path, capsys):
        log = str(tmp_path / "segments.log")
        self.write_chain(log, ["aa" * 16, "bb" * 16, "cc" * 16])
        assert main(["check", "--segments", log]) == 0
        out = capsys.readouterr().out
        assert "2 segment(s), seq 1..2, hash chain verified" in out

    def test_truncated_log_fails(self, tmp_path, capsys):
        log = str(tmp_path / "segments.log")
        raw = self.write_chain(log, ["aa" * 16, "bb" * 16, "cc" * 16])
        with open(log, "wb") as handle:
            handle.write(raw[:-5])
        assert main(["check", "--segments", log]) == 1
        assert "segment chain broken" in capsys.readouterr().err

    def test_empty_log_is_a_valid_zero_chain(self, tmp_path, capsys):
        log = str(tmp_path / "segments.log")
        with open(log, "wb"):
            pass
        assert main(["check", "--segments", log]) == 0
        assert "valid chain of length 0" in capsys.readouterr().out

    def test_check_requires_a_target(self, capsys):
        assert main(["check"]) == 1
        assert "nothing to check" in capsys.readouterr().err
