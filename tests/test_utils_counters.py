"""Tests for repro.utils.counters."""

import time

from repro.utils.counters import CostCounters, Timer


class TestCostCounters:
    def test_defaults_zero(self):
        c = CostCounters()
        assert c.page_reads == 0
        assert c.similarity_computations == 0
        assert c.extra == {}

    def test_snapshot(self):
        c = CostCounters(page_reads=3, similarity_computations=7)
        c.extra["custom"] = 2
        snap = c.snapshot()
        assert snap["page_reads"] == 3
        assert snap["similarity_computations"] == 7
        assert snap["custom"] == 2

    def test_reset(self):
        c = CostCounters(page_reads=3)
        c.extra["x"] = 1
        c.reset()
        assert c.page_reads == 0
        assert c.extra == {}

    def test_merge_sums_fields(self):
        a = CostCounters(page_reads=1, distance_computations=10)
        b = CostCounters(page_reads=2, btree_node_visits=5)
        merged = a.merge(b)
        assert merged.page_reads == 3
        assert merged.distance_computations == 10
        assert merged.btree_node_visits == 5
        # originals untouched
        assert a.page_reads == 1

    def test_merge_extra(self):
        a = CostCounters()
        b = CostCounters()
        a.extra["k"] = 1
        b.extra["k"] = 2
        b.extra["other"] = 3
        merged = a.merge(b)
        assert merged.extra == {"k": 3, "other": 3}

    def test_repr_only_nonzero(self):
        c = CostCounters(page_reads=5)
        assert "page_reads=5" in repr(c)
        assert "page_writes" not in repr(c)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_use(self):
        t = Timer()
        assert t.elapsed == 0.0


class TestAdd:
    def test_add_folds_in_place(self):
        total = CostCounters(page_reads=1, page_requests=2)
        total.extra["refines"] = 1
        other = CostCounters(
            page_reads=10,
            page_requests=20,
            page_writes=3,
            distance_computations=4,
            similarity_computations=5,
            btree_node_visits=6,
            records_scanned=7,
        )
        other.extra["refines"] = 2
        other.extra["rounds"] = 1
        total.add(other)
        assert total.page_reads == 11
        assert total.page_requests == 22
        assert total.page_writes == 3
        assert total.distance_computations == 4
        assert total.similarity_computations == 5
        assert total.btree_node_visits == 6
        assert total.records_scanned == 7
        assert total.extra == {"refines": 3, "rounds": 1}
        # add mutates in place; the source is untouched.
        assert other.page_reads == 10

    def test_add_agrees_with_merge(self):
        left = CostCounters(page_reads=2, similarity_computations=3)
        right = CostCounters(page_reads=5, btree_node_visits=1)
        merged = left.merge(right)
        left.add(right)
        assert left.snapshot() == merged.snapshot()
