"""Tests for the Pyramid-technique comparator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.pyramid import PyramidIndex, pyramid_value, query_ranges


class TestPyramidValue:
    def test_center_is_zero_height(self):
        value = pyramid_value(np.full(4, 0.5))
        assert value == pytest.approx(int(value))

    def test_negative_side(self):
        # Dominant coordinate 0 on the negative side -> pyramid 0.
        point = np.array([0.1, 0.5, 0.5])
        assert pyramid_value(point) == pytest.approx(0 + 0.4)

    def test_positive_side(self):
        # Dominant coordinate 1 on the positive side -> pyramid 1 + d.
        point = np.array([0.5, 0.9, 0.5])
        assert pyramid_value(point) == pytest.approx(3 + 1 + 0.4)

    def test_value_identifies_pyramid(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            point = rng.uniform(0, 1, 6)
            value = pyramid_value(point)
            pyramid = int(value)
            height = value - pyramid
            centred = point - 0.5
            j = pyramid % 6
            assert abs(abs(centred[j]) - height) < 1e-12
            assert np.all(np.abs(centred) <= abs(centred[j]) + 1e-12)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=2, max_size=8),
    )
    def test_height_bounded(self, coordinates):
        value = pyramid_value(np.asarray(coordinates))
        height = value - int(value)
        assert 0.0 <= height <= 0.5 + 1e-12


class TestQueryRanges:
    def test_lossless_filter(self):
        """Every point inside the query box has its pyramid value inside
        one of the returned ranges — the lemma the whole method rests on."""
        rng = np.random.default_rng(1)
        dim = 5
        points = rng.uniform(0, 1, (400, dim))
        values = np.array([pyramid_value(p) for p in points])
        for _ in range(30):
            center = rng.uniform(0, 1, dim)
            radius = rng.uniform(0.05, 0.4)
            ranges = query_ranges(center - radius, center + radius)
            inside_box = np.all(
                (points >= center - radius) & (points <= center + radius),
                axis=1,
            )
            in_ranges = np.zeros(len(points), dtype=bool)
            for low, high in ranges:
                in_ranges |= (values >= low - 1e-12) & (values <= high + 1e-12)
            assert not np.any(inside_box & ~in_ranges)

    def test_at_most_2d_ranges(self):
        dim = 7
        ranges = query_ranges(np.zeros(dim), np.ones(dim))
        assert len(ranges) <= 2 * dim

    def test_tiny_box_selects_few_pyramids(self):
        dim = 6
        center = np.full(dim, 0.5)
        center[0] = 0.05  # deep inside pyramid 0
        ranges = query_ranges(center - 0.01, center + 0.01)
        assert len(ranges) == 1
        low, high = ranges[0]
        assert 0.0 <= low <= high < 1.0  # pyramid number 0

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            query_ranges(np.ones(3), np.zeros(3))


class TestPyramidIndex:
    def test_results_match_vitri_index(self, small_index, small_summaries):
        pyramid = PyramidIndex(small_index)
        for query_id in range(0, len(small_summaries), 3):
            query = small_summaries[query_id]
            a = pyramid.knn(query, 8, cold=True)
            b = small_index.knn(query, 8, cold=True)
            assert a.videos == b.videos, f"query {query_id}"
            assert np.allclose(a.scores, b.scores)

    def test_entry_count(self, small_index):
        pyramid = PyramidIndex(small_index)
        assert pyramid.num_vitris == small_index.num_vitris

    def test_stats_populated(self, small_index, small_summaries):
        pyramid = PyramidIndex(small_index)
        stats = pyramid.knn(small_summaries[0], 5, cold=True).stats
        assert stats.page_requests > 0
        assert stats.ranges >= 1

    def test_invalid_arguments(self, small_index, small_summaries):
        pyramid = PyramidIndex(small_index)
        with pytest.raises(ValueError):
            pyramid.knn(small_summaries[0], 0)
        with pytest.raises(TypeError):
            pyramid.knn("nope", 3)
        with pytest.raises(TypeError):
            PyramidIndex("not an index")
