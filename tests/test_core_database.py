"""Tests for the VideoDatabase facade."""

import numpy as np
import pytest

from repro.core.database import VideoDatabase
from repro.core.maintenance import RebuildPolicy


def video(rng, anchor_scale=1.0, frames=25, dim=12):
    anchor = rng.dirichlet(np.full(dim, 0.1)) * anchor_scale
    noise = rng.normal(0, 0.01, (frames, dim))
    block = np.clip(anchor[None, :] + noise, 0, None)
    return block / block.sum(axis=1, keepdims=True)


@pytest.fixture()
def library(rng):
    return [video(rng) for _ in range(12)]


class TestAdd:
    def test_auto_ids(self, library):
        db = VideoDatabase(epsilon=0.3)
        ids = db.add_many(library)
        assert ids == list(range(12))
        assert len(db) == 12

    def test_explicit_id(self, library):
        db = VideoDatabase()
        assert db.add(library[0], video_id=42) == 42
        assert db.add(library[1]) == 43  # continues after the explicit id

    def test_duplicate_id_rejected_pending(self, library):
        db = VideoDatabase()
        db.add(library[0], video_id=1)
        with pytest.raises(ValueError, match="already present"):
            db.add(library[1], video_id=1)

    def test_duplicate_id_rejected_after_build(self, library):
        db = VideoDatabase()
        db.add_many(library[:4])
        db.build()
        with pytest.raises(ValueError, match="already present"):
            db.add(library[4], video_id=0)

    def test_add_after_build_uses_dynamic_insertion(self, library):
        db = VideoDatabase()
        db.add_many(library[:6])
        db.build()
        before = db.index.num_videos
        db.add(library[6])
        assert db.index.num_videos == before + 1


class TestQuery:
    def test_self_query_ranks_first(self, library):
        db = VideoDatabase(epsilon=0.3)
        db.add_many(library)
        result = db.query(library[3], k=3)
        assert result.videos[0] == 3
        assert result.scores[0] == pytest.approx(1.0)

    def test_query_builds_lazily(self, library):
        db = VideoDatabase()
        db.add_many(library)
        assert db.index is None
        db.query(library[0], k=1)
        assert db.index is not None

    def test_query_matches_pre_and_post_build_adds(self, library):
        eager = VideoDatabase()
        eager.add_many(library)
        eager.build()
        lazy = VideoDatabase()
        lazy.add_many(library[:6])
        lazy.build()
        for frames in library[6:]:
            lazy.add(frames)
        for probe in (library[0], library[8]):
            assert eager.query(probe, 4).videos == lazy.query(probe, 4).videos

    def test_query_unknown_content_short_results(self, library, rng):
        db = VideoDatabase()
        db.add_many(library[:5])
        stranger = video(rng)
        result = db.query(stranger, k=5)
        assert len(result) <= 5


class TestRemove:
    def test_remove_pending(self, library):
        db = VideoDatabase()
        db.add_many(library[:3])
        db.remove(1)
        assert len(db) == 2
        result = db.query(library[1], k=3)
        assert 1 not in result.videos

    def test_remove_indexed(self, library):
        db = VideoDatabase()
        db.add_many(library)
        db.build()
        db.remove(2)
        assert 2 not in db.query(library[2], k=12).videos

    def test_remove_unknown(self, library):
        db = VideoDatabase()
        db.add(library[0])
        with pytest.raises(ValueError):
            db.remove(99)


class TestLifecycle:
    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            VideoDatabase().build()

    def test_drift_angle(self, library):
        db = VideoDatabase()
        db.add_many(library)
        assert 0.0 <= db.drift_angle() <= np.pi / 2

    def test_auto_rebuild_policy(self, rng):
        db = VideoDatabase(
            epsilon=0.3,
            rebuild_policy=RebuildPolicy(max_angle_degrees=5.0, check_every=1),
        )
        dim = 12
        # Founding content varies along axis 0, later content along axis 5.
        for i in range(6):
            frames = np.full((10, dim), 1.0 / dim)
            frames[:, 0] += 0.05 * i
            db.add(frames / frames.sum(axis=1, keepdims=True))
        db.build()
        for i in range(20):
            frames = np.full((10, dim), 1.0 / dim)
            frames[:, 5] += 0.05 * (i + 1)
            db.add(frames / frames.sum(axis=1, keepdims=True))
        assert db.rebuilds >= 1

    def test_repr(self, library):
        db = VideoDatabase()
        assert "pending" in repr(db)
        db.add(library[0])
        db.build()
        assert "built" in repr(db)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            VideoDatabase(epsilon=0.0)


class TestDurable:
    """Directory-backed databases (crash-safety itself is covered by
    tests/test_storage_recovery.py and the stateful crash machine)."""

    def test_round_trip_reopen(self, library, tmp_path):
        with VideoDatabase(epsilon=0.3, path=tmp_path / "db") as db:
            ids = [db.add(frames) for frames in library[:4]]
            result = db.query(library[0], k=2)
        with VideoDatabase(path=tmp_path / "db") as db:
            assert len(db) == 4
            reopened = db.query(library[0], k=2)
            assert reopened.videos == result.videos
            assert np.allclose(reopened.scores, result.scores)
            assert sorted(db.index.video_frames) == sorted(ids)

    def test_reopen_with_all_videos_removed(self, library, tmp_path):
        """Regression: a checkpointed index whose records are all
        tombstoned must reopen (found by the stateful crash machine)."""
        path = tmp_path / "db"
        with VideoDatabase(epsilon=0.3, path=path) as db:
            video_id = db.add(library[0])
            db.checkpoint()
            db.remove(video_id)
        with VideoDatabase(path=path) as db:
            assert len(db) == 0
            db.add(library[1])
            result = db.query(library[1], k=1)
            assert len(result.videos) == 1

    def test_stored_settings_win_on_reopen(self, library, tmp_path):
        path = tmp_path / "db"
        with VideoDatabase(epsilon=0.25, path=path) as db:
            db.add(library[0])
        with VideoDatabase(epsilon=0.7, path=path) as db:
            assert db.epsilon == 0.25

    def test_operations_after_close_rejected(self, library, tmp_path):
        db = VideoDatabase(epsilon=0.3, path=tmp_path / "db")
        db.close()
        db.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            db.add(library[0])

    def test_memory_database_rejects_durable_options(self):
        from repro.storage.faults import FaultInjector

        with pytest.raises(ValueError, match="durable"):
            VideoDatabase(fault_injector=FaultInjector())

    def test_durable_rejects_policy_and_object_reference(self, tmp_path):
        with pytest.raises(ValueError, match="rebuild_policy"):
            VideoDatabase(
                path=tmp_path / "db",
                rebuild_policy=RebuildPolicy(max_angle_degrees=5.0),
            )
