"""Tests for placement strategies (repro.shard.partitioner)."""

import numpy as np
import pytest

from repro.shard.partitioner import (
    HashPartitioner,
    KeyRangePartitioner,
    Partitioner,
    _mix64,
    make_partitioner,
    partitioner_from_dict,
)
from repro.utils.validation import MAX_SHARDS


class TestMix64:
    def test_known_value(self):
        # SplitMix64's first output for seed 0 — a cross-implementation
        # constant, so placement is stable across processes and versions.
        assert _mix64(0) == 0xE220A8397B1DCDAF

    def test_deterministic_and_spread(self):
        values = [_mix64(i) for i in range(64)]
        assert values == [_mix64(i) for i in range(64)]
        assert len(set(values)) == 64
        assert all(0 <= v < 2**64 for v in values)


class TestHashPartitioner:
    def test_routes_in_range_and_deterministic(self, small_summaries):
        part = HashPartitioner(4)
        shards = [part.shard_for(s) for s in small_summaries]
        assert all(0 <= shard < 4 for shard in shards)
        assert shards == [part.shard_for(s) for s in small_summaries]

    def test_spreads_across_shards(self, small_summaries):
        part = HashPartitioner(4)
        used = {part.shard_for(s) for s in small_summaries}
        assert len(used) > 1  # 20 videos cannot all hash to one shard

    def test_rejects_non_summary(self):
        with pytest.raises(TypeError):
            HashPartitioner(2).shard_for("video")

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            HashPartitioner(MAX_SHARDS + 1)

    def test_dict_round_trip(self, small_summaries):
        part = HashPartitioner(8)
        rebuilt = partitioner_from_dict(part.to_dict())
        assert isinstance(rebuilt, HashPartitioner)
        assert rebuilt.num_shards == 8
        assert [rebuilt.shard_for(s) for s in small_summaries] == [
            part.shard_for(s) for s in small_summaries
        ]

    def test_name(self):
        assert HashPartitioner(2).name == "hash"


class TestKeyRangePartitioner:
    def test_routing_key_matches_mean_distance(self, small_summaries):
        part = KeyRangePartitioner([0.5])
        summary = small_summaries[0]
        positions = summary.positions()
        expected = float(np.linalg.norm(positions, axis=1).mean())
        assert part.routing_key(summary) == pytest.approx(expected)

    def test_routing_key_honours_reference_point(self, small_summaries):
        summary = small_summaries[0]
        positions = summary.positions()
        reference = positions.mean(axis=0)
        part = KeyRangePartitioner([0.5], reference_point=reference)
        expected = float(
            np.linalg.norm(positions - reference, axis=1).mean()
        )
        assert part.routing_key(summary) == pytest.approx(expected)
        # Distances to the centroid are smaller than to the origin.
        assert part.routing_key(summary) < KeyRangePartitioner(
            [0.5]
        ).routing_key(summary)

    def test_reference_dimension_mismatch(self, small_summaries):
        part = KeyRangePartitioner([0.5], reference_point=np.zeros(3))
        with pytest.raises(ValueError, match="dimension"):
            part.routing_key(small_summaries[0])

    def test_shard_for_bisects(self, small_summaries):
        part = KeyRangePartitioner.fit(small_summaries, 4)
        boundaries = part.boundaries
        for summary in small_summaries:
            key = part.routing_key(summary)
            shard = part.shard_for(summary)
            assert 0 <= shard < 4
            if shard > 0:
                assert key >= boundaries[shard - 1]
            if shard < 3:
                assert key < boundaries[shard]

    def test_fit_balances(self, small_summaries):
        part = KeyRangePartitioner.fit(small_summaries, 4)
        counts = [0] * 4
        for summary in small_summaries:
            counts[part.shard_for(summary)] += 1
        # Quantile boundaries: no shard may be empty or hold everything.
        assert all(count > 0 for count in counts)
        assert max(counts) < len(small_summaries)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            KeyRangePartitioner.fit([], 2)

    def test_uniform_boundaries(self):
        part = KeyRangePartitioner.uniform(4, low=0.0, high=1.0)
        assert part.boundaries == (0.25, 0.5, 0.75)
        with pytest.raises(ValueError):
            KeyRangePartitioner.uniform(2, low=1.0, high=1.0)
        with pytest.raises(ValueError):
            KeyRangePartitioner.uniform(2, low=0.0, high=float("inf"))

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            KeyRangePartitioner([0.5, 0.25])  # decreasing
        with pytest.raises(ValueError):
            KeyRangePartitioner([float("nan")])
        with pytest.raises(ValueError):
            KeyRangePartitioner([0.1] * MAX_SHARDS)  # too many shards

    def test_split_inserts_boundary(self):
        part = KeyRangePartitioner([0.4, 0.8])
        split = part.split(1, 0.6)
        assert split.boundaries == (0.4, 0.6, 0.8)
        assert split.num_shards == 4
        # Original is untouched (partitioners are immutable).
        assert part.boundaries == (0.4, 0.8)

    def test_split_validates(self):
        part = KeyRangePartitioner([0.4, 0.8])
        with pytest.raises(ValueError, match="shard_index"):
            part.split(3, 0.5)
        with pytest.raises(ValueError, match="outside"):
            part.split(1, 0.9)  # 0.9 not in shard 1's range (0.4, 0.8]
        with pytest.raises(ValueError, match="finite"):
            part.split(0, float("nan"))

    def test_split_edge_shards(self):
        part = KeyRangePartitioner([0.5])
        assert part.split(0, 0.2).boundaries == (0.2, 0.5)
        assert part.split(1, 0.7).boundaries == (0.5, 0.7)

    def test_dict_round_trip(self, small_summaries):
        part = KeyRangePartitioner(
            [0.3, 0.6], reference_point=np.full(16, 0.1)
        )
        rebuilt = partitioner_from_dict(part.to_dict())
        assert isinstance(rebuilt, KeyRangePartitioner)
        assert rebuilt.boundaries == part.boundaries
        assert [rebuilt.shard_for(s) for s in small_summaries] == [
            part.shard_for(s) for s in small_summaries
        ]

    def test_dict_round_trip_no_reference(self):
        rebuilt = partitioner_from_dict(KeyRangePartitioner([0.5]).to_dict())
        assert rebuilt.boundaries == (0.5,)

    def test_name(self):
        assert KeyRangePartitioner([0.5]).name == "key_range"


class TestFactories:
    def test_make_hash(self):
        part = make_partitioner("hash", 4)
        assert isinstance(part, HashPartitioner)
        assert part.num_shards == 4

    def test_make_key_range_uniform(self):
        part = make_partitioner("key_range", 4)
        assert isinstance(part, KeyRangePartitioner)
        assert part.num_shards == 4

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("round_robin", 2)
        with pytest.raises(ValueError, match="unknown partitioner"):
            partitioner_from_dict({"kind": "round_robin"})

    def test_validates_shard_count(self):
        with pytest.raises(ValueError):
            make_partitioner("hash", 0)
        with pytest.raises(ValueError):
            make_partitioner("hash", None)

    def test_interface(self):
        assert issubclass(HashPartitioner, Partitioner)
        assert issubclass(KeyRangePartitioner, Partitioner)
