"""Tests for repro.pca."""

import math

import numpy as np
import pytest

from repro.pca import PCA, principal_angle


def correlated_data(rng, rows=300, dim=6, direction=None, spread=5.0):
    """Data dominated by one direction plus small isotropic noise."""
    if direction is None:
        direction = np.zeros(dim)
        direction[0] = 1.0
    direction = direction / np.linalg.norm(direction)
    coefficients = rng.normal(0.0, spread, rows)
    noise = rng.normal(0.0, 0.1, (rows, dim))
    return coefficients[:, None] * direction[None, :] + noise


class TestFit:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        direction = np.array([3.0, 1.0, 0.0, 0.0, -2.0, 0.5])
        data = correlated_data(rng, direction=direction)
        pca = PCA(n_components=1).fit(data)
        assert principal_angle(pca.first_component, direction) < 0.05

    def test_components_orthonormal(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 1, (100, 5))
        pca = PCA().fit(data)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(5), atol=1e-10)

    def test_explained_variance_descending(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, (200, 8)) * np.arange(8, 0, -1)
        pca = PCA().fit(data)
        ev = pca.explained_variance_
        assert all(b <= a + 1e-12 for a, b in zip(ev, ev[1:]))

    def test_explained_variance_matches_projection_variance(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 2, (150, 4))
        pca = PCA().fit(data)
        projections = pca.transform(data)
        assert np.allclose(
            projections.var(axis=0), pca.explained_variance_, rtol=1e-8
        )

    def test_total_variance_preserved(self):
        rng = np.random.default_rng(4)
        data = rng.normal(0, 1, (120, 6))
        pca = PCA().fit(data)
        assert pca.explained_variance_.sum() == pytest.approx(
            data.var(axis=0).sum(), rel=1e-10
        )

    def test_deterministic_signs(self):
        rng = np.random.default_rng(5)
        data = rng.normal(0, 1, (80, 4))
        a = PCA().fit(data).components_
        b = PCA().fit(data.copy()).components_
        assert np.array_equal(a, b)
        # Largest-magnitude coordinate of each component is positive.
        for row in a:
            assert row[np.argmax(np.abs(row))] > 0

    def test_n_components_truncates(self):
        rng = np.random.default_rng(6)
        data = rng.normal(0, 1, (50, 7))
        pca = PCA(n_components=3).fit(data)
        assert pca.components_.shape == (3, 7)
        assert pca.explained_variance_.shape == (3,)

    def test_n_components_clamped_to_dim(self):
        rng = np.random.default_rng(7)
        pca = PCA(n_components=99).fit(rng.normal(0, 1, (20, 3)))
        assert pca.components_.shape == (3, 3)

    def test_single_point(self):
        pca = PCA().fit([[1.0, 2.0, 3.0]])
        assert np.allclose(pca.center_, [1.0, 2.0, 3.0])
        assert np.allclose(pca.explained_variance_, 0.0)

    def test_invalid_n_components(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(TypeError):
            PCA(n_components=1.5)


class TestTransform:
    def test_round_trip(self):
        rng = np.random.default_rng(8)
        data = rng.normal(0, 1, (60, 5))
        pca = PCA().fit(data)
        recovered = pca.inverse_transform(pca.transform(data))
        assert np.allclose(recovered, data, atol=1e-10)

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            PCA().transform([[1.0, 2.0]])

    def test_transform_centers(self):
        data = np.array([[1.0, 1.0], [3.0, 3.0]])
        pca = PCA().fit(data)
        projections = pca.transform(data)
        assert projections.sum(axis=0) == pytest.approx(0.0, abs=1e-12)

    def test_fit_transform(self):
        rng = np.random.default_rng(9)
        data = rng.normal(0, 1, (30, 3))
        a = PCA().fit_transform(data)
        b = PCA().fit(data).transform(data)
        assert np.allclose(a, b)

    def test_dimension_mismatch(self):
        pca = PCA().fit(np.zeros((5, 3)) + np.eye(5, 3))
        with pytest.raises(ValueError):
            pca.transform([[1.0, 2.0]])


class TestVarianceSegment:
    def test_segment_extents(self):
        # Points on a line: segment = full extent of projections.
        data = np.array([[t, 2 * t] for t in np.linspace(-1, 3, 11)])
        pca = PCA().fit(data)
        low, high = pca.variance_segment(data, 0)
        spread = math.sqrt(5) * 4.0  # length of the [-1,3] x-range on the line
        assert high - low == pytest.approx(spread, rel=1e-10)

    def test_segment_contains_all_projections(self):
        rng = np.random.default_rng(10)
        data = rng.normal(0, 1, (100, 4))
        pca = PCA().fit(data)
        low, high = pca.variance_segment(data, 0)
        projections = pca.project_scalar(data, 0)
        assert projections.min() >= low - 1e-12
        assert projections.max() <= high + 1e-12

    def test_component_index_validation(self):
        pca = PCA(n_components=2).fit(np.random.default_rng(0).normal(0, 1, (20, 4)))
        with pytest.raises(ValueError):
            pca.variance_segment(np.zeros((3, 4)), 5)
        with pytest.raises(TypeError):
            pca.variance_segment(np.zeros((3, 4)), 1.0)


class TestPrincipalAngle:
    def test_identical_directions(self):
        assert principal_angle([1, 0, 0], [1, 0, 0]) == pytest.approx(0.0)

    def test_opposite_directions_are_same_line(self):
        assert principal_angle([1, 0], [-1, 0]) == pytest.approx(0.0)

    def test_orthogonal(self):
        assert principal_angle([1, 0], [0, 1]) == pytest.approx(math.pi / 2)

    def test_45_degrees(self):
        assert principal_angle([1, 0], [1, 1]) == pytest.approx(math.pi / 4)

    def test_scale_invariant(self):
        assert principal_angle([2, 0, 0], [0, 0, 7]) == pytest.approx(math.pi / 2)

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            principal_angle([0, 0], [1, 0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            principal_angle([1, 0], [1, 0, 0])
