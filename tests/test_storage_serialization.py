"""Tests for repro.storage.serialization."""

import numpy as np
import pytest

from repro.storage.serialization import ViTriRecord, ViTriRecordCodec


def sample_record(dim=8):
    return ViTriRecord(
        video_id=7,
        vitri_id=123,
        count=45,
        radius=0.125,
        position=np.linspace(0.0, 1.0, dim),
    )


class TestViTriRecordCodec:
    def test_round_trip(self):
        codec = ViTriRecordCodec(dim=8)
        original = sample_record()
        decoded = codec.decode(codec.encode(original))
        assert decoded.video_id == original.video_id
        assert decoded.vitri_id == original.vitri_id
        assert decoded.count == original.count
        assert decoded.radius == original.radius
        assert np.array_equal(decoded.position, original.position)

    def test_record_size(self):
        codec = ViTriRecordCodec(dim=64)
        assert codec.record_size == 4 + 4 + 4 + 8 + 64 * 8
        assert len(codec.encode(sample_record(64))) == codec.record_size

    def test_round_trip_preserves_float_precision(self):
        codec = ViTriRecordCodec(dim=4)
        position = np.array([1e-300, 0.1 + 0.2, np.pi, 1e300])
        rec = ViTriRecord(0, 0, 1, 1e-12, position)
        decoded = codec.decode(codec.encode(rec))
        assert np.array_equal(decoded.position, position)
        assert decoded.radius == 1e-12

    def test_wrong_dim_rejected(self):
        codec = ViTriRecordCodec(dim=8)
        with pytest.raises(ValueError):
            codec.encode(sample_record(dim=4))

    def test_wrong_payload_length_rejected(self):
        codec = ViTriRecordCodec(dim=8)
        with pytest.raises(ValueError):
            codec.decode(b"\x00" * 10)

    def test_negative_ids_rejected(self):
        codec = ViTriRecordCodec(dim=2)
        rec = ViTriRecord(-1, 0, 1, 0.1, np.zeros(2))
        with pytest.raises(ValueError):
            codec.encode(rec)

    def test_overflow_ids_rejected(self):
        codec = ViTriRecordCodec(dim=2)
        rec = ViTriRecord(2**32, 0, 1, 0.1, np.zeros(2))
        with pytest.raises(ValueError):
            codec.encode(rec)

    def test_negative_radius_rejected(self):
        codec = ViTriRecordCodec(dim=2)
        rec = ViTriRecord(0, 0, 1, -0.1, np.zeros(2))
        with pytest.raises(ValueError):
            codec.encode(rec)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ViTriRecordCodec(dim=0)
        with pytest.raises(TypeError):
            ViTriRecordCodec(dim=2.0)

    def test_decoded_position_is_writable_copy(self):
        codec = ViTriRecordCodec(dim=3)
        decoded = codec.decode(codec.encode(sample_record(3)))
        decoded.position[0] = 99.0  # must not raise (not a frozen buffer view)
