"""Tests for repro.storage.serialization."""

import numpy as np
import pytest

from repro.storage.serialization import ViTriRecord, ViTriRecordCodec


def sample_record(dim=8):
    return ViTriRecord(
        video_id=7,
        vitri_id=123,
        count=45,
        radius=0.125,
        position=np.linspace(0.0, 1.0, dim),
    )


class TestViTriRecordCodec:
    def test_round_trip(self):
        codec = ViTriRecordCodec(dim=8)
        original = sample_record()
        decoded = codec.decode(codec.encode(original))
        assert decoded.video_id == original.video_id
        assert decoded.vitri_id == original.vitri_id
        assert decoded.count == original.count
        assert decoded.radius == original.radius
        assert np.array_equal(decoded.position, original.position)

    def test_record_size(self):
        codec = ViTriRecordCodec(dim=64)
        assert codec.record_size == 4 + 4 + 4 + 8 + 64 * 8
        assert len(codec.encode(sample_record(64))) == codec.record_size

    def test_round_trip_preserves_float_precision(self):
        codec = ViTriRecordCodec(dim=4)
        position = np.array([1e-300, 0.1 + 0.2, np.pi, 1e300])
        rec = ViTriRecord(0, 0, 1, 1e-12, position)
        decoded = codec.decode(codec.encode(rec))
        assert np.array_equal(decoded.position, position)
        assert decoded.radius == 1e-12

    def test_wrong_dim_rejected(self):
        codec = ViTriRecordCodec(dim=8)
        with pytest.raises(ValueError):
            codec.encode(sample_record(dim=4))

    def test_wrong_payload_length_rejected(self):
        codec = ViTriRecordCodec(dim=8)
        with pytest.raises(ValueError):
            codec.decode(b"\x00" * 10)

    def test_negative_ids_rejected(self):
        codec = ViTriRecordCodec(dim=2)
        rec = ViTriRecord(-1, 0, 1, 0.1, np.zeros(2))
        with pytest.raises(ValueError):
            codec.encode(rec)

    def test_overflow_ids_rejected(self):
        codec = ViTriRecordCodec(dim=2)
        rec = ViTriRecord(2**32, 0, 1, 0.1, np.zeros(2))
        with pytest.raises(ValueError):
            codec.encode(rec)

    def test_negative_radius_rejected(self):
        codec = ViTriRecordCodec(dim=2)
        rec = ViTriRecord(0, 0, 1, -0.1, np.zeros(2))
        with pytest.raises(ValueError):
            codec.encode(rec)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ViTriRecordCodec(dim=0)
        with pytest.raises(TypeError):
            ViTriRecordCodec(dim=2.0)

    def test_decoded_position_is_writable_copy(self):
        codec = ViTriRecordCodec(dim=3)
        decoded = codec.decode(codec.encode(sample_record(3)))
        decoded.position[0] = 99.0  # must not raise (not a frozen buffer view)


class TestSinglePageBufferView:
    """The page-batched decode path must touch the buffer exactly once.

    PR 6 decoded leaf payloads one record at a time — one
    ``np.frombuffer`` (plus dtype churn) per record.  The columnar path
    replaces that with a single structured-dtype view over the whole
    page; these tests pin the "exactly one view" property so the
    per-record pattern cannot creep back in.
    """

    def _count_frombuffer(self, monkeypatch):
        import repro.storage.serialization as serialization

        calls = []
        original = serialization.np.frombuffer

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(serialization.np, "frombuffer", counting)
        return calls

    def test_full_page_decode_is_one_buffer_view(self, monkeypatch):
        codec = ViTriRecordCodec(dim=16)
        records = [
            ViTriRecord(
                video_id=i,
                vitri_id=i * 10,
                count=i + 1,
                radius=0.01 * i,
                position=np.full(16, float(i)),
            )
            for i in range(50)  # a full page worth of records
        ]
        page = b"".join(codec.encode(r) for r in records)
        calls = self._count_frombuffer(monkeypatch)
        columns = codec.decode_columns(page, len(records))
        assert len(calls) == 1, (
            f"full-page decode made {len(calls)} buffer views, expected 1"
        )
        assert len(columns) == len(records)
        assert list(columns.video_ids) == [r.video_id for r in records]

    def test_decode_batch_is_one_buffer_view(self, monkeypatch):
        codec = ViTriRecordCodec(dim=4)
        payloads = [codec.encode(sample_record(4)) for _ in range(20)]
        calls = self._count_frombuffer(monkeypatch)
        columns = codec.decode_batch(payloads)
        assert len(calls) == 1
        assert len(columns) == 20

    def test_record_dtype_matches_wire_layout(self):
        """The structured dtype is byte-for-byte the scalar wire format."""
        codec = ViTriRecordCodec(dim=8)
        assert codec.record_dtype.itemsize == codec.record_size
        record = sample_record(8)
        struct_view = np.frombuffer(
            codec.encode(record), dtype=codec.record_dtype
        )[0]
        assert struct_view["video_id"] == record.video_id
        assert struct_view["vitri_id"] == record.vitri_id
        assert struct_view["count"] == record.count
        assert struct_view["radius"] == record.radius
        assert np.array_equal(struct_view["position"], record.position)

    def test_decode_columns_validates_bounds(self):
        codec = ViTriRecordCodec(dim=2)
        payload = codec.encode(sample_record(2))
        with pytest.raises(ValueError):
            codec.decode_columns(payload, 2)  # buffer too short
        with pytest.raises(ValueError):
            codec.decode_columns(payload, -1)
        with pytest.raises(ValueError):
            codec.decode_columns(payload, 1, offset=-4)

    def test_decode_batch_validates_payload_sizes(self):
        codec = ViTriRecordCodec(dim=2)
        good = codec.encode(sample_record(2))
        with pytest.raises(ValueError):
            codec.decode_batch([good, good[:-1]])
