"""Property-based tests (hypothesis) for the geometry invariants."""

import math

from hypothesis import given, settings, strategies as st
import pytest

from repro.geometry.intersection import (
    intersection_fraction_of_smaller,
    intersection_volume,
    log_intersection_volume,
)
from repro.geometry.volumes import (
    cap_fraction,
    sector_fraction,
    sphere_volume,
)

dims = st.integers(min_value=2, max_value=48)
radii = st.floats(min_value=1e-3, max_value=10.0)
distances = st.floats(min_value=0.0, max_value=25.0)
angles = st.floats(min_value=0.0, max_value=math.pi)


@settings(max_examples=150, deadline=None)
@given(n=dims, alpha=angles)
def test_cap_fraction_in_unit_interval(n, alpha):
    f = cap_fraction(n, alpha)
    assert 0.0 <= f <= 1.0


@settings(max_examples=100, deadline=None)
@given(n=dims, alpha=st.floats(min_value=0.01, max_value=math.pi - 0.01))
def test_cap_complement_identity(n, alpha):
    total = cap_fraction(n, alpha) + cap_fraction(n, math.pi - alpha)
    assert total == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(n=dims, alpha=angles)
def test_cap_at_least_sector_times_zero(n, alpha):
    # For acute angles the cap is contained in the sector.
    if alpha <= math.pi / 2.0:
        assert cap_fraction(n, alpha) <= sector_fraction(n, alpha) + 1e-12


@settings(max_examples=200, deadline=None)
@given(n=dims, r1=radii, r2=radii, d=distances)
def test_fraction_bounds_and_symmetry(n, r1, r2, d):
    f = intersection_fraction_of_smaller(n, r1, r2, d)
    g = intersection_fraction_of_smaller(n, r2, r1, d)
    assert 0.0 <= f <= 1.0
    assert f == pytest.approx(g, rel=1e-9, abs=1e-12)


@settings(max_examples=150, deadline=None)
@given(n=dims, r1=radii, r2=radii, d=distances)
def test_intersection_upper_bounds(n, r1, r2, d):
    # The lens volume can never exceed either sphere's volume.
    small = min(r1, r2)
    log_v = log_intersection_volume(n, r1, r2, d)
    if log_v > -math.inf:
        log_small = math.log(sphere_volume(n, small)) if sphere_volume(n, small) else -math.inf
        if math.isfinite(log_small):
            assert log_v <= log_small + 1e-9


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    r1=st.floats(min_value=0.1, max_value=3.0),
    r2=st.floats(min_value=0.1, max_value=3.0),
)
def test_monotone_in_distance(n, r1, r2):
    span = r1 + r2
    values = [
        intersection_volume(n, r1, r2, t * span / 6.0) for t in range(7)
    ]
    for a, b in zip(values, values[1:]):
        assert b <= a + 1e-12 * max(1.0, a)


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    r1=st.floats(min_value=0.1, max_value=2.0),
    r2=st.floats(min_value=0.1, max_value=2.0),
    d=st.floats(min_value=0.0, max_value=4.0),
    scale=st.floats(min_value=0.2, max_value=5.0),
)
def test_fraction_scale_invariant(n, r1, r2, d, scale):
    # Fractions are dimensionless: scaling the whole configuration by a
    # constant leaves them unchanged.
    f1 = intersection_fraction_of_smaller(n, r1, r2, d)
    f2 = intersection_fraction_of_smaller(n, r1 * scale, r2 * scale, d * scale)
    assert f1 == pytest.approx(f2, rel=1e-6, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(min_value=2, max_value=10), r=radii)
def test_zero_distance_full_overlap(n, r):
    assert intersection_fraction_of_smaller(n, r, r, 0.0) == pytest.approx(1.0)
