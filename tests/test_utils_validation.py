"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    MAX_SHARDS,
    check_finite,
    check_matrix,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_shard_count,
    check_vector,
)


class TestCheckVector:
    def test_accepts_list(self):
        out = check_vector([1, 2, 3], "v")
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_accepts_array(self):
        out = check_vector(np.arange(4), "v")
        assert np.array_equal(out, [0.0, 1.0, 2.0, 3.0])

    def test_enforces_dim(self):
        check_vector([1, 2], "v", dim=2)
        with pytest.raises(ValueError, match="dimension 3"):
            check_vector([1, 2], "v", dim=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            check_vector([[1, 2]], "v")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_vector([1.0, np.nan], "v")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_vector([np.inf, 0.0], "v")

    def test_output_is_contiguous(self):
        strided = np.arange(10)[::2].astype(np.float64)
        out = check_vector(strided, "v")
        assert out.flags["C_CONTIGUOUS"]

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="myvec"):
            check_vector([[1]], "myvec")


class TestCheckMatrix:
    def test_basic(self):
        out = check_matrix([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)

    def test_cols_enforced(self):
        with pytest.raises(ValueError, match="3 columns"):
            check_matrix([[1, 2]], "m", cols=3)

    def test_min_rows(self):
        with pytest.raises(ValueError, match="at least 2 rows"):
            check_matrix([[1, 2]], "m", min_rows=2)

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix([1, 2, 3], "m")

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            check_matrix([[1.0, np.inf]], "m")


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_positive_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_positive_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_positive_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_non_negative_rejects_nan(self):
        with pytest.raises(ValueError):
            check_non_negative(float("nan"), "x")

    def test_probability_bounds(self):
        assert check_probability(1.0, "p") == 1.0
        assert check_probability(0.0, "p") == 0.0
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_finite(self):
        assert check_finite(-3.5, "x") == -3.5
        with pytest.raises(ValueError):
            check_finite(float("inf"), "x")
        with pytest.raises(TypeError):
            check_finite(None, "x")


class TestCountChecks:
    """The shared boundary for count-like arguments (k, workers, shards)."""

    def test_positive_int_accepts(self):
        assert check_positive_int(1, "k") == 1
        assert check_positive_int(10_000, "k") == 10_000

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3", None, True, False])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ValueError, match="must be a positive int"):
            check_positive_int(bad, "k")

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="workers"):
            check_positive_int(0, "workers")

    def test_numpy_integer_rejected(self):
        # The contract is a Python int: numpy scalars are not silently
        # coerced (they would survive JSON round-trips differently).
        with pytest.raises(ValueError):
            check_positive_int(np.int64(3), "k")

    def test_shard_count_bounds(self):
        assert check_shard_count(1) == 1
        assert check_shard_count(MAX_SHARDS) == MAX_SHARDS
        with pytest.raises(ValueError, match="at most"):
            check_shard_count(MAX_SHARDS + 1)
        with pytest.raises(ValueError, match="positive int"):
            check_shard_count(0)

    def test_shard_count_names_argument(self):
        with pytest.raises(ValueError, match="fleet_size"):
            check_shard_count(0, "fleet_size")
