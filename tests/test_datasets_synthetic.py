"""Tests for the synthetic dataset generator."""

import numpy as np
import pytest

from repro.core.frames import frame_similarity
from repro.datasets.synthetic import DatasetConfig, generate_dataset


def tiny_config(**overrides):
    params = dict(
        dim=16,
        num_families=3,
        family_size=3,
        num_distractors=4,
        duration_classes=((30, 0.5), (20, 0.5)),
    )
    params.update(overrides)
    return DatasetConfig(**params)


class TestDatasetConfig:
    def test_num_videos(self):
        config = tiny_config()
        assert config.num_videos == 3 * 3 + 4

    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_config(dim=1)
        with pytest.raises(ValueError):
            tiny_config(num_families=-1)
        with pytest.raises(ValueError):
            tiny_config(num_families=0, num_distractors=0)
        with pytest.raises(ValueError):
            tiny_config(duration_classes=())
        with pytest.raises(ValueError):
            tiny_config(duration_classes=((1, 1.0),))

    def test_presets_construct(self):
        assert DatasetConfig.precision_preset().num_videos > 0
        assert DatasetConfig.indexing_preset().num_videos > 0

    def test_preset_overrides(self):
        config = DatasetConfig.precision_preset(dim=8, num_families=2)
        assert config.dim == 8
        assert config.num_families == 2


class TestGenerateDataset:
    def test_shapes_and_counts(self):
        config = tiny_config()
        dataset = generate_dataset(config, seed=0)
        assert dataset.num_videos == config.num_videos
        assert dataset.dim == 16
        for i in range(dataset.num_videos):
            frames = dataset.frames(i)
            assert frames.ndim == 2
            assert frames.shape[1] == 16
            assert frames.shape[0] >= 1

    def test_frames_are_histograms(self):
        dataset = generate_dataset(tiny_config(), seed=1)
        for i in range(dataset.num_videos):
            frames = dataset.frames(i)
            assert (frames >= 0.0).all()
            assert np.allclose(frames.sum(axis=1), 1.0)

    def test_family_labels(self):
        config = tiny_config()
        dataset = generate_dataset(config, seed=2)
        assert dataset.families == [0, 1, 2]
        for family in dataset.families:
            assert len(dataset.family_members(family)) == 3
        distractors = [
            i for i in range(dataset.num_videos) if dataset.info(i).family == -1
        ]
        assert len(distractors) == 4

    def test_deterministic(self):
        a = generate_dataset(tiny_config(), seed=5)
        b = generate_dataset(tiny_config(), seed=5)
        for i in range(a.num_videos):
            assert np.array_equal(a.frames(i), b.frames(i))

    def test_different_seeds_differ(self):
        a = generate_dataset(tiny_config(), seed=1)
        b = generate_dataset(tiny_config(), seed=2)
        assert not np.array_equal(a.frames(0), b.frames(0))

    def test_family_members_more_similar_than_strangers(self):
        config = tiny_config(dim=32)
        dataset = generate_dataset(config, seed=3)
        eps = 0.3
        source = dataset.family_members(0)[0]
        variant = dataset.family_members(0)[1]
        stranger = dataset.family_members(1)[0]
        sim_family = frame_similarity(
            dataset.frames(source), dataset.frames(variant), eps
        )
        sim_stranger = frame_similarity(
            dataset.frames(source), dataset.frames(stranger), eps
        )
        assert sim_family > sim_stranger

    def test_graduated_variant_degradation(self):
        """Later family members are perturbed more strongly."""
        config = tiny_config(dim=32, family_size=5, num_families=2)
        dataset = generate_dataset(config, seed=4)
        members = dataset.family_members(0)
        source = dataset.frames(members[0])
        sims = [
            frame_similarity(source, dataset.frames(m), 0.10)
            for m in members[1:]
        ]
        # Not necessarily strictly monotone (noise), but the mildest
        # variant must beat the harshest.
        assert sims[0] >= sims[-1]

    def test_temporal_locality(self):
        """Adjacent frames are much closer than the video's diameter."""
        dataset = generate_dataset(tiny_config(), seed=6)
        frames = dataset.frames(0)
        adjacent = np.linalg.norm(frames[1:] - frames[:-1], axis=1)
        spread = np.linalg.norm(frames - frames.mean(axis=0), axis=1).max()
        assert np.median(adjacent) < max(spread, 0.05)

    def test_duration_classes_respected(self):
        dataset = generate_dataset(tiny_config(), seed=7)
        lengths = {dataset.info(i).num_frames for i in range(dataset.num_videos)}
        # Sources use exactly the configured lengths; variants may be
        # shorter due to frame drops.
        assert lengths <= set(range(1, 31))

    def test_distractor_only_config(self):
        config = tiny_config(num_families=0, family_size=1, num_distractors=5)
        dataset = generate_dataset(config, seed=8)
        assert dataset.num_videos == 5
        assert dataset.families == []

    def test_default_config(self):
        dataset = generate_dataset(seed=9)
        assert dataset.num_videos == DatasetConfig().num_videos
