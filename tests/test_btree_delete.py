"""Tests for B+-tree lazy deletion and compaction."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree.checker import check_tree
from repro.btree.tree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def make_tree(payload_size=8, capacity=64):
    return BPlusTree.create(BufferPool(Pager(), capacity=capacity), payload_size)


def payload(i: int) -> bytes:
    return struct.pack("<q", i)


class TestDelete:
    def test_delete_single(self):
        tree = make_tree()
        tree.insert(1.0, payload(0))
        assert tree.delete(1.0) == 1
        assert len(tree) == 0
        assert tree.search(1.0) == []

    def test_delete_missing_returns_zero(self):
        tree = make_tree()
        tree.insert(1.0, payload(0))
        assert tree.delete(2.0) == 0
        assert len(tree) == 1

    def test_delete_all_duplicates(self):
        tree = make_tree()
        for i in range(50):
            tree.insert(7.0, payload(i))
        tree.insert(6.0, payload(99))
        assert tree.delete(7.0) == 50
        assert tree.search(7.0) == []
        assert tree.search(6.0) == [payload(99)]
        assert len(tree) == 1

    def test_delete_specific_payload(self):
        tree = make_tree()
        for i in range(5):
            tree.insert(3.0, payload(i))
        assert tree.delete(3.0, payload(2)) == 1
        remaining = sorted(tree.search(3.0))
        assert remaining == sorted(payload(i) for i in (0, 1, 3, 4))

    def test_delete_payload_not_present(self):
        tree = make_tree()
        tree.insert(3.0, payload(0))
        assert tree.delete(3.0, payload(9)) == 0
        assert len(tree) == 1

    def test_duplicates_spanning_leaves(self):
        tree = make_tree()
        # Enough duplicates to span several leaves.
        for i in range(1000):
            tree.insert(5.0, payload(i))
        for i in range(300):
            tree.insert(4.0, payload(10_000 + i))
        assert tree.delete(5.0) == 1000
        assert len(tree) == 300
        check_tree(tree)
        assert len(tree.search(4.0)) == 300

    def test_structure_valid_after_deletes(self):
        tree = make_tree()
        for i in range(2000):
            tree.insert(float(i % 97), payload(i))
        for key in range(0, 97, 2):
            tree.delete(float(key))
        check_tree(tree)
        # All even keys gone, odd keys intact.
        for key in range(97):
            found = tree.search(float(key))
            if key % 2 == 0:
                assert found == []
            else:
                assert len(found) > 0

    def test_range_search_skips_emptied_leaves(self):
        tree = make_tree()
        for i in range(1500):
            tree.insert(float(i), payload(i))
        # Empty out a middle band spanning multiple leaves.
        for i in range(400, 900):
            tree.delete(float(i))
        got = [k for k, _ in tree.range_search(300.0, 1000.0)]
        expected = [float(i) for i in range(300, 400)] + [
            float(i) for i in range(900, 1001)
        ]
        assert got == expected

    def test_delete_everything_then_insert(self):
        tree = make_tree()
        for i in range(500):
            tree.insert(float(i % 10), payload(i))
        for key in range(10):
            tree.delete(float(key))
        assert len(tree) == 0
        assert tree.range_search(-1e9, 1e9) == []
        tree.insert(5.0, payload(1))
        assert tree.search(5.0) == [payload(1)]

    def test_nan_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.delete(float("nan"))

    def test_wrong_payload_size_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.delete(1.0, b"xx")


class TestCompact:
    def test_compact_preserves_entries(self):
        tree = make_tree()
        for i in range(1200):
            tree.insert(float(i % 53), payload(i))
        for key in range(0, 53, 3):
            tree.delete(float(key))
        live = list(tree.iter_entries())
        compacted = tree.compact()
        check_tree(compacted)
        assert list(compacted.iter_entries()) == live
        assert compacted.num_entries == tree.num_entries

    def test_compact_reduces_pages(self):
        tree = make_tree()
        for i in range(3000):
            tree.insert(float(i), payload(i))
        for i in range(0, 3000, 2):
            tree.delete(float(i))
        compacted = tree.compact()
        assert (
            compacted.buffer_pool.pager.num_pages
            < tree.buffer_pool.pager.num_pages
        )


@settings(max_examples=25, deadline=None)
@given(
    inserts=st.lists(
        st.integers(min_value=0, max_value=15).map(float), min_size=1, max_size=200
    ),
    deletes=st.lists(
        st.integers(min_value=0, max_value=15).map(float), max_size=10
    ),
)
def test_delete_matches_oracle(inserts, deletes):
    tree = make_tree(capacity=16)
    oracle = []
    for i, key in enumerate(inserts):
        tree.insert(key, payload(i))
        oracle.append((key, payload(i)))
    for key in deletes:
        removed = tree.delete(key)
        expected_removed = sum(1 for k, _ in oracle if k == key)
        assert removed == expected_removed
        oracle = [(k, p) for k, p in oracle if k != key]
    oracle.sort(key=lambda kv: kv[0])
    assert sorted(tree.iter_entries()) == sorted(oracle)
    assert len(tree) == len(oracle)
