"""Tests for the concurrent batched KNN engine (repro.core.engine)."""

import pytest

from repro.core.engine import (
    BatchResult,
    QueryEngine,
    ServingMetrics,
    query_fingerprint,
)
from repro.core.index import VitriIndex

EPSILON = 0.3


def logical_fields(stats):
    """Every QueryStats field except wall_time."""
    return (
        stats.page_requests,
        stats.physical_reads,
        stats.node_visits,
        stats.similarity_computations,
        stats.candidates,
        stats.ranges,
    )


class TestConstruction:
    def test_rejects_non_index(self):
        with pytest.raises(TypeError, match="VitriIndex"):
            QueryEngine(object())

    def test_rejects_bad_capacity(self, small_index):
        with pytest.raises(ValueError):
            QueryEngine(small_index, buffer_capacity=0)
        with pytest.raises(TypeError):
            QueryEngine(small_index, buffer_capacity="big")

    def test_rejects_bad_cache_size(self, small_index):
        with pytest.raises(ValueError):
            QueryEngine(small_index, cache_size=-1)
        with pytest.raises(TypeError):
            QueryEngine(small_index, cache_size=True)


class TestSingleQuery:
    def test_matches_index_knn(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=0)
        for query in small_summaries[:6]:
            served = engine.knn(query, 5)
            direct = small_index.knn(query, 5)
            assert served.videos == direct.videos
            assert served.scores == direct.scores

    def test_validates_arguments(self, small_index, small_summaries):
        engine = QueryEngine(small_index)
        with pytest.raises(TypeError):
            engine.knn("nope", 5)
        with pytest.raises(ValueError):
            engine.knn(small_summaries[0], 0)
        with pytest.raises(ValueError):
            engine.knn(small_summaries[0], 5, method="magic")

    def test_k_larger_than_num_videos(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=0)
        result = engine.knn(small_summaries[0], 10_000)
        assert 0 < len(result.videos) <= small_index.num_videos
        direct = small_index.knn(small_summaries[0], 10_000)
        assert result.videos == direct.videos


class TestKnnMany:
    def test_workers4_rankings_identical_to_serial(
        self, small_index, small_summaries
    ):
        queries = list(small_summaries) + list(small_summaries[:4])
        serial = [small_index.knn(query, 5) for query in queries]
        engine = QueryEngine(small_index, cache_size=0)
        batch = engine.knn_many(queries, 5, workers=4)
        assert isinstance(batch, BatchResult)
        assert len(batch) == len(queries)
        for expected, got in zip(serial, batch.results):
            assert got.videos == expected.videos
            assert got.scores == expected.scores

    def test_per_query_stats_equal_solo_runs(
        self, small_index, small_summaries
    ):
        """Acceptance: under workers=4, every query's stats — physical
        reads included — equal its solo cold run."""
        queries = list(small_summaries[:10])
        batch_engine = QueryEngine(
            small_index, buffer_capacity=64, cache_size=0
        )
        batch = batch_engine.knn_many(queries, 5, workers=4, cold=True)
        solo_engine = QueryEngine(
            small_index, buffer_capacity=64, cache_size=0
        )
        for query, got in zip(queries, batch.results):
            expected = solo_engine.knn(query, 5, cold=True)
            assert logical_fields(got.stats) == logical_fields(expected.stats)

    def test_stress_counters_lose_no_updates(
        self, small_index, small_summaries
    ):
        """N threads x M queries: per-worker aggregates must equal the sum
        of per-query bundles exactly (no lost counter updates), and the
        rankings must equal the serial ones."""
        queries = list(small_summaries) * 4  # 80 queries
        engine = QueryEngine(small_index, buffer_capacity=32, cache_size=0)
        batch = engine.knn_many(queries, 5, workers=8)
        metrics = batch.metrics
        assert metrics.queries == len(queries)
        assert metrics.workers == 8
        assert metrics.total_page_requests == sum(
            result.stats.page_requests for result in batch.results
        )
        assert metrics.total_physical_reads == sum(
            result.stats.physical_reads for result in batch.results
        )
        assert metrics.total_page_requests == sum(
            metrics.worker_page_requests
        )
        assert metrics.total_physical_reads == sum(
            metrics.worker_physical_reads
        )
        serial = [small_index.knn(query, 5) for query in queries]
        for expected, got in zip(serial, batch.results):
            assert got.videos == expected.videos

    def test_results_in_query_order(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=0)
        batch = engine.knn_many(list(small_summaries), 3, workers=4)
        for query, result in zip(small_summaries, batch.results):
            # Self-query always ranks itself first.
            assert result.videos[0] == query.video_id

    def test_empty_batch(self, small_index):
        engine = QueryEngine(small_index)
        batch = engine.knn_many([], 5, workers=2)
        assert batch.results == ()
        assert batch.metrics.queries == 0
        assert batch.metrics.cache_hit_rate == 0.0

    def test_validates_workers(self, small_index, small_summaries):
        engine = QueryEngine(small_index)
        with pytest.raises(ValueError):
            engine.knn_many(list(small_summaries[:2]), 5, workers=0)
        with pytest.raises(TypeError):
            engine.knn_many(list(small_summaries[:2]), 5, workers=2.5)

    def test_metrics_serialisable(self, small_index, small_summaries):
        import json

        engine = QueryEngine(small_index)
        batch = engine.knn_many(list(small_summaries[:4]), 3, workers=2)
        assert isinstance(batch.metrics, ServingMetrics)
        payload = json.dumps(batch.metrics.to_dict())
        assert "worker_page_requests" in payload


class TestResultCache:
    def test_hit_returns_memoised_result(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=8)
        first = engine.knn(small_summaries[0], 5)
        second = engine.knn(small_summaries[0], 5)
        assert second is first  # memoised object, original stats included
        assert engine.cache_hits == 1
        assert engine.cache_misses == 1

    def test_cached_vs_cold_stats_consistent(
        self, small_index, small_summaries
    ):
        """A cache hit must replay the cold run's stats verbatim — the
        memoised QueryStats, not a recomputed (warm) one."""
        engine = QueryEngine(small_index, buffer_capacity=64, cache_size=8)
        cold = engine.knn(small_summaries[1], 5, cold=True)
        cached = engine.knn(small_summaries[1], 5, cold=True)
        assert logical_fields(cached.stats) == logical_fields(cold.stats)
        assert cached.stats.physical_reads > 0  # the cold run's reads

    def test_key_includes_k_and_method(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=8)
        engine.knn(small_summaries[0], 5)
        engine.knn(small_summaries[0], 6)
        engine.knn(small_summaries[0], 5, method="naive")
        assert engine.cache_hits == 0
        assert engine.cache_misses == 3

    def test_lru_eviction(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=1)
        engine.knn(small_summaries[0], 5)
        engine.knn(small_summaries[1], 5)  # evicts query 0
        assert engine.cache_len == 1
        engine.knn(small_summaries[0], 5)
        assert engine.cache_hits == 0

    def test_cache_disabled(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=0)
        engine.knn(small_summaries[0], 5)
        engine.knn(small_summaries[0], 5)
        assert engine.cache_hits == 0
        assert engine.cache_len == 0

    def test_clear_cache(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=8)
        engine.knn(small_summaries[0], 5)
        engine.clear_cache()
        assert engine.cache_len == 0
        engine.knn(small_summaries[0], 5)
        assert engine.cache_hits == 0

    def test_batch_reports_hits(self, small_index, small_summaries):
        engine = QueryEngine(small_index, cache_size=8)
        queries = [small_summaries[0]] * 4
        batch = engine.knn_many(queries, 5, workers=1)
        assert batch.metrics.cache_hits == 3
        assert batch.metrics.cache_misses == 1
        assert batch.metrics.cache_hit_rate == pytest.approx(0.75)


class TestFingerprint:
    def test_content_based(self, small_summaries):
        import copy

        clone = copy.deepcopy(small_summaries[0])
        assert query_fingerprint(clone) == query_fingerprint(
            small_summaries[0]
        )
        assert query_fingerprint(small_summaries[0]) != query_fingerprint(
            small_summaries[1]
        )

    def test_rejects_non_summary(self):
        with pytest.raises(TypeError):
            query_fingerprint({"video_id": 1})


class TestDegenerate:
    def test_engine_over_emptied_index(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        for summary in small_summaries:
            index.remove_video(summary.video_id)
        engine = QueryEngine(index)
        result = engine.knn(small_summaries[0], 5)
        assert result.videos == ()
        batch = engine.knn_many(list(small_summaries[:3]), 5, workers=2)
        assert all(r.videos == () for r in batch.results)

    def test_snapshot_reflects_build_time_state(self, small_summaries):
        """The engine serves the index as of construction (snapshot)."""
        index = VitriIndex.build(small_summaries[:-1], EPSILON)
        engine = QueryEngine(index, cache_size=0)
        before = engine.knn(small_summaries[0], 20)
        assert small_summaries[-1].video_id not in before.videos


class TestCacheEpoch:
    """Regression: the result-cache key must include a content token.

    A fingerprint of only (query, k, method) would keep serving rankings
    computed over *old* content after the index mutates and the engine
    refreshes — the sharded router relies on this invalidation every time
    a shard's content changes between queries.
    """

    def test_refresh_invalidates_stale_cached_results(self, small_summaries):
        index = VitriIndex.build(small_summaries[:-1], EPSILON)
        engine = QueryEngine(index, cache_size=8)
        query = small_summaries[-1]
        stale = engine.knn(query, 5)
        assert engine.knn(query, 5) is stale  # memoised pre-mutation
        assert query.video_id not in stale.videos

        index.insert_video(small_summaries[-1])
        engine.refresh()
        fresh = engine.knn(query, 5)
        assert fresh is not stale
        # The inserted video is its own best match; a stale cache entry
        # could never contain it.
        assert fresh.videos[0] == query.video_id

    def test_token_moves_with_content(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        engine = QueryEngine(index, cache_size=8)
        token = engine.snapshot_token
        assert token == index.content_token()
        index.remove_video(small_summaries[0].video_id)
        assert index.content_token() != token
        engine.refresh()
        assert engine.snapshot_token == index.content_token()

    def test_removal_drops_video_from_refreshed_results(
        self, small_summaries
    ):
        index = VitriIndex.build(small_summaries, EPSILON)
        engine = QueryEngine(index, cache_size=8)
        query = small_summaries[0]
        before = engine.knn(query, 5)
        assert before.videos[0] == query.video_id
        index.remove_video(query.video_id)
        engine.refresh()
        after = engine.knn(query, 5)
        assert query.video_id not in after.videos

    def test_distinct_indexes_never_share_entries(self, small_summaries):
        """Two engines over different content must not collide even if
        they see the same (query, k, method) triple."""
        left = VitriIndex.build(small_summaries[:10], EPSILON)
        right = VitriIndex.build(small_summaries[10:], EPSILON)
        assert left.content_token() != right.content_token()
        query = small_summaries[0]
        served_left = QueryEngine(left, cache_size=8).knn(query, 20)
        served_right = QueryEngine(right, cache_size=8).knn(query, 20)
        assert set(served_left.videos).isdisjoint(served_right.videos)
