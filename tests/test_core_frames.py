"""Tests for the exact frame-level similarity (paper Section 3.1)."""

import numpy as np
import pytest

from repro.core.frames import frame_similarity, frames_with_match
from repro.utils.counters import CostCounters


class TestFramesWithMatch:
    def test_identical_sets(self):
        frames = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert frames_with_match(frames, frames, 0.1) == 2

    def test_no_match(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[5.0, 5.0]])
        assert frames_with_match(a, b, 0.5) == 0

    def test_threshold_inclusive(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.3, 0.0]])
        assert frames_with_match(a, b, 0.3) == 1
        assert frames_with_match(a, b, 0.2999) == 0

    def test_counts_each_query_frame_once(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.01, 0.0], [0.02, 0.0], [0.03, 0.0]])
        assert frames_with_match(a, b, 0.1) == 1

    def test_asymmetric(self):
        a = np.array([[0.0, 0.0], [10.0, 0.0]])
        b = np.array([[0.0, 0.0]])
        assert frames_with_match(a, b, 0.1) == 1
        assert frames_with_match(b, a, 0.1) == 1

    def test_blocked_matches_unblocked(self, rng):
        # Exercise the blocking path with > _BLOCK rows.
        import repro.core.frames as frames_module

        a = rng.uniform(0, 1, (frames_module._BLOCK + 50, 3))
        b = rng.uniform(0, 1, (40, 3))
        eps = 0.4
        expected = int(
            np.sum(
                np.any(
                    np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2) <= eps,
                    axis=1,
                )
            )
        )
        assert frames_with_match(a, b, eps) == expected

    def test_counters(self):
        counters = CostCounters()
        a = np.zeros((3, 2))
        b = np.zeros((4, 2))
        frames_with_match(a, b, 0.1, counters)
        assert counters.distance_computations == 12


class TestFrameSimilarity:
    def test_identical_videos(self):
        frames = np.random.default_rng(0).uniform(0, 1, (20, 4))
        assert frame_similarity(frames, frames, 0.01) == pytest.approx(1.0)

    def test_disjoint_videos(self):
        a = np.zeros((5, 3))
        b = np.full((7, 3), 10.0)
        assert frame_similarity(a, b, 0.5) == 0.0

    def test_definition(self):
        # sim = (matched_x + matched_y) / (|X| + |Y|).
        a = np.array([[0.0, 0.0], [1.0, 0.0], [9.0, 9.0]])
        b = np.array([[0.0, 0.05], [4.0, 4.0]])
        eps = 0.2
        expected = (1 + 1) / (3 + 2)
        assert frame_similarity(a, b, eps) == pytest.approx(expected)

    def test_symmetric(self, rng):
        a = rng.uniform(0, 1, (15, 3))
        b = rng.uniform(0, 1, (10, 3))
        assert frame_similarity(a, b, 0.4) == pytest.approx(
            frame_similarity(b, a, 0.4)
        )

    def test_monotone_in_epsilon(self, rng):
        a = rng.uniform(0, 1, (20, 3))
        b = rng.uniform(0, 1, (20, 3))
        values = [frame_similarity(a, b, eps) for eps in (0.05, 0.2, 0.5, 1.5)]
        assert all(y >= x for x, y in zip(values, values[1:]))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            frame_similarity(np.zeros((2, 2)), np.zeros((2, 2)), 0.0)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            frame_similarity(np.zeros((2, 2)), np.zeros((2, 3)), 0.1)
