"""Stateful property testing: random database lifecycles vs an oracle.

Hypothesis drives arbitrary interleavings of add / remove / query against
a :class:`VideoDatabase`, while a plain-Python oracle tracks what should
be stored and computes reference rankings with pairwise
:func:`video_similarity`.  Every query must agree exactly.  This is the
strongest reliability statement in the suite: no sequence of operations
may desynchronise the B+-tree, the heap tombstones, the streaming
moments, or the score aggregation.

A second machine (:class:`CrashRecoveryMachine`) drives a *durable*
database through random add / remove / checkpoint / crash / reopen
interleavings against a two-level oracle: ``live`` mirrors the current
in-memory state, ``committed`` mirrors the last checkpoint.  A crash must
roll the database back to ``committed``, never to anything partial.
"""

import shutil
import tempfile

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.btree.checker import check_tree
from repro.core.database import VideoDatabase
from repro.core.similarity import video_similarity
from repro.core.summarize import summarize_video

EPSILON = 0.4
DIM = 6


def make_frames(seed: int) -> np.ndarray:
    """A deterministic small video for a given content seed."""
    rng = np.random.default_rng(seed)
    anchors = rng.dirichlet(np.full(DIM, 0.3), size=2)
    frames = []
    for anchor in anchors:
        block = np.clip(
            anchor[None, :] + rng.normal(0, 0.02, (6, DIM)), 0, None
        )
        frames.append(block / block.sum(axis=1, keepdims=True))
    return np.vstack(frames)


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.db = VideoDatabase(epsilon=EPSILON, summarize_seed=0)
        self.oracle: dict[int, np.ndarray] = {}
        self.counter = 0

    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def add_video(self, content_seed):
        frames = make_frames(content_seed)
        video_id = self.db.add(frames)
        self.oracle[video_id] = frames
        self.counter += 1

    @precondition(lambda self: len(self.oracle) > 0)
    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_video(self, pick):
        video_id = sorted(self.oracle)[pick % len(self.oracle)]
        self.db.remove(video_id)
        del self.oracle[video_id]

    @precondition(lambda self: len(self.oracle) > 0)
    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def query(self, content_seed):
        frames = make_frames(content_seed)
        result = self.db.query(frames, k=len(self.oracle))

        query_summary = summarize_video(0, frames, EPSILON, seed=0)
        expected = []
        for video_id in sorted(self.oracle):
            stored = summarize_video(
                video_id, self.oracle[video_id], EPSILON, seed=video_id
            )
            score = video_similarity(query_summary, stored)
            if score > 0.0:
                expected.append((video_id, score))
        expected_scores = dict(expected)

        # Same result set and per-video scores; the order of exact ties
        # (identical content added twice) may differ in the last ULP
        # between the two summation paths.
        assert set(result.videos) == set(expected_scores)
        for video, got in zip(result.videos, result.scores):
            assert abs(got - expected_scores[video]) < 1e-9
        assert list(result.scores) == sorted(result.scores, reverse=True)

    @invariant()
    def size_matches_oracle(self):
        if hasattr(self, "db"):
            assert len(self.db) == len(self.oracle)


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)


class CrashRecoveryMachine(RuleBasedStateMachine):
    """Durable-database lifecycles with crashes, vs a two-level oracle.

    ``live`` is what the open database should contain right now;
    ``committed`` is what it must contain after a crash + reopen.  A
    clean :meth:`VideoDatabase.crash` (process-kill seam, no torn
    writes — those are swept exhaustively in test_storage_recovery)
    discards everything since the last checkpoint, nothing older.
    """

    @initialize()
    def setup(self) -> None:
        self.dir = tempfile.mkdtemp(prefix="vitri-stateful-")
        self.db = VideoDatabase(epsilon=EPSILON, path=self.dir)
        self.live: dict[int, np.ndarray] = {}
        self.committed: dict[int, np.ndarray] = {}

    def teardown(self) -> None:
        if hasattr(self, "db"):
            try:
                self.db.close()
            except RuntimeError:
                pass
        if hasattr(self, "dir"):
            shutil.rmtree(self.dir, ignore_errors=True)

    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def add_video(self, content_seed):
        frames = make_frames(content_seed)
        video_id = self.db.add(frames)
        assert video_id not in self.live
        self.live[video_id] = frames

    @precondition(lambda self: len(self.live) > 0)
    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_video(self, pick):
        video_id = sorted(self.live)[pick % len(self.live)]
        self.db.remove(video_id)
        del self.live[video_id]

    @rule()
    def checkpoint(self):
        self.db.checkpoint()
        self.committed = dict(self.live)

    @rule()
    def crash_and_reopen(self):
        self.db.crash()
        self.db = VideoDatabase(path=self.dir)
        self.live = dict(self.committed)

    @rule()
    def close_and_reopen(self):
        self.db.close()  # final checkpoint
        self.committed = dict(self.live)
        self.db = VideoDatabase(path=self.dir)

    @precondition(lambda self: len(self.live) > 0)
    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def query(self, content_seed):
        frames = make_frames(content_seed)
        result = self.db.query(frames, k=len(self.live))

        query_summary = summarize_video(0, frames, EPSILON, seed=0)
        expected_scores = {}
        for video_id in sorted(self.live):
            stored = summarize_video(
                video_id, self.live[video_id], EPSILON, seed=video_id
            )
            score = video_similarity(query_summary, stored)
            if score > 0.0:
                expected_scores[video_id] = score

        assert set(result.videos) == set(expected_scores)
        for video, got in zip(result.videos, result.scores):
            assert abs(got - expected_scores[video]) < 1e-9

    @invariant()
    def size_matches_live_oracle(self):
        if hasattr(self, "db"):
            assert len(self.db) == len(self.live)

    @invariant()
    def recovered_structure_is_sound(self):
        if hasattr(self, "db") and self.db.index is not None:
            check_tree(self.db.index.btree)
            assert self.db.index.heap.verify() == []


TestCrashRecoveryMachine = CrashRecoveryMachine.TestCase
TestCrashRecoveryMachine.settings = settings(
    max_examples=15, stateful_step_count=10, deadline=None
)
