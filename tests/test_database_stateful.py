"""Stateful property testing: random database lifecycles vs an oracle.

Hypothesis drives arbitrary interleavings of add / remove / query against
a :class:`VideoDatabase`, while a plain-Python oracle tracks what should
be stored and computes reference rankings with pairwise
:func:`video_similarity`.  Every query must agree exactly.  This is the
strongest reliability statement in the suite: no sequence of operations
may desynchronise the B+-tree, the heap tombstones, the streaming
moments, or the score aggregation.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.database import VideoDatabase
from repro.core.similarity import video_similarity
from repro.core.summarize import summarize_video

EPSILON = 0.4
DIM = 6


def make_frames(seed: int) -> np.ndarray:
    """A deterministic small video for a given content seed."""
    rng = np.random.default_rng(seed)
    anchors = rng.dirichlet(np.full(DIM, 0.3), size=2)
    frames = []
    for anchor in anchors:
        block = np.clip(
            anchor[None, :] + rng.normal(0, 0.02, (6, DIM)), 0, None
        )
        frames.append(block / block.sum(axis=1, keepdims=True))
    return np.vstack(frames)


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.db = VideoDatabase(epsilon=EPSILON, summarize_seed=0)
        self.oracle: dict[int, np.ndarray] = {}
        self.counter = 0

    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def add_video(self, content_seed):
        frames = make_frames(content_seed)
        video_id = self.db.add(frames)
        self.oracle[video_id] = frames
        self.counter += 1

    @precondition(lambda self: len(self.oracle) > 0)
    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_video(self, pick):
        video_id = sorted(self.oracle)[pick % len(self.oracle)]
        self.db.remove(video_id)
        del self.oracle[video_id]

    @precondition(lambda self: len(self.oracle) > 0)
    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def query(self, content_seed):
        frames = make_frames(content_seed)
        result = self.db.query(frames, k=len(self.oracle))

        query_summary = summarize_video(0, frames, EPSILON, seed=0)
        expected = []
        for video_id in sorted(self.oracle):
            stored = summarize_video(
                video_id, self.oracle[video_id], EPSILON, seed=video_id
            )
            score = video_similarity(query_summary, stored)
            if score > 0.0:
                expected.append((video_id, score))
        expected_scores = dict(expected)

        # Same result set and per-video scores; the order of exact ties
        # (identical content added twice) may differ in the last ULP
        # between the two summation paths.
        assert set(result.videos) == set(expected_scores)
        for video, got in zip(result.videos, result.scores):
            assert abs(got - expected_scores[video]) < 1e-9
        assert list(result.scores) == sorted(result.scores, reverse=True)

    @invariant()
    def size_matches_oracle(self):
        if hasattr(self, "db"):
            assert len(self.db) == len(self.oracle)


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
