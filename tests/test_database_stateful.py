"""Stateful property testing: random database lifecycles vs an oracle.

Hypothesis drives arbitrary interleavings of add / remove / query against
a :class:`VideoDatabase`, while a plain-Python oracle tracks what should
be stored and computes reference rankings with pairwise
:func:`video_similarity`.  Every query must agree exactly.  This is the
strongest reliability statement in the suite: no sequence of operations
may desynchronise the B+-tree, the heap tombstones, the streaming
moments, or the score aggregation.

A second machine (:class:`CrashRecoveryMachine`) drives a *durable*
database through random add / remove / checkpoint / crash / reopen
interleavings against a two-level oracle: ``live`` mirrors the current
in-memory state, ``committed`` mirrors the last checkpoint.  A crash must
roll the database back to ``committed``, never to anything partial.
"""

import shutil
import tempfile

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.btree.checker import check_tree
from repro.core.database import VideoDatabase
from repro.core.similarity import video_similarity
from repro.core.summarize import summarize_video

EPSILON = 0.4
DIM = 6


def make_frames(seed: int) -> np.ndarray:
    """A deterministic small video for a given content seed."""
    rng = np.random.default_rng(seed)
    anchors = rng.dirichlet(np.full(DIM, 0.3), size=2)
    frames = []
    for anchor in anchors:
        block = np.clip(
            anchor[None, :] + rng.normal(0, 0.02, (6, DIM)), 0, None
        )
        frames.append(block / block.sum(axis=1, keepdims=True))
    return np.vstack(frames)


class DatabaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.db = VideoDatabase(epsilon=EPSILON, summarize_seed=0)
        self.oracle: dict[int, np.ndarray] = {}
        self.counter = 0

    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def add_video(self, content_seed):
        frames = make_frames(content_seed)
        video_id = self.db.add(frames)
        self.oracle[video_id] = frames
        self.counter += 1

    @precondition(lambda self: len(self.oracle) > 0)
    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_video(self, pick):
        video_id = sorted(self.oracle)[pick % len(self.oracle)]
        self.db.remove(video_id)
        del self.oracle[video_id]

    @precondition(lambda self: len(self.oracle) > 0)
    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def query(self, content_seed):
        frames = make_frames(content_seed)
        result = self.db.query(frames, k=len(self.oracle))

        query_summary = summarize_video(0, frames, EPSILON, seed=0)
        expected = []
        for video_id in sorted(self.oracle):
            stored = summarize_video(
                video_id, self.oracle[video_id], EPSILON, seed=video_id
            )
            score = video_similarity(query_summary, stored)
            if score > 0.0:
                expected.append((video_id, score))
        expected_scores = dict(expected)

        # Same result set and per-video scores; the order of exact ties
        # (identical content added twice) may differ in the last ULP
        # between the two summation paths.
        assert set(result.videos) == set(expected_scores)
        for video, got in zip(result.videos, result.scores):
            assert abs(got - expected_scores[video]) < 1e-9
        assert list(result.scores) == sorted(result.scores, reverse=True)

    @invariant()
    def size_matches_oracle(self):
        if hasattr(self, "db"):
            assert len(self.db) == len(self.oracle)


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)


class CrashRecoveryMachine(RuleBasedStateMachine):
    """Durable-database lifecycles with crashes, vs a two-level oracle.

    ``live`` is what the open database should contain right now;
    ``committed`` is what it must contain after a crash + reopen.  A
    clean :meth:`VideoDatabase.crash` (process-kill seam, no torn
    writes — those are swept exhaustively in test_storage_recovery)
    discards everything since the last checkpoint, nothing older.
    """

    @initialize()
    def setup(self) -> None:
        self.dir = tempfile.mkdtemp(prefix="vitri-stateful-")
        self.db = VideoDatabase(epsilon=EPSILON, path=self.dir)
        self.live: dict[int, np.ndarray] = {}
        self.committed: dict[int, np.ndarray] = {}

    def teardown(self) -> None:
        if hasattr(self, "db"):
            try:
                self.db.close()
            except RuntimeError:
                pass
        if hasattr(self, "dir"):
            shutil.rmtree(self.dir, ignore_errors=True)

    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def add_video(self, content_seed):
        frames = make_frames(content_seed)
        video_id = self.db.add(frames)
        assert video_id not in self.live
        self.live[video_id] = frames

    @precondition(lambda self: len(self.live) > 0)
    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_video(self, pick):
        video_id = sorted(self.live)[pick % len(self.live)]
        self.db.remove(video_id)
        del self.live[video_id]

    @rule()
    def checkpoint(self):
        self.db.checkpoint()
        self.committed = dict(self.live)

    @rule()
    def crash_and_reopen(self):
        self.db.crash()
        self.db = VideoDatabase(path=self.dir)
        self.live = dict(self.committed)

    @rule()
    def close_and_reopen(self):
        self.db.close()  # final checkpoint
        self.committed = dict(self.live)
        self.db = VideoDatabase(path=self.dir)

    @precondition(lambda self: len(self.live) > 0)
    @rule(content_seed=st.integers(min_value=0, max_value=30))
    def query(self, content_seed):
        frames = make_frames(content_seed)
        result = self.db.query(frames, k=len(self.live))

        query_summary = summarize_video(0, frames, EPSILON, seed=0)
        expected_scores = {}
        for video_id in sorted(self.live):
            stored = summarize_video(
                video_id, self.live[video_id], EPSILON, seed=video_id
            )
            score = video_similarity(query_summary, stored)
            if score > 0.0:
                expected_scores[video_id] = score

        assert set(result.videos) == set(expected_scores)
        for video, got in zip(result.videos, result.scores):
            assert abs(got - expected_scores[video]) < 1e-9

    @invariant()
    def size_matches_live_oracle(self):
        if hasattr(self, "db"):
            assert len(self.db) == len(self.live)

    @invariant()
    def recovered_structure_is_sound(self):
        if hasattr(self, "db") and self.db.index is not None:
            check_tree(self.db.index.btree)
            assert self.db.index.heap.verify() == []


TestCrashRecoveryMachine = CrashRecoveryMachine.TestCase
TestCrashRecoveryMachine.settings = settings(
    max_examples=15, stateful_step_count=10, deadline=None
)


class TestShardedCheckpointCrash:
    """Kill a 3-shard fleet mid-``checkpoint()`` at every disk-op index.

    A fleet checkpoint is *per-shard* atomic, not fleet-atomic: each
    shard commits through its own write-ahead log, then the manifest is
    replaced.  A crash anywhere in that sequence must leave every shard
    at exactly its old or its new committed content — never partial —
    with no video duplicated across shards, and queries over the
    recovered fleet must match a pairwise-similarity oracle over
    whatever content survived.
    """

    BASE = list(range(9))
    ADDED = [9, 10, 11]

    def _summaries(self):
        from repro.core.summarize import summarize_video

        return {
            video_id: summarize_video(
                video_id, make_frames(video_id), EPSILON, seed=video_id
            )
            for video_id in self.BASE + self.ADDED
        }

    def _expected_sets(self, partitioner, summaries):
        old_sets = [set(), set(), set()]
        new_sets = [set(), set(), set()]
        for video_id, summary in summaries.items():
            shard = partitioner.shard_for(summary)
            new_sets[shard].add(video_id)
            if video_id in self.BASE:
                old_sets[shard].add(video_id)
        return old_sets, new_sets

    def test_crash_point_sweep(self, tmp_path):
        from repro.core.similarity import video_similarity
        from repro.core.summarize import summarize_video
        from repro.shard import KeyRangePartitioner, ShardedVideoDatabase
        from repro.storage.faults import FaultInjector, SimulatedCrash

        summaries = self._summaries()
        partitioner = KeyRangePartitioner.fit(list(summaries.values()), 3)
        old_sets, new_sets = self._expected_sets(partitioner, summaries)
        assert all(old_sets), "fixture must populate all three shards"

        outcomes = set()
        for crash_after in range(1, 400):
            path = str(tmp_path / f"fleet-{crash_after}")
            fleet = ShardedVideoDatabase(
                EPSILON, partitioner=partitioner, path=path
            )
            for video_id in self.BASE:
                fleet.add_summary(summaries[video_id])
            fleet.checkpoint()
            fleet.close()

            injector = FaultInjector(crash_after=crash_after)
            fleet = None
            try:
                # Reopening replays each shard's WAL, so the crash point
                # may land inside recovery itself — also a legal kill
                # (and close() checkpoints again, another window).
                fleet = ShardedVideoDatabase(
                    path=path, fault_injector=injector
                )
                for video_id in self.ADDED:
                    fleet.add_summary(summaries[video_id])
                fleet.checkpoint()
                fleet.close()
            except SimulatedCrash:
                if fleet is not None:
                    fleet.crash()

            recovered = ShardedVideoDatabase(path=path)
            per_shard = [shard.video_ids() for shard in recovered.shards]
            for shard_index, visible in enumerate(per_shard):
                assert visible in (
                    old_sets[shard_index],
                    new_sets[shard_index],
                ), (crash_after, shard_index, visible)
            visible_ids = set().union(*per_shard)
            assert sum(len(s) for s in per_shard) == len(visible_ids)
            assert 9 <= len(visible_ids) <= 12
            outcomes.add(len(visible_ids))

            # Queries over the survivors match the pairwise oracle.
            query_frames = make_frames(2)
            result = recovered.query(query_frames, k=len(visible_ids))
            query_summary = summarize_video(0, query_frames, EPSILON, seed=0)
            expected = {
                video_id: video_similarity(
                    query_summary, summaries[video_id]
                )
                for video_id in visible_ids
            }
            expected = {v: s for v, s in expected.items() if s > 0.0}
            assert set(result.videos) == set(expected)
            for video, got in zip(result.videos, result.scores):
                assert abs(got - expected[video]) < 1e-9
            recovered.close()

            if not injector.crashed:
                break
        else:
            raise AssertionError("sweep never reached a crash-free run")

        # The sweep must have seen both a fully-old and a fully-new
        # fleet, plus (typically) mixed states in between.
        assert 9 in outcomes and 12 in outcomes
