"""Smoke tests: every example script must run to completion.

The examples are the repository's user-facing documentation; a refactor
that breaks one should fail the suite, not a reader.  Each example is
executed in-process (import + ``main()``), with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_all_examples_discovered():
    assert set(EXAMPLES) >= {
        "quickstart",
        "ad_duplicate_detection",
        "epsilon_tradeoff",
        "dynamic_library",
        "persistent_index",
        "recut_detection",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_quickstart_output_shape(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "top-5 most similar videos" in out
    assert "query cost" in out


def test_duplicate_detection_recall(capsys):
    load_example("ad_duplicate_detection").main()
    out = capsys.readouterr().out
    assert "copy recall" in out
    recall_line = [l for l in out.splitlines() if "copy recall" in l][0]
    recall = float(recall_line.split(":")[1].strip().rstrip("%"))
    assert recall >= 80.0

def test_recut_detection_accuracy(capsys):
    load_example("recut_detection").main()
    out = capsys.readouterr().out
    classified = [l for l in out.splitlines() if l.startswith("classified")][0]
    correct, total = classified.split()[1].split("/")
    assert int(correct) >= int(total) - 2
