"""Property-based tests: the index against brute-force video similarity.

Hypothesis generates arbitrary small ViTri databases (positions, radii,
counts) and queries; the indexed KNN must return exactly what pairwise
:func:`video_similarity` scoring returns, for every method and reference
strategy.  This is the deepest invariant in the system: the 1-D key
filter is lossless and the score aggregation is shared.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.btree.checker import check_tree
from repro.core.index import VitriIndex
from repro.core.similarity import video_similarity
from repro.core.vitri import VideoSummary, ViTri

EPSILON = 0.4
DIM = 5

positions = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=DIM,
    max_size=DIM,
)
vitri_strategy = st.builds(
    lambda pos, radius, count: ViTri(
        position=np.asarray(pos), radius=radius, count=count
    ),
    positions,
    st.floats(min_value=0.0, max_value=EPSILON / 2.0, allow_nan=False),
    st.integers(min_value=1, max_value=40),
)
summary_strategy = st.lists(vitri_strategy, min_size=1, max_size=4)


def make_database(summaries_raw):
    return [
        VideoSummary(video_id=video_id, vitris=tuple(vitris))
        for video_id, vitris in enumerate(summaries_raw)
    ]


def brute_force(summaries, query, k):
    scored = []
    for summary in summaries:
        score = video_similarity(query, summary)
        if score > 0.0:
            scored.append((summary.video_id, round(score, 12)))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored[:k]


@settings(max_examples=40, deadline=None)
@given(
    database=st.lists(summary_strategy, min_size=1, max_size=8),
    query_raw=summary_strategy,
)
def test_index_matches_brute_force(database, query_raw):
    summaries = make_database(database)
    query = VideoSummary(video_id=9999, vitris=tuple(query_raw))
    index = VitriIndex.build(summaries, EPSILON)
    # Structural + pager-bookkeeping invariants (no leaked/double-referenced
    # pages, NO_LEAF-terminated leaf chain) on every generated workload.
    check_tree(index.btree)
    k = len(summaries)
    expected = dict(brute_force(summaries, query, k))
    for method in ("composed", "naive"):
        result = index.knn(query, k, method=method)
        # Same result set, per-video scores equal, descending order.  The
        # exact order of (near-)ties is not pinned: the two paths sum the
        # same per-pair estimates in different orders, and hypothesis
        # happily finds subnormal-radius inputs where the last ULP flips
        # a tie.
        assert set(result.videos) == set(expected)
        for video, score in zip(result.videos, result.scores):
            assert score == pytest.approx(
                expected[video], rel=1e-9, abs=1e-12
            )
        assert list(result.scores) == sorted(result.scores, reverse=True)


@settings(max_examples=25, deadline=None)
@given(
    database=st.lists(summary_strategy, min_size=2, max_size=8),
    query_raw=summary_strategy,
)
def test_reference_strategies_agree(database, query_raw):
    """Results are invariant to the reference point — only cost differs."""
    summaries = make_database(database)
    query = VideoSummary(video_id=9999, vitris=tuple(query_raw))
    results = []
    for reference in ("optimal", "data_center", "space_center"):
        index = VitriIndex.build(summaries, EPSILON, reference=reference)
        results.append(index.knn(query, len(summaries)))
    baseline = dict(zip(results[0].videos, results[0].scores))
    for other in results[1:]:
        assert set(other.videos) == set(baseline)
        for video, score in zip(other.videos, other.scores):
            assert score == pytest.approx(
                baseline[video], rel=1e-9, abs=1e-12
            )


@settings(max_examples=25, deadline=None)
@given(
    database=st.lists(summary_strategy, min_size=2, max_size=6),
    split=st.integers(min_value=1, max_value=5),
)
def test_dynamic_insert_equals_bulk(database, split):
    """Building in one shot and growing dynamically give identical
    results (the insertion path shares the key function and layout)."""
    summaries = make_database(database)
    split = min(split, len(summaries) - 1)
    bulk = VitriIndex.build(summaries, EPSILON)
    grown = VitriIndex.build(summaries[:split], EPSILON)
    for summary in summaries[split:]:
        grown.insert_video(summary)
    # Both the bulk-loaded and the split-grown tree must keep every pager
    # page reachable exactly once.
    check_tree(bulk.btree)
    check_tree(grown.btree)
    query = summaries[0]
    a = bulk.knn(query, len(summaries))
    b = grown.knn(query, len(summaries))
    scores_a = dict(zip(a.videos, a.scores))
    assert set(b.videos) == set(scores_a)
    for video, score in zip(b.videos, b.scores):
        assert score == pytest.approx(scores_a[video], rel=1e-9, abs=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    database=st.lists(summary_strategy, min_size=2, max_size=6),
    query_raw=summary_strategy,
)
def test_alternative_mappings_agree(database, query_raw):
    """The Pyramid and multi-reference iDistance comparators are different
    key functions over the same records — their rankings must match the
    index's exactly on arbitrary inputs."""
    from repro.baselines.idistance import MultiRefIndex
    from repro.baselines.pyramid import PyramidIndex

    summaries = make_database(database)
    query = VideoSummary(video_id=9999, vitris=tuple(query_raw))
    index = VitriIndex.build(summaries, EPSILON)
    pyramid = PyramidIndex(index)
    multi = MultiRefIndex(index, num_partitions=3, seed=0)
    k = len(summaries)
    reference = index.knn(query, k)
    reference_scores = dict(zip(reference.videos, reference.scores))
    for other in (pyramid.knn(query, k), multi.knn(query, k)):
        assert set(other.videos) == set(reference_scores)
        for video, score in zip(other.videos, other.scores):
            assert score == pytest.approx(
                reference_scores[video], rel=1e-9, abs=1e-12
            )
