"""Tests for the keyframe baseline."""

import numpy as np
import pytest

from repro.baselines.keyframe import (
    KeyframeSummary,
    keyframe_similarity,
    summarize_keyframes,
)
from repro.utils.counters import CostCounters


def shots(rng, anchors, per_shot=10, jitter=0.01):
    return np.vstack(
        [a + rng.normal(0, jitter, (per_shot, len(a))) for a in anchors]
    )


class TestSummarizeKeyframes:
    def test_shape(self, rng):
        frames = rng.uniform(0, 1, (50, 6))
        summary = summarize_keyframes(3, frames, k=5, seed=0)
        assert summary.video_id == 3
        assert summary.keyframes.shape == (5, 6)
        assert summary.num_frames == 50
        assert summary.k == 5
        assert summary.dim == 6

    def test_k_clamped_to_frames(self, rng):
        frames = rng.uniform(0, 1, (3, 4))
        summary = summarize_keyframes(0, frames, k=10, seed=0)
        assert summary.k == 3

    def test_keyframes_near_shot_anchors(self, rng):
        anchors = [np.zeros(4), np.full(4, 5.0)]
        frames = shots(rng, anchors)
        summary = summarize_keyframes(0, frames, k=2, seed=0)
        # Each anchor has a nearby keyframe.
        for anchor in anchors:
            distances = np.linalg.norm(summary.keyframes - anchor, axis=1)
            assert distances.min() < 0.5

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError):
            summarize_keyframes(0, rng.uniform(0, 1, (5, 3)), k=0)


class TestKeyframeSimilarity:
    def test_identical(self, rng):
        frames = rng.uniform(0, 1, (20, 4))
        a = summarize_keyframes(0, frames, k=4, seed=0)
        assert keyframe_similarity(a, a, 0.01) == pytest.approx(1.0)

    def test_disjoint(self):
        a = KeyframeSummary(0, np.zeros((2, 3)), 10)
        b = KeyframeSummary(1, np.full((2, 3), 9.0), 10)
        assert keyframe_similarity(a, b, 0.5) == 0.0

    def test_partial(self):
        a = KeyframeSummary(0, np.array([[0.0, 0.0], [5.0, 5.0]]), 10)
        b = KeyframeSummary(1, np.array([[0.05, 0.0], [99.0, 99.0]]), 10)
        # One of two keyframes matches on each side: (1 + 1) / (2 + 2).
        assert keyframe_similarity(a, b, 0.2) == pytest.approx(0.5)

    def test_binary_threshold_blindness(self):
        """The weakness the paper exploits: within the threshold, the
        keyframe measure cannot distinguish a close match from a marginal
        one."""
        query = KeyframeSummary(0, np.array([[0.0, 0.0]]), 10)
        near = KeyframeSummary(1, np.array([[0.01, 0.0]]), 10)
        far = KeyframeSummary(2, np.array([[0.29, 0.0]]), 10)
        eps = 0.3
        assert keyframe_similarity(query, near, eps) == keyframe_similarity(
            query, far, eps
        )

    def test_counters(self):
        a = KeyframeSummary(0, np.zeros((2, 3)), 10)
        b = KeyframeSummary(1, np.zeros((5, 3)), 10)
        counters = CostCounters()
        keyframe_similarity(a, b, 0.1, counters)
        assert counters.distance_computations == 10

    def test_dim_mismatch(self):
        a = KeyframeSummary(0, np.zeros((2, 3)), 10)
        b = KeyframeSummary(1, np.zeros((2, 4)), 10)
        with pytest.raises(ValueError):
            keyframe_similarity(a, b, 0.1)

    def test_type_check(self):
        a = KeyframeSummary(0, np.zeros((2, 3)), 10)
        with pytest.raises(TypeError):
            keyframe_similarity(a, np.zeros((2, 3)), 0.1)
