"""Subprocess smoke tests: spawn a real shard-server process, query it,
drain it gracefully.

Everything else in the serve suite runs servers on in-process threads
for speed; this file is the proof that the ``python -m
repro.serve.shard_server`` contract — JSON ready-line, serving, drain,
clean exit — holds for an actual child process with its own clock and
interpreter state.
"""

from __future__ import annotations

import tempfile

import pytest

from repro.serve.frontdoor import NetworkFleet
from repro.serve.shard_server import ShardServerHandle
from repro.serve.transport import RemoteShard
from repro.shard.router import ShardedVideoDatabase
from repro.shard.shard import Shard
from tests.test_golden_rankings import EPSILON, K, SEEDS, build_corpus


@pytest.fixture(scope="module")
def corpus():
    summaries, _ = build_corpus(SEEDS[0])
    return summaries


def test_spawn_query_drain(corpus, tmp_path):
    shard_dir = str(tmp_path / "shard-0000")
    shard = Shard(0, epsilon=EPSILON, path=shard_dir)
    try:
        for summary in corpus:
            shard.add_summary(summary)
        local = shard.knn(corpus[0], K)
    finally:
        shard.close()

    handle = ShardServerHandle.spawn(shard_dir, 0, epsilon=EPSILON)
    try:
        assert handle.alive
        remote = RemoteShard(0, handle.host, handle.port)
        assert len(remote) == len(corpus)
        got = remote.knn(corpus[0], K)
        assert got.videos == local.videos
        assert got.scores == local.scores  # bit-identical across processes
        remote.close()
        handle.drain()
        assert handle.wait(30.0) == 0  # graceful exit, not a kill
    finally:
        if handle.alive:
            handle.kill()


def test_subprocess_fleet_matches_in_process(corpus, tmp_path):
    fleet_dir = str(tmp_path / "fleet")
    db = ShardedVideoDatabase(
        EPSILON, partitioner="hash", num_shards=2, path=fleet_dir
    )
    for summary in corpus:
        db.add_summary(summary)
    local = [db.knn(query, K) for query in corpus[:4]]
    db.close()

    with NetworkFleet(fleet_dir, mode="subprocess", workers=2) as fleet:
        for query, want in zip(corpus[:4], local):
            got = fleet.query_sync(query, K, timeout=60.0)
            assert got.videos == want.videos
            assert got.scores == want.scores
        status = fleet.status()
        assert sum(
            entry["videos"] for entry in status["shards"].values()
        ) == len(corpus)
