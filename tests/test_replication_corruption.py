"""Shipped-segment corruption: the replica must refuse, never diverge.

Every test here breaks the segment stream a different way — truncated
frames, torn (bit-flipped) payloads, reordered sequence numbers, a
segment re-framed over a forged token chain — and asserts the same
contract each time: the replica refuses the segment, demotes itself to
``NEEDS_BOOTSTRAP`` instead of serving, and comes back via re-bootstrap
with a verified token.  The invariant under test is absolute: a replica
never answers a query from a state whose content token the primary
never had.
"""

from __future__ import annotations

import pytest

from tests.test_replication import EPSILON, make_primary, make_summaries

from repro.replication import (
    NEEDS_BOOTSTRAP,
    SYNCED,
    ReplicaSet,
    ReplicaShard,
    ReplicaUnavailable,
    SealedSegment,
    decode_segment,
    encode_segment,
)
from repro.replication.shipper import WalShipper, database_token
from repro.utils.clock import VirtualClock


@pytest.fixture
def shipping(tmp_path):
    """A checkpointed primary, its shipper, one synced replica, and two
    pending (unapplied) encoded segments."""
    summaries = make_summaries()
    primary = make_primary(tmp_path / "primary", summaries[:8])
    clock = VirtualClock()
    shipper = WalShipper(primary, clock=clock)
    replica = ReplicaShard(
        0, tmp_path / "replica", epsilon=EPSILON, clock=clock
    )
    replica.bootstrap(shipper.snapshot())
    base_seq = replica.applied_seq
    for summary in summaries[8:10]:
        primary.add_summary(summary)
        primary.checkpoint()
    pending = shipper.segments_since(base_seq)
    assert len(pending) >= 2
    yield primary, shipper, replica, pending, summaries
    replica.close()
    primary.close()


def assert_refused_and_demoted(replica, encoded, match):
    refused_before = replica.segments_refused
    token_before = replica.token
    assert not replica.apply_segment(encoded)
    assert replica.state == NEEDS_BOOTSTRAP
    assert replica.segments_refused == refused_before + 1
    assert match in (replica.last_error or "")
    # The verified position never advances on a refusal.
    assert replica.token == token_before


class TestSegmentDefects:
    def test_truncated_segment_is_refused(self, shipping):
        _, _, replica, pending, _ = shipping
        assert_refused_and_demoted(replica, pending[0][:-7], "bad frame")

    def test_torn_payload_is_refused(self, shipping):
        _, _, replica, pending, _ = shipping
        torn = bytearray(pending[0])
        torn[len(torn) // 2] ^= 0x40  # one flipped bit mid-payload
        assert_refused_and_demoted(replica, bytes(torn), "bad frame")

    def test_reordered_segments_are_refused(self, shipping):
        _, _, replica, pending, _ = shipping
        # Applying the second segment first is a sequence gap.
        assert_refused_and_demoted(replica, pending[1], "sequence gap")

    def test_replayed_segment_is_refused(self, shipping):
        _, _, replica, pending, _ = shipping
        assert replica.apply_segment(pending[0])
        assert_refused_and_demoted(replica, pending[0], "sequence gap")

    def test_forged_token_chain_is_refused(self, shipping):
        _, _, replica, pending, _ = shipping
        segment = decode_segment(pending[0])
        forged = encode_segment(
            SealedSegment(
                seq=segment.seq,
                base_token="11" * 16,
                after_token=segment.after_token,
                payload=segment.payload,
            )
        )
        # The frame itself is valid — only the end-to-end token chain
        # catches a segment built over a history the replica never had.
        assert_refused_and_demoted(replica, forged, "base token mismatch")

    def test_lying_after_token_blocks_serving(self, shipping):
        _, _, replica, pending, _ = shipping
        segment = decode_segment(pending[0])
        forged = encode_segment(
            SealedSegment(
                seq=segment.seq,
                base_token=segment.base_token,
                after_token="22" * 16,
                payload=segment.payload,
            )
        )
        # Frame, sequence and base all check out; the lie is only
        # detectable after the redo, and it must block serving.
        assert_refused_and_demoted(replica, forged, "after token mismatch")
        with pytest.raises(ReplicaUnavailable):
            replica.knn(shipping[4][0], 3)

    def test_demoted_replica_refuses_queries(self, shipping):
        _, _, replica, pending, summaries = shipping
        assert not replica.apply_segment(pending[0][:-1])
        with pytest.raises(ReplicaUnavailable, match="needs_bootstrap"):
            replica.knn(summaries[0], 3)
        with pytest.raises(ReplicaUnavailable):
            replica.similarity_range(summaries[0], 0.5)


class TestRecovery:
    def test_rebootstrap_after_corruption_restores_exact_state(
        self, shipping
    ):
        primary, shipper, replica, pending, summaries = shipping
        assert not replica.apply_segment(pending[0][:-3])
        assert replica.state == NEEDS_BOOTSTRAP

        replica.bootstrap(shipper.snapshot())
        assert replica.state == SYNCED
        assert replica.token == shipper.token
        assert replica.token == database_token(primary.database)
        for query in summaries[:3]:
            want = primary.knn(query, 4)
            got = replica.knn(query, 4)
            assert got.videos == want.videos
            assert got.scores == want.scores

    def test_group_sync_rebootstraps_a_poisoned_replica(self, tmp_path):
        summaries = make_summaries()
        clock = VirtualClock()
        primary = make_primary(tmp_path / "primary", summaries[:8])
        group = ReplicaSet(primary, clock=clock)
        for index in range(2):
            group.attach_replica(
                ReplicaShard(
                    0,
                    tmp_path / f"replica-{index}",
                    epsilon=EPSILON,
                    clock=clock,
                )
            )
        group.add_summary(summaries[8])
        group.checkpoint()

        # Poison one replica with a torn copy of its next segment.
        victim = group.replicas[0]
        encoded = group.shipper.segments_since(victim.applied_seq)[0]
        assert not victim.apply_segment(encoded[:-5])
        assert victim.state == NEEDS_BOOTSTRAP

        tally = group.sync()
        assert tally["bootstrapped"] == 1
        status = group.replication_status()
        for replica_status in status["replicas"]:
            assert replica_status["state"] == SYNCED
            assert replica_status["token"] == status["shipper_token"]
        for query in summaries[:4]:
            want = group.primary.knn(query, 4)
            for attempt in range(3):
                got = group.knn(query, 4, attempt=attempt)
                assert got.videos == want.videos
                assert got.scores == want.scores
        group.close()
