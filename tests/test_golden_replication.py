"""Replica bit-identity over the golden corpora.

A WAL-shipped replica is supposed to be indistinguishable from its
primary: same ranked videos, the *exact* score floats, and the same
logical cost signature (the copies are byte-identical, so even cold
physical I/O counts match).  This is checked over the PR 7 golden
corpora at every stage of a replica's life — freshly bootstrapped,
after segment catch-up from live writes, and after a mid-stream
re-bootstrap forced by a torn segment — so any divergence between the
redo path and the primary's own write path shows up as a failing seed
rather than a subtly different ranking in production.
"""

from __future__ import annotations

import pytest

from tests.test_golden_rankings import BUFFER_CAPACITY, EPSILON, K, SEEDS, build_corpus

from repro.replication import ReplicaSet, ReplicaShard
from repro.shard.shard import Shard
from repro.utils.clock import VirtualClock
from repro.utils.counters import CostCounters


def logical_signature(counters: CostCounters) -> dict:
    """The deterministic part of a counter bundle (drops the wall-clock
    stage timings the engine records under ``extra``)."""
    return {
        key: value
        for key, value in counters.snapshot().items()
        if not key.endswith("_s")
    }


def assert_copies_agree(group, queries):
    """Every copy answers every query bit-identically to the primary."""
    for query in queries:
        reference_counters = CostCounters()
        reference = group.primary.knn(
            query, K, cold=True, out_counters=reference_counters
        )
        for replica in group.replicas:
            counters = CostCounters()
            result = replica.knn(query, K, cold=True, out_counters=counters)
            assert result.videos == reference.videos
            # repr pins every bit of the float64 scores.
            assert [repr(s) for s in result.scores] == [
                repr(s) for s in reference.scores
            ]
            assert logical_signature(counters) == logical_signature(
                reference_counters
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_replica_rankings_bit_identical_through_rebootstrap(seed, tmp_path):
    summaries, _ = build_corpus(seed)
    clock = VirtualClock()
    primary = Shard(
        0,
        epsilon=EPSILON,
        path=str(tmp_path / "primary"),
        buffer_capacity=BUFFER_CAPACITY,
    )
    for summary in summaries[:-2]:
        primary.add_summary(summary)
    primary.checkpoint()

    group = ReplicaSet(primary, clock=clock)
    for index in range(2):
        group.attach_replica(
            ReplicaShard(
                0,
                tmp_path / f"replica-{index}",
                epsilon=EPSILON,
                clock=clock,
                buffer_capacity=BUFFER_CAPACITY,
            )
        )
    try:
        # Stage 1: freshly bootstrapped copies.
        assert_copies_agree(group, summaries)

        # Stage 2: a live write ships as segments; one replica receives
        # a torn copy mid-stream and demotes itself.
        group.add_summary(summaries[-2])
        group.checkpoint()
        victim = group.replicas[0]
        torn = group.shipper.segments_since(victim.applied_seq)[0][:-3]
        assert not victim.apply_segment(torn)

        # sync() re-bootstraps the victim and catches the other replica
        # up by segment replay — both paths must land on the same bits.
        tally = group.sync()
        assert tally["bootstrapped"] == 1
        assert tally["applied"] >= 1
        assert_copies_agree(group, summaries)

        # Stage 3: one more shipped write after the re-bootstrap, caught
        # up by replay on both replicas.
        group.add_summary(summaries[-1])
        group.checkpoint()
        tally = group.sync()
        assert tally["bootstrapped"] == 0
        assert tally["applied"] >= 2
        status = group.replication_status()
        for replica_status in status["replicas"]:
            assert replica_status["token"] == status["shipper_token"]
        assert_copies_agree(group, summaries)
    finally:
        group.close()
