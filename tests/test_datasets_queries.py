"""Tests for query workload sampling."""

import pytest

from repro.datasets.queries import sample_queries
from repro.datasets.synthetic import DatasetConfig, generate_dataset


def make_dataset():
    config = DatasetConfig(
        dim=8,
        num_families=3,
        family_size=2,
        num_distractors=4,
        duration_classes=((20, 1.0),),
    )
    return generate_dataset(config, seed=0)


class TestSampleQueries:
    def test_count(self):
        dataset = make_dataset()
        queries = sample_queries(dataset, 5, seed=0)
        assert len(queries) == 5

    def test_valid_ids(self):
        dataset = make_dataset()
        queries = sample_queries(dataset, 8, seed=1)
        assert all(0 <= q < dataset.num_videos for q in queries)

    def test_prefers_family_members(self):
        dataset = make_dataset()
        # 6 family videos exist; asking for 6 with preference must return
        # only family members.
        queries = sample_queries(dataset, 6, prefer_families=True, seed=2)
        assert all(dataset.info(q).family >= 0 for q in queries)

    def test_no_duplicates_when_possible(self):
        dataset = make_dataset()
        queries = sample_queries(dataset, dataset.num_videos, seed=3)
        assert len(set(queries)) == len(queries)

    def test_oversampling_allowed(self):
        dataset = make_dataset()
        queries = sample_queries(dataset, 50, seed=4)
        assert len(queries) == 50

    def test_deterministic(self):
        dataset = make_dataset()
        assert sample_queries(dataset, 5, seed=9) == sample_queries(
            dataset, 5, seed=9
        )

    def test_invalid_count(self):
        dataset = make_dataset()
        with pytest.raises(ValueError):
            sample_queries(dataset, 0)
        with pytest.raises(TypeError):
            sample_queries(dataset, 1.5)
