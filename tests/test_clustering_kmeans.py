"""Tests for repro.clustering.kmeans."""

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans


def blobs(rng, centers, per_blob=30, noise=0.05):
    """Well-separated Gaussian blobs around the given centres."""
    points = []
    for center in centers:
        points.append(center + rng.normal(0, noise, (per_blob, len(center))))
    return np.vstack(points)


class TestKMeans:
    def test_k1_is_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, (40, 3))
        result = kmeans(data, 1)
        assert np.allclose(result.centers[0], data.mean(axis=0))
        assert result.converged
        assert set(result.labels) == {0}

    def test_separates_two_blobs(self):
        rng = np.random.default_rng(1)
        data = blobs(rng, [np.array([0.0, 0.0]), np.array([5.0, 5.0])])
        result = kmeans(data, 2, seed=1)
        # Each blob must map to a single cluster.
        first = set(result.labels[:30])
        second = set(result.labels[30:])
        assert len(first) == 1 and len(second) == 1
        assert first != second

    def test_separates_four_blobs(self):
        rng = np.random.default_rng(2)
        centers = [np.array(c, dtype=float) for c in
                   [(0, 0), (8, 0), (0, 8), (8, 8)]]
        data = blobs(rng, centers)
        result = kmeans(data, 4, seed=3)
        for blob_index in range(4):
            chunk = result.labels[blob_index * 30 : (blob_index + 1) * 30]
            assert len(set(chunk)) == 1

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, (120, 4))
        inertias = [kmeans(data, k, seed=0).inertia for k in (1, 2, 4, 8)]
        assert all(b <= a + 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k_equals_rows(self):
        rng = np.random.default_rng(4)
        data = rng.normal(0, 1, (7, 2))
        result = kmeans(data, 7, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-16)
        assert sorted(result.labels) == list(range(7))

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(5)
        data = rng.normal(0, 1, (60, 3))
        a = kmeans(data, 3, seed=11)
        b = kmeans(data, 3, seed=11)
        assert np.array_equal(a.labels, b.labels)
        assert np.allclose(a.centers, b.centers)

    def test_identical_points(self):
        data = np.ones((10, 3))
        result = kmeans(data, 2, seed=0)
        # Degenerate but valid: all points coincide, inertia 0.
        assert result.inertia == pytest.approx(0.0, abs=1e-16)
        assert len(result.labels) == 10

    def test_no_empty_clusters(self):
        # An adversarial configuration that tends to produce empty
        # clusters: many coincident points plus a single outlier.
        data = np.vstack([np.zeros((20, 2)), [[10.0, 10.0]], [[10.5, 10.0]]])
        result = kmeans(data, 3, seed=2)
        counts = np.bincount(result.labels, minlength=3)
        assert (counts > 0).all()

    def test_labels_within_range(self):
        rng = np.random.default_rng(6)
        result = kmeans(rng.normal(0, 1, (50, 2)), 5, seed=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < 5

    def test_inertia_matches_labels(self):
        rng = np.random.default_rng(7)
        data = rng.normal(0, 1, (80, 3))
        result = kmeans(data, 4, seed=0)
        manual = sum(
            float(np.sum((data[result.labels == c] - result.centers[c]) ** 2))
            for c in range(4)
        )
        assert result.inertia == pytest.approx(manual, rel=1e-9)

    def test_k_property(self):
        rng = np.random.default_rng(8)
        assert kmeans(rng.normal(0, 1, (10, 2)), 3, seed=0).k == 3

    def test_invalid_k(self):
        data = np.zeros((5, 2))
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 6)
        with pytest.raises(TypeError):
            kmeans(data, 2.0)

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 2, max_iter=0)
