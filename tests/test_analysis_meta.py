"""Meta-test: vilint runs clean over the repository's own source tree.

This is the acceptance gate for the conventions the analyzer enforces:
``src/repro`` must produce zero non-baselined findings, every baseline
entry must still match a real finding (no stale grandfathering), and
every baseline entry must carry a justification comment.
"""

import os

import pytest

from repro.analysis import Baseline, lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")
BASELINE = os.path.join(REPO_ROOT, "vilint.baseline")


@pytest.fixture()
def repo_cwd(monkeypatch):
    # Baseline entries are repo-root-relative; run from there like CI does.
    monkeypatch.chdir(REPO_ROOT)


LINTED_PATHS = ["src/repro", "tests", "benchmarks"]  # what CI lints


def test_whole_tree_is_clean_under_baseline(repo_cwd):
    baseline = Baseline.load(BASELINE)
    result = lint_paths(LINTED_PATHS, baseline=baseline)
    formatted = "\n".join(d.format() for d in result.diagnostics)
    assert result.diagnostics == [], f"non-baselined findings:\n{formatted}"
    assert result.exit_code == 0
    assert result.files_checked > 60


def test_concurrency_rules_clean_with_no_baseline(repo_cwd):
    # The lock rules need no grandfathering at all: every pre-existing
    # violation was either fixed or carries an inline justification.
    result = lint_paths(
        ["src/repro"],
        select=[
            "guard-discipline",
            "lock-order-inversion",
            "blocking-while-locked",
        ],
    )
    formatted = "\n".join(d.format() for d in result.diagnostics)
    assert result.diagnostics == [], f"concurrency findings:\n{formatted}"


def test_baseline_has_no_stale_entries(repo_cwd):
    baseline = Baseline.load(BASELINE)
    result = lint_paths(LINTED_PATHS, baseline=baseline)
    assert result.stale_baseline == [], (
        "baseline entries no longer matching a finding (fix the entry or "
        f"--update-baseline): {result.stale_baseline}"
    )
    # Every entry absorbed exactly one live finding.
    assert result.baselined == len(baseline.entries)


def test_every_baseline_entry_is_justified(repo_cwd):
    baseline = Baseline.load(BASELINE)
    assert baseline.entries, "baseline unexpectedly empty"
    for key, comment in baseline.entries.items():
        assert comment, f"baseline entry {key} has no justification comment"


def test_future_annotations_rule_runs_with_empty_baseline(repo_cwd):
    # The satellite requirement: after adding the missing imports to the
    # __init__ modules, future-annotations needs no baseline at all.
    result = lint_paths(["src/repro"], select=["future-annotations"])
    assert result.diagnostics == []


def test_no_inline_suppression_without_justification(repo_cwd):
    # Inline disables must say why: either prose after '--' on the
    # directive comment itself, or an explanatory comment on one of the
    # three preceding lines.  Directive-shaped text inside docstrings
    # (e.g. the suppression syntax documentation) does not count — only
    # real comments parsed by the engine's tokenizer.
    from repro.analysis.suppressions import collect_suppressions

    for root, dirs, files in os.walk(SRC):
        dirs[:] = [d for d in dirs if d != "__pycache__"]
        for name in files:
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            lines = source.splitlines()
            parsed = collect_suppressions(source)
            directive_lines = sorted(parsed.by_line)
            if parsed.file_wide:
                directive_lines.extend(
                    number
                    for number, line in enumerate(lines, 1)
                    if "disable-file=" in line and "#" in line
                )
            for number in directive_lines:
                line = lines[number - 1]
                preceding = lines[max(0, number - 4) : number - 1]
                has_prose = "--" in line.split("#", 1)[1] or any(
                    previous.lstrip().startswith("#") for previous in preceding
                )
                assert has_prose, (
                    f"{path}:{number}: suppression without justification:"
                    f"\n{line}"
                )
