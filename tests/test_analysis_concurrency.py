"""Golden-fixture tests for the concurrency rules (VIL008-VIL010).

Synthetic classes run through :func:`repro.analysis.lint_source` exactly
as the CLI would see them; the model-building internals (entry-held
inference, annotated-call resolution, edge derivation) are exercised
through the rules' observable findings and through
:func:`build_model_from_paths` on the real package.
"""

import textwrap

from repro.analysis import lint_source
from repro.analysis.concurrency import build_model_from_paths
from repro.analysis.concurrency.model import build_model, lock_node
from repro.analysis.context import FileContext


def findings(source, rule, path="fixture.py"):
    return lint_source(textwrap.dedent(source), path=path, select=[rule])


def lines_for(source, rule, path="fixture.py"):
    return [d.line for d in findings(source, rule, path=path)]


GUARDED = """\
import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0

    def bump(self) -> None:
        with self._lock:
            self._count += 1

    def peek(self) -> int:
        return self._count
"""


class TestGuardDiscipline:
    def test_unlocked_read_of_guarded_attr_flagged(self):
        assert lines_for(GUARDED, "guard-discipline") == [14]

    def test_locked_everywhere_is_clean(self):
        clean = GUARDED.replace(
            "    def peek(self) -> int:\n        return self._count\n",
            "    def peek(self) -> int:\n"
            "        with self._lock:\n"
            "            return self._count\n",
        )
        assert findings(clean, "guard-discipline") == []

    def test_init_writes_exempt(self):
        # __init__ writes _count unlocked; only post-construction access
        # counts, so the locked-everywhere variant stays clean (above)
        # and the original flags only peek's read.
        diags = findings(GUARDED, "guard-discipline")
        assert len(diags) == 1
        assert "_count" in diags[0].message
        assert "read" in diags[0].message

    def test_unlocked_write_flagged_too(self):
        source = GUARDED + (
            "\n"
            "    def reset(self) -> None:\n"
            "        self._count = 0\n"
        )
        diags = findings(source, "guard-discipline")
        assert [d.line for d in diags] == [14, 17]
        assert "written" in diags[1].message

    def test_private_helper_inherits_callers_lock(self):
        source = """\
        import threading


        class Counter:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._count = 0

            def bump(self) -> None:
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self) -> None:
                self._count += 1
        """
        # _bump_locked is only ever called with the lock held, so its
        # write is guarded (entry-held inference) — no finding.
        assert findings(source, "guard-discipline") == []

    def test_rule_skips_test_tier(self):
        assert findings(GUARDED, "guard-discipline", path="tests/x.py") == []

    def test_class_without_lock_ignored(self):
        source = """\
        class Plain:
            def __init__(self) -> None:
                self._count = 0

            def bump(self) -> None:
                self._count += 1
        """
        assert findings(source, "guard-discipline") == []


INVERTED = """\
import threading


class Left:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def forward(self, other: "Right") -> None:
        with self._lock:
            other.enter()

    def enter(self) -> None:
        with self._lock:
            pass


class Right:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def enter(self) -> None:
        with self._lock:
            pass

    def backward(self, other: "Left") -> None:
        with self._lock:
            other.enter()
"""


class TestLockOrderInversion:
    def test_opposite_acquisition_orders_flagged(self):
        diags = findings(INVERTED, "lock-order-inversion")
        assert len(diags) == 1  # one finding per unordered pair
        assert "Left._lock" in diags[0].message
        assert "Right._lock" in diags[0].message

    def test_consistent_order_is_clean(self):
        consistent = INVERTED.replace(
            "    def backward(self, other: \"Left\") -> None:\n"
            "        with self._lock:\n"
            "            other.enter()\n",
            "    def backward(self, other: \"Left\") -> None:\n"
            "        other.enter()\n",
        )
        assert findings(consistent, "lock-order-inversion") == []

    def test_edges_derived_through_annotated_calls(self):
        ctx = FileContext.parse("fixture.py", textwrap.dedent(INVERTED))
        model = build_model([ctx])
        assert (
            lock_node("Left", "_lock"),
            lock_node("Right", "_lock"),
        ) in model.edge_set()
        assert (
            lock_node("Right", "_lock"),
            lock_node("Left", "_lock"),
        ) in model.edge_set()


BLOCKING = """\
import threading
import time


class Worker:
    def __init__(self) -> None:
        self._lock = threading.Lock()

    def slow(self) -> None:
        with self._lock:
            time.sleep(0.1)

    def fine(self) -> None:
        time.sleep(0.1)
        with self._lock:
            pass
"""


class TestBlockingWhileLocked:
    def test_sleep_under_lock_flagged(self):
        diags = findings(BLOCKING, "blocking-while-locked")
        assert [d.line for d in diags] == [11]
        assert "time.sleep" in diags[0].message
        assert "Worker._lock" in diags[0].message

    def test_blocking_through_helper_call_flagged(self):
        source = """\
        import threading
        import time


        class Worker:
            def __init__(self) -> None:
                self._lock = threading.Lock()

            def slow(self) -> None:
                with self._lock:
                    self._wait()

            def _wait(self) -> None:
                time.sleep(0.1)
        """
        diags = findings(source, "blocking-while-locked")
        # The helper's sleep reports once (entry-held makes the sleep
        # itself a locked site) — the call edge does not double-count.
        assert diags
        assert all("Worker._lock" in d.message for d in diags)

    def test_file_io_under_lock_flagged(self):
        source = """\
        import threading


        class Writer:
            def __init__(self) -> None:
                self._lock = threading.Lock()

            def dump(self) -> None:
                with self._lock:
                    with open("out.txt", "w") as handle:
                        handle.write("x")
        """
        # Both the bare open() and the handle.write() under the lock.
        assert lines_for(source, "blocking-while-locked") == [10, 11]

    def test_inline_suppression_applies(self):
        suppressed = BLOCKING.replace(
            "time.sleep(0.1)\n\n    def fine",
            "time.sleep(0.1)  # vilint: disable=blocking-while-locked"
            " -- test fixture\n\n    def fine",
        )
        assert findings(suppressed, "blocking-while-locked") == []


class TestRealPackageModel:
    def test_library_graph_contains_storage_stack(self):
        model = build_model_from_paths(["src/repro"])
        edges = model.edge_set()
        assert ("BufferPool._lock", "Pager._lock") in edges
        assert ("ShardedVideoDatabase._lock", "Pager._lock") in edges
        assert ("ShardedVideoDatabase._lock", "BufferPool._lock") in edges
        assert (
            "ShardedVideoDatabase._lock",
            "QueryEngine._cache_lock",
        ) in edges

    def test_dot_render_is_stable_and_parseable(self):
        model = build_model_from_paths(["src/repro"])
        dot = model.to_dot()
        assert dot == model.to_dot()
        assert dot.startswith("digraph static_lock_order {")
        assert '"BufferPool._lock" -> "Pager._lock"' in dot
