"""Tests for repro.geometry.volumes against closed forms and identities."""

import math

import numpy as np
import pytest

from repro.geometry.volumes import (
    cap_fraction,
    cap_volume,
    cone_volume,
    log_cap_fraction,
    log_cap_volume,
    log_sphere_volume,
    log_unit_sphere_volume,
    sector_fraction,
    sector_volume,
    sphere_volume,
)


class TestSphereVolume:
    @pytest.mark.parametrize(
        "n, expected",
        [
            (1, 2.0),
            (2, math.pi),
            (3, 4.0 * math.pi / 3.0),
            (4, math.pi**2 / 2.0),
            (5, 8.0 * math.pi**2 / 15.0),
            (6, math.pi**3 / 6.0),
        ],
    )
    def test_unit_ball_closed_forms(self, n, expected):
        assert sphere_volume(n, 1.0) == pytest.approx(expected, rel=1e-12)

    def test_radius_scaling(self):
        assert sphere_volume(3, 2.0) == pytest.approx(8.0 * sphere_volume(3, 1.0))

    def test_zero_radius(self):
        assert sphere_volume(5, 0.0) == 0.0
        assert log_sphere_volume(5, 0.0) == -math.inf

    def test_log_consistency(self):
        for n in (2, 7, 16):
            assert math.exp(log_sphere_volume(n, 0.8)) == pytest.approx(
                sphere_volume(n, 0.8), rel=1e-12
            )

    def test_high_dim_log_finite(self):
        # Plain volume underflows; the log must stay finite.
        log_v = log_sphere_volume(512, 0.1)
        assert math.isfinite(log_v)
        assert log_v < -1000

    def test_unit_volume_decreases_beyond_dim5(self):
        values = [math.exp(log_unit_sphere_volume(n)) for n in range(5, 30)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            sphere_volume(0, 1.0)
        with pytest.raises(TypeError):
            sphere_volume(2.5, 1.0)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            sphere_volume(3, -1.0)


class TestCapFraction:
    def test_zero_angle(self):
        assert cap_fraction(4, 0.0) == 0.0
        assert log_cap_fraction(4, 0.0) == -math.inf

    def test_half_angle_is_half_ball(self):
        for n in (2, 3, 8, 33):
            assert cap_fraction(n, math.pi / 2.0) == pytest.approx(0.5, rel=1e-12)

    def test_full_angle_is_whole_ball(self):
        assert cap_fraction(6, math.pi) == 1.0

    def test_obtuse_complement(self):
        # cap(alpha) + cap(pi - alpha) = full ball.
        for n in (2, 3, 7, 20):
            for alpha in (0.3, 0.9, 1.4):
                total = cap_fraction(n, alpha) + cap_fraction(n, math.pi - alpha)
                assert total == pytest.approx(1.0, rel=1e-10)

    def test_monotone_in_angle(self):
        angles = np.linspace(0.01, math.pi - 0.01, 40)
        for n in (2, 5, 16):
            values = [cap_fraction(n, a) for a in angles]
            # Non-decreasing everywhere (float saturation near 0 and pi
            # can make neighbours exactly equal in high dimensions)...
            assert all(b >= a for a, b in zip(values, values[1:]))
            # ...and strictly increasing in the central range.
            central = [cap_fraction(n, a) for a in np.linspace(0.8, 2.3, 15)]
            assert all(b > a for a, b in zip(central, central[1:]))

    def test_2d_circular_segment(self):
        # Segment area = R^2 (alpha - sin(alpha) cos(alpha)).
        for alpha in (0.2, 0.7, 1.3):
            expected = (alpha - math.sin(alpha) * math.cos(alpha)) / math.pi
            assert cap_fraction(2, alpha) == pytest.approx(expected, rel=1e-10)

    def test_3d_spherical_cap(self):
        # V = pi h^2 (3R - h)/3 with h = R(1 - cos(alpha)).
        radius = 1.7
        for alpha in (0.3, 1.0, 1.5):
            h = radius * (1.0 - math.cos(alpha))
            expected = math.pi * h * h * (3.0 * radius - h) / 3.0
            assert cap_volume(3, radius, alpha) == pytest.approx(expected, rel=1e-10)

    def test_log_matches_linear(self):
        for n in (3, 9):
            for alpha in (0.4, 1.0, 2.2):
                assert math.exp(log_cap_fraction(n, alpha)) == pytest.approx(
                    cap_fraction(n, alpha), rel=1e-9
                )

    def test_log_cap_survives_underflow(self):
        # At n=4000 and a small angle, the linear fraction underflows but
        # the log stays finite and negative.
        log_f = log_cap_fraction(4000, 0.05)
        assert math.isfinite(log_f)
        assert log_f < -700

    def test_rejects_bad_angle(self):
        with pytest.raises(ValueError):
            cap_fraction(3, -0.1)
        with pytest.raises(ValueError):
            cap_fraction(3, 4.0)

    def test_log_cap_volume_zero_radius(self):
        assert log_cap_volume(3, 0.0, 1.0) == -math.inf
        assert cap_volume(3, 0.0, 1.0) == 0.0


class TestSectorAndCone:
    def test_sector_equals_cap_plus_cone(self):
        for n in range(2, 14):
            for alpha in (0.15, 0.6, 1.1, 1.5):
                sector = sector_volume(n, 1.3, alpha)
                cap = cap_volume(n, 1.3, alpha)
                cone = cone_volume(n, 1.3, alpha)
                assert sector == pytest.approx(cap + cone, rel=1e-9)

    def test_2d_sector(self):
        # Sector of half-angle alpha has area alpha R^2.
        assert sector_volume(2, 2.0, 0.5) == pytest.approx(0.5 * 4.0, rel=1e-10)

    def test_3d_sector(self):
        # V = (2 pi / 3) R^3 (1 - cos(alpha)).
        for alpha in (0.4, 1.2):
            expected = 2.0 * math.pi / 3.0 * (1.0 - math.cos(alpha))
            assert sector_volume(3, 1.0, alpha) == pytest.approx(expected, rel=1e-10)

    def test_2d_cone_is_triangle_pair(self):
        # Two right triangles: area = R^2 sin(alpha) cos(alpha).
        alpha = 0.8
        expected = math.sin(alpha) * math.cos(alpha)
        assert cone_volume(2, 1.0, alpha) == pytest.approx(expected, rel=1e-10)

    def test_sector_half_pi_is_half_ball(self):
        for n in (2, 3, 6):
            assert sector_fraction(n, math.pi / 2.0) == pytest.approx(0.5)

    def test_sector_fraction_one_dimension(self):
        assert sector_fraction(1, 0.5) == 0.5
        assert sector_fraction(1, math.pi) == 1.0
        assert sector_fraction(1, 0.0) == 0.0

    def test_cone_zero_at_right_angle(self):
        assert cone_volume(4, 1.0, math.pi / 2.0) == pytest.approx(0.0, abs=1e-12)

    def test_cone_rejects_obtuse(self):
        with pytest.raises(ValueError):
            cone_volume(3, 1.0, 2.0)
