"""Shared fixtures: a small deterministic dataset, summaries and an index.

Session-scoped so the expensive pieces (dataset generation, clustering)
run once for the whole suite.
"""

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Rewrite the golden ranking fixtures under tests/golden/ from "
            "the current implementation instead of asserting against them. "
            "Use only after an *intentional* scoring/layout change; commit "
            "the regenerated files with the change that caused them."
        ),
    )


@pytest.fixture()
def update_golden(request):
    """True when the run should regenerate golden fixtures."""
    return request.config.getoption("--update-golden")

from repro.core.index import VitriIndex
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset

EPSILON = 0.3
DIM = 16  # small dimensionality keeps the suite fast


@pytest.fixture(scope="session")
def small_dataset():
    """~20 short videos with 4 near-duplicate families, 16-d features."""
    config = DatasetConfig(
        dim=DIM,
        num_families=4,
        family_size=3,
        num_distractors=8,
        duration_classes=((40, 0.5), (25, 0.5)),
    )
    return generate_dataset(config, seed=20240601)


@pytest.fixture(scope="session")
def small_summaries(small_dataset):
    return [
        summarize_video(i, small_dataset.frames(i), EPSILON, seed=i)
        for i in range(small_dataset.num_videos)
    ]


@pytest.fixture(scope="session")
def small_index(small_summaries):
    return VitriIndex.build(small_summaries, EPSILON, reference="optimal")


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
