"""Tests for VideoDataset container and persistence."""

import numpy as np
import pytest

from repro.datasets.loader import VideoDataset, VideoInfo


def make_dataset():
    videos = [
        np.random.default_rng(i).uniform(0, 1, (10 + i, 4)) for i in range(3)
    ]
    infos = [
        VideoInfo(video_id=0, family=0, num_frames=10),
        VideoInfo(video_id=1, family=0, num_frames=11),
        VideoInfo(video_id=2, family=-1, num_frames=12),
    ]
    return VideoDataset(videos=videos, infos=infos, dim=4)


class TestVideoDataset:
    def test_basic_accessors(self):
        dataset = make_dataset()
        assert dataset.num_videos == 3
        assert dataset.total_frames == 33
        assert dataset.dim == 4
        assert dataset.frames(1).shape == (11, 4)
        assert dataset.info(2).family == -1
        assert len(dataset) == 3

    def test_family_members(self):
        dataset = make_dataset()
        assert dataset.family_members(0) == [0, 1]
        assert dataset.families == [0]
        with pytest.raises(ValueError):
            dataset.family_members(-1)

    def test_iteration(self):
        dataset = make_dataset()
        assert len(list(dataset)) == 3

    def test_duration_table(self):
        dataset = make_dataset()
        table = dataset.duration_table()
        # (length, count, total frames), longest first.
        assert table == [(12, 1, 12), (11, 1, 11), (10, 1, 10)]

    def test_validation_mismatched_lengths(self):
        videos = [np.zeros((5, 4))]
        with pytest.raises(ValueError):
            VideoDataset(videos, [], dim=4)

    def test_validation_frame_count(self):
        videos = [np.zeros((5, 4))]
        infos = [VideoInfo(video_id=0, family=-1, num_frames=99)]
        with pytest.raises(ValueError):
            VideoDataset(videos, infos, dim=4)

    def test_validation_dim(self):
        videos = [np.zeros((5, 3))]
        infos = [VideoInfo(video_id=0, family=-1, num_frames=5)]
        with pytest.raises(ValueError):
            VideoDataset(videos, infos, dim=4)

    def test_validation_id_order(self):
        videos = [np.zeros((5, 4))]
        infos = [VideoInfo(video_id=7, family=-1, num_frames=5)]
        with pytest.raises(ValueError):
            VideoDataset(videos, infos, dim=4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VideoDataset([], [], dim=4)

    def test_save_load_round_trip(self, tmp_path):
        dataset = make_dataset()
        path = str(tmp_path / "dataset.npz")
        dataset.save(path)
        loaded = VideoDataset.load(path)
        assert loaded.num_videos == dataset.num_videos
        assert loaded.dim == dataset.dim
        for i in range(3):
            assert np.array_equal(loaded.frames(i), dataset.frames(i))
            assert loaded.info(i) == dataset.info(i)
