"""Tests for the disk-paged B+-tree (repro.btree)."""

import math
import struct

import pytest

from repro.btree.checker import check_tree
from repro.btree.node import (
    InternalNode,
    LeafNode,
    NO_LEAF,
    internal_capacity,
    leaf_capacity,
)
from repro.btree.tree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.page import Page
from repro.storage.pager import Pager


def make_tree(payload_size=8, capacity=64, path=None):
    pool = BufferPool(Pager(path), capacity=capacity)
    return BPlusTree.create(pool, payload_size)


def payload(i: int) -> bytes:
    return struct.pack("<q", i)


class TestNodeLayouts:
    def test_leaf_round_trip(self):
        page = Page(0)
        leaf = LeafNode(page, payload_size=8)
        leaf.keys = [1.0, 2.5, 3.0]
        leaf.payloads = [payload(i) for i in range(3)]
        leaf.next_leaf = 42
        leaf.save()
        loaded = LeafNode.load(page, payload_size=8)
        assert loaded.keys == [1.0, 2.5, 3.0]
        assert loaded.payloads == [payload(i) for i in range(3)]
        assert loaded.next_leaf == 42

    def test_internal_round_trip(self):
        page = Page(0)
        InternalNode.new(page, keys=[5.0, 9.0], children=[1, 2, 3])
        loaded = InternalNode.load(page)
        assert loaded.keys == [5.0, 9.0]
        assert loaded.children == [1, 2, 3]

    def test_leaf_capacity(self):
        assert leaf_capacity(8) == (4096 - 11) // 16
        with pytest.raises(ValueError):
            leaf_capacity(5000)

    def test_internal_capacity(self):
        assert internal_capacity() == (4096 - 3 - 8) // 16

    def test_load_wrong_type_raises(self):
        page = Page(0)
        LeafNode.new(page, payload_size=8)
        with pytest.raises(ValueError):
            InternalNode.load(page)

    def test_overflow_rejected_on_save(self):
        page = Page(0)
        leaf = LeafNode(page, payload_size=8)
        n = leaf.capacity + 1
        leaf.keys = [float(i) for i in range(n)]
        leaf.payloads = [payload(i) for i in range(n)]
        with pytest.raises(ValueError):
            leaf.save()

    def test_wrong_payload_size_rejected(self):
        page = Page(0)
        leaf = LeafNode(page, payload_size=8)
        leaf.keys = [1.0]
        leaf.payloads = [b"xx"]
        with pytest.raises(ValueError):
            leaf.save()

    def test_internal_children_count_mismatch(self):
        page = Page(0)
        node = InternalNode(page)
        node.keys = [1.0]
        node.children = [1]
        with pytest.raises(ValueError):
            node.save()


class TestInsertAndSearch:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.range_search(-1e9, 1e9) == []
        assert tree.search(1.0) == []

    def test_single_insert(self):
        tree = make_tree()
        tree.insert(3.5, payload(1))
        assert tree.search(3.5) == [payload(1)]
        assert tree.search(3.4) == []

    def test_many_inserts_sorted_output(self):
        tree = make_tree()
        for i in range(2000):
            tree.insert(float((i * 7919) % 1000), payload(i))
        entries = list(tree.iter_entries())
        keys = [k for k, _ in entries]
        assert keys == sorted(keys)
        assert len(entries) == 2000
        check_tree(tree)

    def test_duplicates_all_returned(self):
        tree = make_tree()
        for i in range(500):
            tree.insert(1.0, payload(i))
        got = tree.search(1.0)
        assert sorted(got) == sorted(payload(i) for i in range(500))
        check_tree(tree)

    def test_tree_grows_in_height(self):
        tree = make_tree()
        assert tree.height == 1
        for i in range(3000):
            tree.insert(float(i), payload(i))
        assert tree.height >= 2
        check_tree(tree)

    def test_range_search_bounds_inclusive(self):
        tree = make_tree()
        for i in range(100):
            tree.insert(float(i), payload(i))
        got = tree.range_search(10.0, 20.0)
        assert [k for k, _ in got] == [float(i) for i in range(10, 21)]

    def test_range_search_empty_interval(self):
        tree = make_tree()
        tree.insert(5.0, payload(0))
        assert tree.range_search(6.0, 4.0) == []

    def test_range_search_outside_data(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(float(i), payload(i))
        assert tree.range_search(100.0, 200.0) == []
        assert tree.range_search(-10.0, -1.0) == []

    def test_range_spanning_everything(self):
        tree = make_tree()
        for i in range(50):
            tree.insert(float(i % 7), payload(i))
        assert len(tree.range_search(-math.inf, math.inf)) == 50

    def test_nan_key_rejected(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.insert(float("nan"), payload(0))
        with pytest.raises(ValueError):
            tree.range_search(float("nan"), 1.0)

    def test_wrong_payload_size(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.insert(1.0, b"tiny")

    def test_direct_construction_rejected(self):
        pool = BufferPool(Pager(), capacity=4)
        with pytest.raises(RuntimeError):
            BPlusTree(pool, 8)

    def test_node_visits_counted(self):
        tree = make_tree()
        for i in range(100):
            tree.insert(float(i), payload(i))
        before = tree.node_visits
        tree.search(50.0)
        assert tree.node_visits > before


class TestBulkLoad:
    def test_matches_inserts(self):
        items = [(float(i % 31), payload(i)) for i in range(1500)]
        items.sort(key=lambda kv: kv[0])
        bulk = make_tree()
        bulk.bulk_load(items)
        check_tree(bulk)
        incremental = make_tree()
        for key, value in items:
            incremental.insert(key, value)
        for lo, hi in [(0.0, 5.0), (10.0, 30.0), (-1.0, 100.0), (7.0, 7.0)]:
            assert sorted(bulk.range_search(lo, hi)) == sorted(
                incremental.range_search(lo, hi)
            )

    def test_empty_items(self):
        tree = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_single_item(self):
        tree = make_tree()
        tree.bulk_load([(1.0, payload(0))])
        assert tree.search(1.0) == [payload(0)]
        check_tree(tree)

    def test_requires_sorted(self):
        tree = make_tree()
        with pytest.raises(ValueError, match="sorted"):
            tree.bulk_load([(2.0, payload(0)), (1.0, payload(1))])

    def test_requires_empty_tree(self):
        tree = make_tree()
        tree.insert(1.0, payload(0))
        with pytest.raises(ValueError, match="empty"):
            tree.bulk_load([(1.0, payload(0))])

    def test_fill_factor(self):
        items = [(float(i), payload(i)) for i in range(2000)]
        packed = make_tree()
        packed.bulk_load(items, fill_factor=1.0)
        loose = make_tree()
        loose.bulk_load(items, fill_factor=0.5)
        # Half-full leaves need roughly twice the pages.
        assert loose.buffer_pool.pager.num_pages > packed.buffer_pool.pager.num_pages
        check_tree(loose)
        assert list(loose.iter_entries()) == items

    def test_invalid_fill_factor(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([], fill_factor=0.0)
        with pytest.raises(ValueError):
            tree.bulk_load([], fill_factor=1.5)

    def test_wrong_payload_size(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.bulk_load([(1.0, b"no")])


class TestPersistence:
    def test_reopen(self, tmp_path):
        path = str(tmp_path / "tree.pages")
        pager = Pager(path)
        tree = BPlusTree.create(BufferPool(pager, capacity=16), payload_size=8)
        for i in range(800):
            tree.insert(float(i), payload(i))
        tree.flush()
        pager.sync()
        pager.close()

        pager2 = Pager(path)
        tree2 = BPlusTree.open(BufferPool(pager2, capacity=16))
        assert tree2.num_entries == 800
        assert tree2.payload_size == 8
        check_tree(tree2)
        assert tree2.search(500.0) == [payload(500)]
        pager2.close()

    def test_open_rejects_garbage(self):
        pool = BufferPool(Pager(), capacity=4)
        pool.allocate()
        with pytest.raises(ValueError):
            BPlusTree.open(pool)

    def test_open_rejects_empty(self):
        pool = BufferPool(Pager(), capacity=4)
        with pytest.raises(ValueError):
            BPlusTree.open(pool)


class TestChecker:
    def test_detects_corrupted_order(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(float(i), payload(i))
        # Corrupt the leaf in place: swap two keys.
        leaf = tree._load_leaf(tree._root)
        leaf.keys[0], leaf.keys[-1] = leaf.keys[-1], leaf.keys[0]
        leaf.save()
        with pytest.raises(AssertionError):
            check_tree(tree)

    def test_detects_wrong_count(self):
        tree = make_tree()
        tree.insert(1.0, payload(0))
        tree._num_entries = 5
        with pytest.raises(AssertionError, match="num_entries"):
            check_tree(tree)


class TestBulkLoadEdgeCases:
    def test_single_child_internal_group(self):
        """A low fill factor makes internal nodes tiny; when the child
        count is 1 mod (capacity+1) the last internal node has a single
        child and zero keys — still a valid, searchable structure."""
        tree = make_tree()
        # fill_factor -> 2 entries/leaf, 2 keys (3 children) per internal.
        items = [(float(i), payload(i)) for i in range(14)]  # 7 leaves
        tree.bulk_load(items, fill_factor=0.009)
        check_tree(tree)
        for key, value in items:
            assert tree.search(key) == [value]
        assert [k for k, _ in tree.range_search(3.0, 11.0)] == [
            float(i) for i in range(3, 12)
        ]

    def test_exact_capacity_boundary(self):
        tree = make_tree()
        cap = leaf_capacity(8)
        items = [(float(i), payload(i)) for i in range(cap)]
        tree.bulk_load(items)
        check_tree(tree)
        assert tree.height == 1  # exactly one full leaf

    def test_one_over_capacity(self):
        tree = make_tree()
        cap = leaf_capacity(8)
        items = [(float(i), payload(i)) for i in range(cap + 1)]
        tree.bulk_load(items)
        check_tree(tree)
        assert tree.height == 2


class TestKeyBounds:
    """key_bounds() — the shard router's pruning metadata."""

    def test_empty_tree(self):
        assert make_tree().key_bounds() is None

    def test_tracks_min_and_max(self):
        tree = make_tree()
        for i in [7, 3, 11, 1, 9]:
            tree.insert(float(i), payload(i))
        assert tree.key_bounds() == (1.0, 11.0)
        tree.insert(0.5, payload(50))
        tree.insert(20.0, payload(51))
        assert tree.key_bounds() == (0.5, 20.0)

    def test_many_keys_multi_level(self):
        tree = make_tree(capacity=128)
        for i in range(500):
            tree.insert(float((i * 37) % 500), payload(i))
        assert tree.key_bounds() == (0.0, 499.0)

    def test_survives_lazy_deletion_of_extremes(self):
        # Lazy deletion can empty the edge leaves entirely; the bounds
        # walk must skip them instead of reporting stale keys.
        tree = make_tree(capacity=128)
        for i in range(200):
            tree.insert(float(i), payload(i))
        for i in list(range(0, 40)) + list(range(160, 200)):
            assert tree.delete(float(i), payload(i)) == 1
        assert tree.key_bounds() == (40.0, 159.0)

    def test_delete_everything(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(float(i), payload(i))
        for i in range(10):
            tree.delete(float(i), payload(i))
        assert tree.key_bounds() is None

    def test_charges_counters(self):
        from repro.utils.counters import CostCounters

        tree = make_tree(capacity=128)
        for i in range(300):
            tree.insert(float(i), payload(i))
        counters = CostCounters()
        tree.key_bounds(counters=counters)
        assert counters.page_requests > 0
