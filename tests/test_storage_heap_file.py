"""Tests for repro.storage.heap_file."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.heap_file import HeapFile, RecordId
from repro.storage.page import PAGE_CONTENT_SIZE
from repro.storage.pager import Pager


def make_heap(record_size=32, capacity=8, path=None):
    pool = BufferPool(Pager(path), capacity=capacity)
    return HeapFile.create(pool, record_size)


def record(i: int, size: int = 32) -> bytes:
    return bytes([i % 256]) * size


class TestHeapFile:
    def test_append_read_round_trip(self):
        heap = make_heap()
        rids = [heap.append(record(i)) for i in range(10)]
        for i, rid in enumerate(rids):
            assert heap.read(rid) == record(i)

    def test_direct_construction_rejected(self):
        pool = BufferPool(Pager(), capacity=4)
        with pytest.raises(RuntimeError):
            HeapFile(pool, 32)

    def test_slots_per_page(self):
        heap = make_heap(record_size=100)
        assert heap.slots_per_page == (PAGE_CONTENT_SIZE - 2) // 100

    def test_page_rollover(self):
        heap = make_heap(record_size=2000)  # 2 per page
        rids = [heap.append(record(i, 2000)) for i in range(5)]
        assert rids[0].page_id == rids[1].page_id
        assert rids[2].page_id == rids[1].page_id + 1
        assert heap.num_data_pages == 3

    def test_scan_order_and_completeness(self):
        heap = make_heap()
        expected = [record(i) for i in range(300)]
        for payload in expected:
            heap.append(payload)
        scanned = [payload for _, payload in heap.scan()]
        assert scanned == expected

    def test_scan_empty(self):
        heap = make_heap()
        assert list(heap.scan()) == []
        assert heap.num_data_pages == 0

    def test_read_batch_order_preserved(self):
        heap = make_heap()
        rids = [heap.append(record(i)) for i in range(50)]
        shuffled = [rids[i] for i in (40, 3, 17, 3, 0, 49)]
        got = heap.read_batch(shuffled)
        assert got == [record(i) for i in (40, 3, 17, 3, 0, 49)]

    def test_read_batch_counts_distinct_pages_once(self):
        heap = make_heap(record_size=400)  # ~10 per page
        rids = [heap.append(record(i, 400)) for i in range(30)]
        heap.buffer_pool.clear()
        heap.buffer_pool.reset_counters()
        same_page = [r for r in rids if r.page_id == rids[0].page_id]
        heap.read_batch(same_page)
        assert heap.buffer_pool.requests == 1

    def test_read_batch_empty(self):
        heap = make_heap()
        assert heap.read_batch([]) == []

    def test_len_and_num_records(self):
        heap = make_heap()
        for i in range(7):
            heap.append(record(i))
        assert len(heap) == 7
        assert heap.num_records == 7

    def test_wrong_payload_size(self):
        heap = make_heap()
        with pytest.raises(ValueError):
            heap.append(b"short")

    def test_invalid_record_id(self):
        heap = make_heap()
        heap.append(record(0))
        with pytest.raises(ValueError):
            heap.read(RecordId(page_id=99, slot=0))
        with pytest.raises(ValueError):
            heap.read(RecordId(page_id=1, slot=9999))
        with pytest.raises(TypeError):
            heap.read((1, 0))

    def test_create_requires_empty_pager(self):
        pool = BufferPool(Pager(), capacity=4)
        pool.allocate()
        with pytest.raises(ValueError):
            HeapFile.create(pool, 32)

    def test_invalid_record_size(self):
        pool = BufferPool(Pager(), capacity=4)
        with pytest.raises(ValueError):
            HeapFile.create(pool, 0)
        with pytest.raises(ValueError):
            HeapFile.create(pool, PAGE_CONTENT_SIZE)

    def test_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "heap.pages")
        pager = Pager(path)
        pool = BufferPool(pager, capacity=4)
        heap = HeapFile.create(pool, 64)
        rids = [heap.append(record(i, 64)) for i in range(20)]
        heap.flush()
        pager.sync()
        pager.close()

        pager2 = Pager(path)
        pool2 = BufferPool(pager2, capacity=4)
        heap2 = HeapFile.open(pool2)
        assert heap2.num_records == 20
        assert heap2.record_size == 64
        for i, rid in enumerate(rids):
            assert heap2.read(rid) == record(i, 64)
        pager2.close()

    def test_open_rejects_non_heap(self):
        pool = BufferPool(Pager(), capacity=4)
        pool.allocate()  # garbage page 0
        with pytest.raises(ValueError):
            HeapFile.open(pool)

    def test_open_rejects_empty_pager(self):
        pool = BufferPool(Pager(), capacity=4)
        with pytest.raises(ValueError):
            HeapFile.open(pool)


class TestHeapVerify:
    def test_clean_heap_verifies(self):
        heap = make_heap()
        for i in range(100):
            heap.append(record(i))
        assert heap.verify() == []

    def test_empty_heap_verifies(self):
        assert make_heap().verify() == []

    def test_bad_magic_reported(self):
        heap = make_heap()
        heap.append(record(0))
        meta = heap.buffer_pool.fetch(0)
        meta.data[0] ^= 0xFF
        meta.mark_dirty()
        assert any("magic" in v for v in heap.verify())

    def test_bad_slot_count_reported(self):
        heap = make_heap()
        for i in range(5):
            heap.append(record(i))
        page = heap.buffer_pool.fetch(1)
        page.data[0:2] = (99).to_bytes(2, "little")
        page.mark_dirty()
        violations = heap.verify()
        assert any("slot count" in v for v in violations)

    def test_record_count_mismatch_reported(self):
        heap = make_heap()
        for i in range(5):
            heap.append(record(i))
        heap._num_records = 4  # simulate lost meta update
        assert any("slot count" in v or "num_records" in v for v in heap.verify())
