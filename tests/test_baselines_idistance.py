"""Tests for the multi-reference iDistance comparator."""

import numpy as np
import pytest

from repro.baselines.idistance import MultiRefIndex


class TestMultiRefIndex:
    def test_results_match_vitri_index(self, small_index, small_summaries):
        multi = MultiRefIndex(small_index, num_partitions=4, seed=0)
        for query_id in range(0, len(small_summaries), 3):
            query = small_summaries[query_id]
            a = multi.knn(query, 8, cold=True)
            b = small_index.knn(query, 8, cold=True)
            assert a.videos == b.videos, f"query {query_id}"
            assert np.allclose(a.scores, b.scores)

    def test_entry_count(self, small_index):
        multi = MultiRefIndex(small_index, num_partitions=3)
        assert multi.num_vitris == small_index.num_vitris

    def test_partitions_clamped(self, small_index):
        multi = MultiRefIndex(small_index, num_partitions=10_000)
        assert multi.num_partitions <= small_index.num_vitris

    def test_single_partition_degenerates_to_idistance(
        self, small_index, small_summaries
    ):
        multi = MultiRefIndex(small_index, num_partitions=1)
        result = multi.knn(small_summaries[0], 5, cold=True)
        expected = small_index.knn(small_summaries[0], 5, cold=True)
        assert result.videos == expected.videos

    def test_key_bands_disjoint(self, small_index):
        multi = MultiRefIndex(small_index, num_partitions=4, seed=1)
        keys = [key for key, _ in multi.btree.iter_entries()]
        partitions = [int(key // multi._separation) for key in keys]
        offsets = [key % multi._separation for key in keys]
        assert all(0 <= p < multi.num_partitions for p in partitions)
        assert all(
            offset <= multi._partition_radii[partition] + 1e-9
            for offset, partition in zip(offsets, partitions)
        )

    def test_stats_populated(self, small_index, small_summaries):
        multi = MultiRefIndex(small_index, num_partitions=4)
        stats = multi.knn(small_summaries[0], 5, cold=True).stats
        assert stats.page_requests > 0
        assert stats.ranges >= 1

    def test_deterministic_with_seed(self, small_index, small_summaries):
        a = MultiRefIndex(small_index, num_partitions=4, seed=7)
        b = MultiRefIndex(small_index, num_partitions=4, seed=7)
        ra = a.knn(small_summaries[2], 6, cold=True)
        rb = b.knn(small_summaries[2], 6, cold=True)
        assert ra.videos == rb.videos
        assert ra.stats.page_requests == rb.stats.page_requests

    def test_invalid_arguments(self, small_index, small_summaries):
        with pytest.raises(TypeError):
            MultiRefIndex("nope")
        with pytest.raises(ValueError):
            MultiRefIndex(small_index, num_partitions=0)
        multi = MultiRefIndex(small_index, num_partitions=2)
        with pytest.raises(ValueError):
            multi.knn(small_summaries[0], 0)
        with pytest.raises(TypeError):
            multi.knn("x", 5)
