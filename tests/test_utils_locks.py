"""Unit tests for the runtime lock-order validator (repro.utils.locks)."""

import threading

import pytest

from repro.utils.locks import (
    LockOrderGraph,
    LockOrderViolation,
    TrackedRLock,
    make_lock,
    tracking_enabled,
)


@pytest.fixture()
def graph():
    return LockOrderGraph()


class TestLockOrderGraph:
    def test_records_edges(self, graph):
        graph.record("A", "B")
        graph.record("B", "C")
        assert graph.edges() == {("A", "B"), ("B", "C")}

    def test_self_edge_ignored(self, graph):
        graph.record("A", "A")
        assert graph.edges() == set()

    def test_direct_inversion_raises(self, graph):
        graph.record("A", "B")
        with pytest.raises(LockOrderViolation, match="inverts"):
            graph.record("B", "A")

    def test_transitive_inversion_raises(self, graph):
        graph.record("A", "B")
        graph.record("B", "C")
        with pytest.raises(LockOrderViolation):
            graph.record("C", "A")

    def test_violation_leaves_graph_unchanged(self, graph):
        graph.record("A", "B")
        with pytest.raises(LockOrderViolation):
            graph.record("B", "A")
        assert graph.edges() == {("A", "B")}

    def test_reset(self, graph):
        graph.record("A", "B")
        graph.reset()
        assert graph.edges() == set()
        graph.record("B", "A")  # no longer an inversion
        assert graph.edges() == {("B", "A")}

    def test_to_dot_stable(self, graph):
        graph.record("B", "C")
        graph.record("A", "B")
        assert graph.to_dot() == (
            'digraph lock_order {\n  "A" -> "B";\n  "B" -> "C";\n}\n'
        )


class TestTrackedRLock:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            TrackedRLock("")

    def test_nested_acquisition_records_edge(self, graph):
        outer = TrackedRLock("Outer._lock", graph)
        inner = TrackedRLock("Inner._lock", graph)
        with outer:
            with inner:
                pass
        assert graph.edges() == {("Outer._lock", "Inner._lock")}

    def test_reentrant_acquisition_records_nothing(self, graph):
        lock = TrackedRLock("Outer._lock", graph)
        with lock:
            with lock:
                pass
        assert graph.edges() == set()

    def test_same_name_instances_record_no_self_edge(self, graph):
        # Class-level nodes: two Pager._lock instances are one node.
        first = TrackedRLock("Pager._lock", graph)
        second = TrackedRLock("Pager._lock", graph)
        with first:
            with second:
                pass
        assert graph.edges() == set()

    def test_inversion_raises_before_blocking(self, graph):
        a = TrackedRLock("A._lock", graph)
        b = TrackedRLock("B._lock", graph)
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation):
                a.acquire()

    def test_held_stack_is_per_thread(self, graph):
        a = TrackedRLock("A._lock", graph)
        b = TrackedRLock("B._lock", graph)
        done = threading.Event()

        def other():
            with b:
                pass
            done.set()

        with a:
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert done.is_set()
        # The other thread held nothing of this thread's stack: no edge.
        assert graph.edges() == set()

    def test_release_out_of_order_tolerated(self, graph):
        a = TrackedRLock("A._lock", graph)
        b = TrackedRLock("B._lock", graph)
        a.acquire()
        b.acquire()
        a.release()
        b.release()
        assert graph.edges() == {("A._lock", "B._lock")}

    def test_repr_names_the_lock(self):
        assert "Pager._lock" in repr(TrackedRLock("Pager._lock"))


class TestMakeLock:
    def test_plain_rlock_when_untracked(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACK_LOCKS", raising=False)
        assert not tracking_enabled()
        lock = make_lock("X._lock")
        assert not isinstance(lock, TrackedRLock)
        with lock:  # still a context-manager re-entrant lock
            with lock:
                pass

    def test_tracked_when_env_set(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACK_LOCKS", "1")
        assert tracking_enabled()
        lock = make_lock("X._lock")
        assert isinstance(lock, TrackedRLock)
        assert lock.name == "X._lock"
