"""Tests for exact streaming moments (repro.pca.incremental)."""

import numpy as np
import pytest

from repro.pca import PCA, IncrementalMoments, principal_angle


class TestIncrementalMoments:
    def test_matches_batch_covariance(self, rng):
        data = rng.normal(0, 2, (300, 5))
        moments = IncrementalMoments(5)
        for start in range(0, 300, 37):  # uneven batches
            moments.update(data[start : start + 37])
        assert moments.count == 300
        assert np.allclose(moments.mean, data.mean(axis=0), atol=1e-10)
        centred = data - data.mean(axis=0)
        expected = centred.T @ centred / 300
        assert np.allclose(moments.covariance(), expected, atol=1e-10)

    def test_single_point_batches(self, rng):
        data = rng.normal(0, 1, (50, 3))
        moments = IncrementalMoments(3)
        for row in data:
            moments.update(row[None, :])
        assert np.allclose(moments.mean, data.mean(axis=0), atol=1e-10)

    def test_first_component_matches_pca(self, rng):
        direction = rng.normal(0, 1, 6)
        direction /= np.linalg.norm(direction)
        data = (
            rng.normal(0, 3, 400)[:, None] * direction[None, :]
            + rng.normal(0, 0.1, (400, 6))
        )
        moments = IncrementalMoments(6)
        moments.update(data)
        batch = PCA(n_components=1).fit(data).first_component
        assert principal_angle(moments.first_component(), batch) < 1e-6

    def test_downdate_exact(self, rng):
        data = rng.normal(0, 1, (120, 4))
        moments = IncrementalMoments(4)
        moments.update(data)
        moments.downdate(data[80:])
        kept = data[:80]
        assert moments.count == 80
        assert np.allclose(moments.mean, kept.mean(axis=0), atol=1e-9)
        centred = kept - kept.mean(axis=0)
        assert np.allclose(
            moments.covariance(), centred.T @ centred / 80, atol=1e-9
        )

    def test_downdate_to_empty(self, rng):
        data = rng.normal(0, 1, (10, 3))
        moments = IncrementalMoments(3)
        moments.update(data)
        moments.downdate(data)
        assert moments.count == 0
        with pytest.raises(RuntimeError):
            moments.covariance()

    def test_downdate_more_than_present(self):
        moments = IncrementalMoments(2)
        moments.update(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            moments.downdate(np.zeros((4, 2)))

    def test_update_then_downdate_round_trip(self, rng):
        base = rng.normal(0, 1, (60, 3))
        extra = rng.normal(5, 2, (25, 3))
        moments = IncrementalMoments(3)
        moments.update(base)
        before_mean = moments.mean
        before_cov = moments.covariance()
        moments.update(extra)
        moments.downdate(extra)
        assert np.allclose(moments.mean, before_mean, atol=1e-9)
        assert np.allclose(moments.covariance(), before_cov, atol=1e-8)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            IncrementalMoments(0)
        moments = IncrementalMoments(3)
        with pytest.raises(ValueError):
            moments.update(np.zeros((2, 4)))

    def test_empty_moments_raise(self):
        moments = IncrementalMoments(2)
        with pytest.raises(RuntimeError):
            moments.covariance()
