"""Tests for repro.replication (WAL shipping, replicas, replica sets).

The protocol tests pin the sealed-segment stream: every commit seals
exactly one segment, tokens form a hash chain over index states, and a
snapshot lands a replica at an exact verified ``(seq, token)``.  The
serving tests pin the routing contract the router relies on: affinity
keeps a video's queries on one home copy, attempt ordinals walk hedges
to *different* copies, breaker-tripped replicas fall back to the
primary, and — the one invariant everything else leans on — every copy
answers every query bit-identically to the primary.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.core.summarize import summarize_video
from repro.replication import (
    EMPTY_TOKEN,
    NEEDS_BOOTSTRAP,
    SYNCED,
    ReplicaSet,
    ReplicaShard,
    ReplicaUnavailable,
    SealedSegment,
    SegmentFrameError,
    SegmentLog,
    WalShipper,
    decode_segment,
    encode_segment,
    iter_segments,
    verify_segment_chain,
)
from repro.replication.shipper import database_token
from repro.shard.resilience import BreakerPolicy
from repro.shard.shard import Shard
from repro.utils.clock import VirtualClock

EPSILON = 0.3


def make_summaries(count: int = 12, *, seed: int = 7, dim: int = 8):
    config = DatasetConfig(
        dim=dim,
        num_families=3,
        family_size=3,
        num_distractors=max(count - 9, 1),
    )
    dataset = generate_dataset(config, seed=seed)
    return [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(min(count, dataset.num_videos))
    ]


def make_primary(path, summaries, **kwargs) -> Shard:
    shard = Shard(0, epsilon=EPSILON, path=str(path), **kwargs)
    for summary in summaries:
        shard.add_summary(summary)
    shard.checkpoint()
    return shard


class TestSegmentFrame:
    def test_round_trip(self):
        segment = SealedSegment(
            seq=3, base_token="ab" * 16, after_token="cd" * 16, payload=b"xyz"
        )
        assert decode_segment(encode_segment(segment)) == segment

    def test_rejects_bad_tokens_and_seq(self):
        with pytest.raises(ValueError):
            SealedSegment(
                seq=-1, base_token="0" * 32, after_token="0" * 32, payload=b""
            )
        with pytest.raises(ValueError):
            SealedSegment(
                seq=0, base_token="zz" * 16, after_token="0" * 32, payload=b""
            )
        with pytest.raises(ValueError):
            SealedSegment(
                seq=0, base_token="short", after_token="0" * 32, payload=b""
            )


class TestSegmentChainVerify:
    """Structural chain verification — what `repro-video check --segments`
    runs over a persisted segment log."""

    @staticmethod
    def make_chain(tokens, *, first_seq=1):
        segments = []
        for offset, (base, after) in enumerate(zip(tokens, tokens[1:])):
            segments.append(
                SealedSegment(
                    seq=first_seq + offset,
                    base_token=base,
                    after_token=after,
                    payload=bytes([offset]),
                )
            )
        return segments

    def test_valid_chain_summary(self):
        tokens = ["aa" * 16, "bb" * 16, "cc" * 16, "dd" * 16]
        raw = b"".join(
            encode_segment(s) for s in self.make_chain(tokens, first_seq=4)
        )
        assert verify_segment_chain(raw) == {
            "segments": 3,
            "first_seq": 4,
            "last_seq": 6,
            "base_token": tokens[0],
            "after_token": tokens[-1],
        }

    def test_empty_stream_is_a_valid_zero_chain(self):
        summary = verify_segment_chain(b"")
        assert summary["segments"] == 0
        assert summary["base_token"] is None

    def test_sequence_gap_raises(self):
        tokens = ["aa" * 16, "bb" * 16, "cc" * 16]
        first, second = self.make_chain(tokens)
        skipped = SealedSegment(
            seq=second.seq + 1,  # gap: 1 then 3
            base_token=second.base_token,
            after_token=second.after_token,
            payload=second.payload,
        )
        raw = encode_segment(first) + encode_segment(skipped)
        with pytest.raises(SegmentFrameError, match="sequence gap"):
            verify_segment_chain(raw)

    def test_broken_hash_chain_raises(self):
        tokens = ["aa" * 16, "bb" * 16, "cc" * 16]
        first, second = self.make_chain(tokens)
        forked = SealedSegment(
            seq=second.seq,
            base_token="ee" * 16,  # does not match first.after_token
            after_token=second.after_token,
            payload=second.payload,
        )
        raw = encode_segment(first) + encode_segment(forked)
        with pytest.raises(SegmentFrameError, match="hash chain broken"):
            verify_segment_chain(raw)

    def test_truncated_tail_raises(self):
        tokens = ["aa" * 16, "bb" * 16, "cc" * 16]
        first, second = self.make_chain(tokens)
        raw = encode_segment(first) + encode_segment(second)[:-3]
        with pytest.raises(SegmentFrameError, match="truncated"):
            verify_segment_chain(raw)
        # iter_segments reports the same defect lazily.
        chunks = iter_segments(raw)
        assert next(chunks).seq == first.seq
        with pytest.raises(SegmentFrameError):
            next(chunks)


class TestSegmentLog:
    def test_since_returns_suffix_in_order(self):
        log = SegmentLog()
        for seq in (1, 2, 3):
            log.append(seq, bytes([seq]))
        assert log.since(0) == [b"\x01", b"\x02", b"\x03"]
        assert log.since(2) == [b"\x03"]
        assert log.since(3) == []
        assert log.latest_seq == 3

    def test_truncated_history_returns_none(self):
        log = SegmentLog(retain=2)
        for seq in (1, 2, 3, 4):
            log.append(seq, bytes([seq]))
        assert len(log) == 2
        # A replica at seq 1 needs segment 2, which was truncated away.
        assert log.since(1) is None
        assert log.since(2) == [b"\x03", b"\x04"]

    def test_rejects_non_ascending_seq(self):
        log = SegmentLog()
        log.append(5, b"x")
        with pytest.raises(ValueError, match="not after"):
            log.append(5, b"y")


class TestWalShipper:
    def test_every_commit_seals_one_chained_segment(self, tmp_path):
        summaries = make_summaries()
        primary = make_primary(tmp_path / "primary", summaries[:6])
        clock = VirtualClock()
        shipper = WalShipper(primary, clock=clock)
        assert shipper.seq == 0
        base = shipper.token
        assert base == database_token(primary.database)

        primary.add_summary(summaries[6])
        primary.checkpoint()
        primary.add_summary(summaries[7])
        primary.checkpoint()
        assert shipper.seq == len(shipper.log)

        # The stream is a hash chain: each base is the previous after.
        token = base
        for encoded in shipper.segments_since(0):
            segment = decode_segment(encoded)
            assert segment.base_token == token
            token = segment.after_token
        assert token == shipper.token
        assert token == database_token(primary.database)
        primary.close()

    def test_snapshot_checkpoints_for_an_exact_seq(self, tmp_path):
        summaries = make_summaries()
        primary = make_primary(tmp_path / "primary", summaries[:6])
        shipper = WalShipper(primary, clock=VirtualClock())
        primary.add_summary(summaries[6])  # uncheckpointed tail
        snapshot = shipper.snapshot()
        # The cut sealed the pending work, so the image is current.
        assert snapshot.seq == shipper.seq
        assert snapshot.token == shipper.token
        assert snapshot.files["index.btree"]
        assert snapshot.files["db.json"]
        primary.close()

    def test_requires_durable_primary(self):
        shard = Shard(0, epsilon=EPSILON)  # in-memory
        with pytest.raises(ValueError, match="durable"):
            WalShipper(shard, clock=VirtualClock())


class TestReplicaShard:
    def test_bootstrap_restores_exact_state(self, tmp_path):
        summaries = make_summaries()
        primary = make_primary(tmp_path / "primary", summaries)
        shipper = WalShipper(primary, clock=VirtualClock())
        replica = ReplicaShard(
            0, tmp_path / "replica", epsilon=EPSILON, clock=VirtualClock()
        )
        assert replica.state == NEEDS_BOOTSTRAP
        with pytest.raises(ReplicaUnavailable):
            replica.knn(summaries[0], 3)

        replica.bootstrap(shipper.snapshot())
        assert replica.state == SYNCED
        assert replica.applied_seq == shipper.seq
        assert replica.token == shipper.token
        assert replica.video_ids() == primary.video_ids()

        want = primary.knn(summaries[0], 3)
        got = replica.knn(summaries[0], 3)
        assert got.videos == want.videos
        assert got.scores == want.scores
        primary.close()
        replica.close()

    def test_apply_segment_advances_seq_and_token(self, tmp_path):
        summaries = make_summaries()
        primary = make_primary(tmp_path / "primary", summaries[:8])
        shipper = WalShipper(primary, clock=VirtualClock())
        replica = ReplicaShard(
            0, tmp_path / "replica", epsilon=EPSILON, clock=VirtualClock()
        )
        replica.bootstrap(shipper.snapshot())
        baseline_seq = replica.applied_seq

        primary.add_summary(summaries[8])
        primary.checkpoint()
        pending = shipper.segments_since(baseline_seq)
        assert pending
        for encoded in pending:
            assert replica.apply_segment(encoded)
        assert replica.state == SYNCED
        assert replica.applied_seq == shipper.seq
        assert replica.token == shipper.token
        assert replica.token == database_token(primary.database)
        assert replica.video_ids() == primary.video_ids()
        assert replica.segments_applied == len(pending)
        primary.close()
        replica.close()


class TestReplicaSet:
    def make_group(self, tmp_path, summaries, replicas=2, **kwargs):
        clock = VirtualClock()
        primary = make_primary(tmp_path / "primary", summaries)
        group = ReplicaSet(primary, clock=clock, **kwargs)
        for index in range(replicas):
            group.attach_replica(
                ReplicaShard(
                    0,
                    tmp_path / f"replica-{index}",
                    epsilon=EPSILON,
                    clock=clock,
                )
            )
        return group, clock

    def test_attach_bootstraps_to_current_state(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries)
        status = group.replication_status()
        assert len(status["replicas"]) == 2
        for replica in status["replicas"]:
            assert replica["state"] == SYNCED
            assert replica["token"] == status["shipper_token"]
        group.close()

    def test_write_then_sync_catches_replicas_up(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries[:9])
        group.add_summary(summaries[9])
        group.checkpoint()
        tally = group.sync()
        assert tally["applied"] > 0
        assert tally["bootstrapped"] == 0
        for replica in group.replicas:
            assert replica.state == SYNCED
            assert replica.token == group.shipper.token
            assert replica.video_ids() == group.primary.video_ids()
        group.close()

    def test_truncated_log_forces_rebootstrap(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries[:8], retain=1)
        # Two checkpointed writes truncate the suffix the replicas need.
        for summary in summaries[8:10]:
            group.add_summary(summary)
            group.checkpoint()
        tally = group.sync()
        assert tally["bootstrapped"] == 2
        for replica in group.replicas:
            assert replica.state == SYNCED
            assert replica.token == group.shipper.token
        group.close()

    def test_affinity_keeps_a_video_on_one_copy(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries)
        for query in summaries:
            key = query.video_id
            homes = {
                id(group._admitted(0, key).target) for _ in range(3)
            }
            assert len(homes) == 1, "affinity must be deterministic"
        # The pool has 3 copies; a spread of keys must use more than one.
        used = {
            id(group._admitted(0, query.video_id).target)
            for query in summaries
        }
        assert len(used) > 1, "affinity must spread keys over copies"
        group.close()

    def test_attempt_ordinals_walk_distinct_copies(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries)
        key = summaries[0].video_id
        targets = {
            id(group._admitted(attempt, key).target) for attempt in range(3)
        }
        assert len(targets) == 3, "hedges must reach different copies"
        group.close()

    def test_all_replicas_tripped_falls_back_to_primary(self, tmp_path):
        summaries = make_summaries()
        policy = BreakerPolicy(min_volume=1, failure_rate=0.5)
        group, clock = self.make_group(
            tmp_path, summaries, breaker_policy=policy
        )
        for copy in group._replicas:
            copy.breaker.record(False, clock.now())
            assert not copy.breaker.allow(clock.now())
        before = group.fallbacks_to_primary
        result = group.knn(summaries[0], 3)
        assert result.videos  # served by the primary
        assert group.fallbacks_to_primary == before + 1
        group.close()

    def test_rankings_bit_identical_on_every_copy(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries)
        for query in summaries:
            want = group.primary.knn(query, 4)
            for attempt in range(3):  # walks all three copies
                got = group.knn(query, 4, attempt=attempt)
                assert got.videos == want.videos
                assert got.scores == want.scores
        group.close()

    def test_warm_on_attach_transfers_hot_ranges(self, tmp_path):
        summaries = make_summaries()
        clock = VirtualClock()
        primary = make_primary(
            tmp_path / "primary", summaries, range_cache_size=64
        )
        # Heat the primary's range tier, then attach a cold copy.
        engine = primary.engine()
        for query in summaries[:4]:
            primary.knn(query, 3)
        assert engine.hot_ranges(), "primary should have cached ranges"

        group = ReplicaSet(primary, clock=clock)
        replica = ReplicaShard(
            0,
            tmp_path / "replica",
            epsilon=EPSILON,
            clock=clock,
            range_cache_size=64,
        )
        group.attach_replica(replica)
        warmed = replica.built_engine
        assert warmed is not None
        assert warmed.range_cache_len > 0, "attach must warm the L2 tier"
        # A warmed copy serves a hot query without new range misses.
        misses_before = warmed.range_cache_misses
        got = replica.knn(summaries[0], 3)
        want = primary.knn(summaries[0], 3)
        assert got.videos == want.videos
        assert warmed.range_cache_misses == misses_before
        group.close()

    def test_serving_engines_covers_every_built_copy(self, tmp_path):
        summaries = make_summaries()
        group, _ = self.make_group(tmp_path, summaries)
        for attempt in range(3):
            group.knn(summaries[0], 3, attempt=attempt)
        assert len(group.serving_engines()) == 3
        group.close()


class TestRouterOverReplicaSet:
    """The scatter router serves a ReplicaSet like any shard — strict
    and resilient dispatch paths, telemetry seams, batch serving."""

    @pytest.fixture
    def routed(self, tmp_path):
        from repro.shard.router import ShardedVideoDatabase

        summaries = make_summaries()
        clock = VirtualClock()
        primary = make_primary(tmp_path / "primary", summaries)
        group = ReplicaSet(primary, clock=clock)
        for index in range(2):
            group.attach_replica(
                ReplicaShard(
                    0,
                    tmp_path / f"replica-{index}",
                    epsilon=EPSILON,
                    clock=clock,
                )
            )
        router = ShardedVideoDatabase.from_shards(
            [group], epsilon=EPSILON, clock=clock
        )
        yield router, group, summaries
        router.close()

    def test_strict_and_resilient_paths_agree(self, routed):
        from repro.shard.resilience import FaultPolicy

        router, _, summaries = routed
        for query in summaries[:4]:
            strict = router.knn(query, 4)
            resilient = router.knn(query, 4, fault_policy=FaultPolicy())
            assert strict.videos == resilient.videos
            assert strict.scores == resilient.scores
            strict_range = router.similarity_range(query, 0.5)
            resilient_range = router.similarity_range(
                query, 0.5, fault_policy=FaultPolicy()
            )
            assert strict_range.videos == resilient_range.videos

    def test_router_telemetry_sees_every_copy(self, routed):
        router, group, summaries = routed
        for attempt in range(3):
            group.knn(summaries[0], 3, attempt=attempt)
        hits, misses = router._cache_tallies()
        assert misses > 0
        load = router._shard_load(group)
        assert load.page_requests > 0
        status = router.replication_status()
        assert len(status) == 1
        assert len(status[0]["replicas"]) == 2
        assert all(
            replica["state"] == SYNCED for replica in status[0]["replicas"]
        )

    def test_serve_many_over_a_replica_group(self, routed):
        router, _, summaries = routed
        queries = summaries[:3]
        want = [router.knn(query, 4) for query in queries]
        batch = router.serve_many(queries, 4)
        assert batch.metrics.queries == len(queries)
        for expected, result in zip(want, batch.results):
            assert result.videos == expected.videos
            assert result.scores == expected.scores
