"""Tests for the drift-triggered rebuild policy (paper Section 6.3.3)."""

import numpy as np
import pytest

from repro.core.index import VitriIndex
from repro.core.maintenance import ManagedVitriIndex, RebuildPolicy
from repro.core.vitri import VideoSummary, ViTri

EPSILON = 0.3


def line_summary(video_id, direction, offset, dim=6, count=5):
    """A one-ViTri summary positioned along the given direction."""
    position = offset * np.asarray(direction, dtype=float)
    position = position / max(np.linalg.norm(direction), 1e-12)
    return VideoSummary(
        video_id=video_id,
        vitris=(ViTri(position=position * np.ones(1) if False else position,
                      radius=0.05, count=count),),
    )


def summaries_along(direction, ids, dim=6):
    direction = np.asarray(direction, dtype=float)
    direction = direction / np.linalg.norm(direction)
    out = []
    for i, video_id in enumerate(ids):
        position = (0.1 + 0.2 * i) * direction
        out.append(
            VideoSummary(
                video_id=video_id,
                vitris=(ViTri(position=position, radius=0.05, count=5),),
            )
        )
    return out


class TestRebuildPolicy:
    def test_checks_only_every_n(self, small_summaries):
        index = VitriIndex.build(small_summaries[:10], EPSILON)
        policy = RebuildPolicy(max_angle_degrees=1e-9, check_every=5)
        # The angle threshold is absurdly small so any check fires, but
        # the first four insertions must not check at all.
        results = [policy.should_rebuild(index) for _ in range(4)]
        assert results == [False] * 4

    def test_fires_on_drift(self):
        dim = 6
        x_axis = np.eye(dim)[0]
        y_axis = np.eye(dim)[1]
        base = summaries_along(x_axis, range(10), dim)
        index = VitriIndex.build(base, EPSILON)
        # Insert videos along an orthogonal direction: the first principal
        # component rotates.
        for summary in summaries_along(y_axis, range(100, 140), dim):
            index.insert_video(summary)
        policy = RebuildPolicy(max_angle_degrees=10.0, check_every=1)
        assert policy.should_rebuild(index)

    def test_quiet_without_drift(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        policy = RebuildPolicy(max_angle_degrees=89.0, check_every=1)
        assert not policy.should_rebuild(index)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RebuildPolicy(max_angle_degrees=0.0)
        with pytest.raises(ValueError):
            RebuildPolicy(check_every=0)


class TestManagedVitriIndex:
    def test_forwards_queries(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        managed = ManagedVitriIndex(index)
        direct = index.knn(small_summaries[0], 5)
        via_managed = managed.knn(small_summaries[0], 5)
        assert direct.videos == via_managed.videos

    def test_rebuild_swaps_index(self):
        dim = 6
        x_axis = np.eye(dim)[0]
        y_axis = np.eye(dim)[1]
        index = VitriIndex.build(summaries_along(x_axis, range(8), dim), EPSILON)
        managed = ManagedVitriIndex(
            index, RebuildPolicy(max_angle_degrees=10.0, check_every=1)
        )
        original = managed.index
        rebuilt_any = False
        for summary in summaries_along(y_axis, range(100, 160), dim):
            rebuilt_any |= managed.insert_video(summary)
        assert rebuilt_any
        assert managed.rebuilds >= 1
        assert managed.index is not original
        # Content preserved across the rebuild.
        assert managed.index.num_videos == 8 + 60

    def test_no_rebuild_without_drift(self, small_summaries):
        index = VitriIndex.build(small_summaries[:10], EPSILON)
        managed = ManagedVitriIndex(
            index, RebuildPolicy(max_angle_degrees=89.0, check_every=1)
        )
        for summary in small_summaries[10:]:
            assert not managed.insert_video(summary)
        assert managed.rebuilds == 0

    def test_type_check(self):
        with pytest.raises(TypeError):
            ManagedVitriIndex("not an index")
