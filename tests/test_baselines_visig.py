"""Tests for the video-signature (ViSig) baseline."""

import numpy as np
import pytest

from repro.baselines.visig import VideoSignatureIndex
from repro.utils.counters import CostCounters


class TestVideoSignatureIndex:
    def test_seed_shape(self):
        visig = VideoSignatureIndex(dim=8, num_seeds=5, seed=0)
        assert visig.seeds.shape == (5, 8)
        assert visig.num_seeds == 5

    def test_simplex_seeds_normalised(self):
        visig = VideoSignatureIndex(dim=16, num_seeds=10, seed=0)
        assert np.allclose(visig.seeds.sum(axis=1), 1.0)

    def test_cube_seeds(self):
        visig = VideoSignatureIndex(dim=4, num_seeds=3, seed=0, simplex_seeds=False)
        assert ((visig.seeds >= 0) & (visig.seeds <= 1)).all()

    def test_summary_picks_closest_frames(self, rng):
        visig = VideoSignatureIndex(dim=4, num_seeds=3, seed=1)
        frames = rng.uniform(0, 1, (30, 4))
        signature = visig.summarize(7, frames)
        assert signature.video_id == 7
        assert signature.num_frames == 30
        for s in range(3):
            distances = np.linalg.norm(frames - visig.seeds[s], axis=1)
            closest = frames[np.argmin(distances)]
            assert np.allclose(signature.assigned[s], closest)

    def test_identical_videos_full_similarity(self, rng):
        visig = VideoSignatureIndex(dim=4, num_seeds=8, seed=2)
        frames = rng.uniform(0, 1, (25, 4))
        a = visig.summarize(0, frames)
        b = visig.summarize(1, frames.copy())
        assert visig.similarity(a, b, 0.01) == pytest.approx(1.0)

    def test_disjoint_videos_zero(self, rng):
        visig = VideoSignatureIndex(dim=4, num_seeds=6, seed=3)
        a = visig.summarize(0, np.zeros((5, 4)))
        b = visig.summarize(1, np.full((5, 4), 3.0))
        assert visig.similarity(a, b, 0.5) == 0.0

    def test_similarity_is_fraction_of_seeds(self, rng):
        visig = VideoSignatureIndex(dim=2, num_seeds=4, seed=4, simplex_seeds=False)
        frames_a = np.array([[0.0, 0.0]])
        frames_b = np.array([[0.0, 0.05]])
        a = visig.summarize(0, frames_a)
        b = visig.summarize(1, frames_b)
        # Every seed maps to the single frame; all within eps.
        assert visig.similarity(a, b, 0.1) == pytest.approx(1.0)

    def test_counters(self, rng):
        visig = VideoSignatureIndex(dim=3, num_seeds=5, seed=5)
        a = visig.summarize(0, rng.uniform(0, 1, (10, 3)))
        b = visig.summarize(1, rng.uniform(0, 1, (10, 3)))
        counters = CostCounters()
        visig.similarity(a, b, 0.3, counters)
        assert counters.distance_computations == 5

    def test_seed_set_mismatch_rejected(self, rng):
        visig5 = VideoSignatureIndex(dim=3, num_seeds=5, seed=0)
        visig7 = VideoSignatureIndex(dim=3, num_seeds=7, seed=0)
        a = visig5.summarize(0, rng.uniform(0, 1, (10, 3)))
        b = visig7.summarize(1, rng.uniform(0, 1, (10, 3)))
        with pytest.raises(ValueError):
            visig7.similarity(a, b, 0.3)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            VideoSignatureIndex(dim=0)
        with pytest.raises(ValueError):
            VideoSignatureIndex(dim=3, num_seeds=0)

    def test_deterministic(self, rng):
        a = VideoSignatureIndex(dim=4, num_seeds=3, seed=9).seeds
        b = VideoSignatureIndex(dim=4, num_seeds=3, seed=9).seeds
        assert np.array_equal(a, b)
