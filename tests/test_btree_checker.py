"""Tests for the B+-tree checker itself: each invariant it promises to
enforce is deliberately violated, and the checker must name the problem.

A checker that silently passes corrupt trees would invalidate every test
that relies on it (the stateful machines, the crash sweeps), so each
corruption here is written straight into the page bytes the way a real
bug or torn write would leave them.
"""

import pytest

from repro.btree.checker import check_tree
from repro.btree.node import (
    NO_LEAF,
    NODE_INTERNAL,
    InternalNode,
    LeafNode,
    node_type_of,
)
from repro.btree.tree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

PAYLOAD_SIZE = 512  # leaf capacity 7: a handful of inserts forces splits


def _build(num_keys: int = 20) -> BPlusTree:
    pool = BufferPool(Pager(), capacity=64)
    tree = BPlusTree.create(pool, payload_size=PAYLOAD_SIZE)
    for i in range(num_keys):
        tree.insert(float(i), bytes([i % 256]) * PAYLOAD_SIZE)
    return tree


def _leftmost_leaf_id(tree: BPlusTree) -> int:
    page_id = tree._root
    pool = tree.buffer_pool
    while node_type_of(pool.fetch(page_id)) == NODE_INTERNAL:
        page_id = InternalNode.load(pool.fetch(page_id)).children[0]
    return page_id


class TestCheckerCatchesCorruption:
    def test_clean_tree_passes(self):
        check_tree(_build())

    def test_bad_page_checksum_reported(self, tmp_path):
        path = tmp_path / "t.pages"
        pager = Pager(path, wal=False)
        pool = BufferPool(pager, capacity=64)
        tree = BPlusTree.create(pool, payload_size=PAYLOAD_SIZE)
        for i in range(20):
            tree.insert(float(i), bytes([i % 256]) * PAYLOAD_SIZE)
        tree.flush()
        pager.close()

        raw = bytearray(path.read_bytes())
        raw[4096 + 50] ^= 0xFF  # flip one byte inside page 1's content
        path.write_bytes(bytes(raw))

        with Pager(path, wal=False) as reopened:
            tree = BPlusTree.open(BufferPool(reopened, capacity=64))
            with pytest.raises(AssertionError, match="checksum violation"):
                check_tree(tree)

    def test_truncated_leaf_chain_reported(self):
        tree = _build()
        assert tree.height > 1  # multiple leaves, internal root
        leaf_id = _leftmost_leaf_id(tree)
        leaf = LeafNode.load(tree.buffer_pool.fetch(leaf_id), PAYLOAD_SIZE)
        leaf.next_leaf = NO_LEAF  # chain now ends after the first leaf
        leaf.save()
        with pytest.raises(AssertionError, match="leaf chain"):
            check_tree(tree)

    def test_leaf_chain_cycle_reported(self):
        tree = _build()
        leaf_id = _leftmost_leaf_id(tree)
        leaf = LeafNode.load(tree.buffer_pool.fetch(leaf_id), PAYLOAD_SIZE)
        leaf.next_leaf = leaf_id  # points back at itself
        leaf.save()
        with pytest.raises(AssertionError, match="cycles"):
            check_tree(tree)

    def test_leaked_page_reported(self):
        tree = _build()
        tree.buffer_pool.allocate()  # allocated, referenced by nothing
        with pytest.raises(AssertionError, match="leaked"):
            check_tree(tree)

    def test_duplicate_child_reference_reported(self):
        tree = _build()
        assert tree.height > 1
        root = InternalNode.load(tree.buffer_pool.fetch(tree._root))
        root.children[1] = root.children[0]  # same subtree linked twice
        root.save()
        with pytest.raises(AssertionError, match="referenced more than once"):
            check_tree(tree)

    def test_wrong_num_entries_reported(self):
        tree = _build()
        leaf_id = _leftmost_leaf_id(tree)
        leaf = LeafNode.load(tree.buffer_pool.fetch(leaf_id), PAYLOAD_SIZE)
        leaf.keys.pop()  # drop one entry without updating the metadata
        leaf.payloads.pop()
        leaf.save()
        with pytest.raises(AssertionError, match="num_entries"):
            check_tree(tree)

    def test_unsorted_leaf_keys_reported(self):
        tree = _build()
        leaf_id = _leftmost_leaf_id(tree)
        leaf = LeafNode.load(tree.buffer_pool.fetch(leaf_id), PAYLOAD_SIZE)
        leaf.keys[0], leaf.keys[1] = leaf.keys[1], leaf.keys[0]
        leaf.save()
        with pytest.raises(AssertionError, match="not sorted"):
            check_tree(tree)

    def test_unknown_node_type_reported(self):
        tree = _build()
        leaf_id = _leftmost_leaf_id(tree)
        page = tree.buffer_pool.fetch(leaf_id)
        page.data[0] = 7  # neither NODE_LEAF nor NODE_INTERNAL
        page.mark_dirty()
        with pytest.raises(AssertionError, match="unknown node type"):
            check_tree(tree)
