"""Tests for repro.storage.faults (deterministic fault injection)."""

import pytest

from repro.storage.faults import FaultInjectingPager, FaultInjector, SimulatedCrash
from repro.storage.pager import Pager


class TestFaultInjector:
    def test_counts_operations_without_crash_point(self):
        injector = FaultInjector()
        out = []
        for i in range(5):
            injector.write(out.append, bytes([i]))
        assert injector.ops == 5
        assert not injector.crashed
        assert out == [bytes([i]) for i in range(5)]

    def test_drop_discards_the_faulted_write(self):
        injector = FaultInjector(crash_after=2, mode="drop")
        out = []
        injector.write(out.append, b"a")
        with pytest.raises(SimulatedCrash):
            injector.write(out.append, b"b")
        assert out == [b"a"]
        assert injector.crashed

    def test_torn_writes_half(self):
        injector = FaultInjector(crash_after=1, mode="torn")
        out = []
        with pytest.raises(SimulatedCrash):
            injector.write(out.append, b"abcdef")
        assert out == [b"abc"]

    def test_duplicate_writes_twice(self):
        injector = FaultInjector(crash_after=1, mode="duplicate")
        out = []
        with pytest.raises(SimulatedCrash):
            injector.write(out.append, b"xy")
        assert out == [b"xy", b"xy"]

    def test_every_call_after_crash_raises(self):
        injector = FaultInjector(crash_after=1, mode="drop")
        with pytest.raises(SimulatedCrash):
            injector.write(lambda _: None, b"x")
        with pytest.raises(SimulatedCrash):
            injector.check()
        with pytest.raises(SimulatedCrash):
            injector.write(lambda _: None, b"y")
        with pytest.raises(SimulatedCrash):
            injector.op(lambda: None)

    def test_op_mode_degradation(self):
        ran = []
        injector = FaultInjector(crash_after=1, mode="torn")
        with pytest.raises(SimulatedCrash):
            injector.op(lambda: ran.append("torn"))
        assert ran == []  # torn degrades to drop for atomic ops
        injector = FaultInjector(crash_after=1, mode="duplicate")
        with pytest.raises(SimulatedCrash):
            injector.op(lambda: ran.append("dup"))
        assert ran == ["dup"]  # duplicate degrades to performing once

    def test_random_mode_is_deterministic(self):
        modes = {FaultInjector(mode="random", seed=s).resolved_mode for s in range(20)}
        assert modes <= {"drop", "torn", "duplicate"}
        assert len(modes) > 1  # the seed actually varies the choice
        a = FaultInjector(mode="random", seed=3).resolved_mode
        b = FaultInjector(mode="random", seed=3).resolved_mode
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(crash_after=0)
        with pytest.raises(ValueError):
            FaultInjector(crash_after=True)
        with pytest.raises(ValueError):
            FaultInjector(mode="explode")


class TestFaultInjectingPager:
    def test_requires_a_path(self):
        with pytest.raises(ValueError):
            FaultInjectingPager(None)

    def test_behaves_normally_before_crash_point(self, tmp_path):
        path = tmp_path / "d.pages"
        pager = FaultInjectingPager(path, crash_after=10_000)
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:2] = b"ok"
        pager.write_page(page)
        pager.sync()
        pager.close()
        with Pager(path) as plain:
            assert bytes(plain.read_page(0).data[:2]) == b"ok"

    def test_counting_run_measures_workload(self, tmp_path):
        pager = FaultInjectingPager(tmp_path / "d.pages")
        pager.allocate_page()
        pager.sync()
        pager.close()
        assert pager.faults.ops > 0

    def test_crash_during_sync_recovers_to_committed_state(self, tmp_path):
        path = tmp_path / "d.pages"
        # First, a committed page.
        with Pager(path) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:4] = b"base"
            pager.write_page(page)
        # Crash on the first log append of the next sync (operation 1 is
        # the open-time recovery's log reset).
        pager = FaultInjectingPager(path, crash_after=2, mode="torn")
        page = pager.read_page(0)
        page.data[:4] = b"next"
        pager.write_page(page)
        with pytest.raises(SimulatedCrash):
            pager.sync()
        pager.crash()
        with Pager(path) as recovered:
            assert bytes(recovered.read_page(0).data[:4]) == b"base"

    def test_close_after_crash_does_not_commit(self, tmp_path):
        path = tmp_path / "d.pages"
        # Fresh file: op 1 stamps the log header, op 2 is the open-time
        # recovery reset, op 3 is the first append of the sync's commit.
        pager = FaultInjectingPager(path, crash_after=3, mode="drop")
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:4] = b"gone"
        pager.write_page(page)
        with pytest.raises(SimulatedCrash):
            pager.sync()
        pager.close()  # must not retry the commit
        with Pager(path) as recovered:
            assert recovered.num_pages == 0


class TestTransientMode:
    def test_window_raises_then_heals(self):
        injector = FaultInjector(
            crash_after=2, mode="transient", transient_ops=2
        )
        out = []
        injector.write(out.append, b"a")  # op 1: before the window
        for payload in (b"b", b"c"):  # ops 2-3: inside the window
            with pytest.raises(SimulatedCrash):
                injector.write(out.append, payload)
        injector.write(out.append, b"d")  # op 4: healed
        # The faulted ops' I/O was dropped, everything else landed.
        assert out == [b"a", b"d"]
        assert injector.ops == 4
        assert not injector.crashed

    def test_crashed_stays_false_throughout(self):
        injector = FaultInjector(crash_after=1, mode="transient")
        with pytest.raises(SimulatedCrash):
            injector.op(lambda: None)
        assert not injector.crashed
        injector.check()  # a healed injector never trips check()
        ran = []
        injector.op(lambda: ran.append("ok"))
        assert ran == ["ok"]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(mode="transient")  # needs a start point
        with pytest.raises(ValueError):
            FaultInjector(crash_after=1, mode="transient", transient_ops=0)
        with pytest.raises(ValueError):
            FaultInjector(crash_after=1, transient_ops=True)

    def test_pager_retry_after_window_commits(self, tmp_path):
        """A sync that hits the transient window can simply be retried:
        the window passes, the retry commits, and a plain reopen sees
        the data — the pager-level analogue of the router's retry path."""
        path = tmp_path / "d.pages"
        # Fresh file: op 1 stamps the log header, op 2 is the open-time
        # recovery reset, op 3 is the first append of the sync's commit.
        pager = FaultInjectingPager(
            path, crash_after=3, mode="transient", transient_ops=1
        )
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:4] = b"keep"
        pager.write_page(page)
        with pytest.raises(SimulatedCrash):
            pager.sync()
        assert not pager.faults.crashed
        pager.sync()  # the window has passed; the retry commits
        pager.close()
        with Pager(path) as recovered:
            assert bytes(recovered.read_page(0).data[:4]) == b"keep"
            assert recovered.num_pages == 1
