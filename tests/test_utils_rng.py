"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, 10)
        b = ensure_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, 20)
        b = ensure_rng(2).integers(0, 1_000_000, 20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_rng(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")
