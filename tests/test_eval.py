"""Tests for the evaluation harness (ground truth, metrics, aggregation)."""

import numpy as np
import pytest

from repro.core.frames import frame_similarity
from repro.core.index import QueryStats
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.eval.ground_truth import GroundTruthCache, knn_ground_truth
from repro.eval.harness import aggregate_stats, format_table
from repro.eval.metrics import precision_at_k


@pytest.fixture(scope="module")
def dataset():
    config = DatasetConfig(
        dim=12,
        num_families=2,
        family_size=3,
        num_distractors=4,
        duration_classes=((20, 1.0),),
    )
    return generate_dataset(config, seed=42)


class TestGroundTruth:
    def test_self_first(self, dataset):
        top = knn_ground_truth(dataset, 0, 3, epsilon=0.3)
        assert top[0] == 0

    def test_matches_manual_ranking(self, dataset):
        eps = 0.3
        query = 1
        scored = sorted(
            (
                (-frame_similarity(dataset.frames(query), dataset.frames(v), eps), v)
                for v in range(dataset.num_videos)
            )
        )
        expected = [v for _, v in scored[:4]]
        assert knn_ground_truth(dataset, query, 4, eps) == expected

    def test_k_bounds(self, dataset):
        assert len(knn_ground_truth(dataset, 0, 100, 0.3)) == dataset.num_videos

    def test_invalid_arguments(self, dataset):
        with pytest.raises(ValueError):
            knn_ground_truth(dataset, -1, 3, 0.3)
        with pytest.raises(ValueError):
            knn_ground_truth(dataset, 0, 0, 0.3)
        with pytest.raises(ValueError):
            knn_ground_truth(dataset, 0, 3, 0.0)

    def test_cache_consistent_with_direct(self, dataset):
        cache = GroundTruthCache(dataset)
        assert cache.top_k(2, 4, 0.3) == knn_ground_truth(dataset, 2, 4, 0.3)

    def test_cache_serves_any_k_from_one_pass(self, dataset):
        cache = GroundTruthCache(dataset)
        cache.top_k(0, 2, 0.3)
        assert len(cache) == 1
        cache.top_k(0, 5, 0.3)  # same ranking, no new entry
        assert len(cache) == 1
        cache.top_k(0, 2, 0.4)  # different epsilon -> new entry
        assert len(cache) == 2


class TestPrecision:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 2, 3, 4], [1, 2, 9, 9]) == 0.5

    def test_zero(self):
        assert precision_at_k([1, 2], [3, 4]) == 0.0

    def test_duplicates_ignored(self):
        assert precision_at_k([1, 2], [1, 1, 1]) == 0.5

    def test_empty_relevant_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k([], [1])


class TestAggregateStats:
    def make(self, pages, sims):
        return QueryStats(
            page_requests=pages,
            physical_reads=pages,
            node_visits=1,
            similarity_computations=sims,
            candidates=sims,
            ranges=1,
            wall_time=0.5,
        )

    def test_means(self):
        agg = aggregate_stats([self.make(10, 100), self.make(20, 300)])
        assert agg["page_requests"] == 15.0
        assert agg["similarity_computations"] == 200.0
        assert agg["wall_time"] == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_stats([])


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 123456.789]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_no_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
