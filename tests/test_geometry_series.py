"""Cross-validation of the paper's factorial series (repro.geometry.series)
against the beta-function implementation (repro.geometry.volumes)."""

import math

import pytest

from repro.geometry.series import (
    cap_volume_series,
    cone_volume_series,
    sector_volume_series,
    sphere_volume_series,
)
from repro.geometry.volumes import (
    cap_volume,
    cone_volume,
    sector_volume,
    sphere_volume,
)

ANGLES = (0.05, 0.3, 0.8, 1.2, math.pi / 2.0)
DIMENSIONS = tuple(range(2, 16))


class TestSphereSeries:
    @pytest.mark.parametrize("n", range(1, 21))
    def test_matches_gamma_form(self, n):
        assert sphere_volume_series(n, 1.4) == pytest.approx(
            sphere_volume(n, 1.4), rel=1e-10
        )

    def test_even_coefficient(self):
        # n = 4: pi^2/2! = pi^2/2.
        assert sphere_volume_series(4, 1.0) == pytest.approx(math.pi**2 / 2.0)

    def test_odd_coefficient(self):
        # n = 3: 2^4 pi 2!/4! = 4 pi/3.
        assert sphere_volume_series(3, 1.0) == pytest.approx(4.0 * math.pi / 3.0)

    def test_zero_radius(self):
        assert sphere_volume_series(7, 0.0) == 0.0


class TestSectorSeries:
    @pytest.mark.parametrize("n", DIMENSIONS)
    @pytest.mark.parametrize("alpha", ANGLES)
    def test_matches_beta_form(self, n, alpha):
        assert sector_volume_series(n, 1.1, alpha) == pytest.approx(
            sector_volume(n, 1.1, alpha), rel=1e-9
        )

    def test_2d_reduces_to_alpha_r_squared(self):
        assert sector_volume_series(2, 3.0, 0.7) == pytest.approx(0.7 * 9.0)

    def test_zero_angle(self):
        assert sector_volume_series(5, 1.0, 0.0) == 0.0

    def test_rejects_obtuse(self):
        with pytest.raises(ValueError):
            sector_volume_series(4, 1.0, 2.5)


class TestCapSeries:
    @pytest.mark.parametrize("n", DIMENSIONS)
    @pytest.mark.parametrize("alpha", ANGLES)
    def test_matches_beta_form(self, n, alpha):
        assert cap_volume_series(n, 0.9, alpha) == pytest.approx(
            cap_volume(n, 0.9, alpha), rel=1e-9
        )

    def test_paper_structural_claim(self):
        """The cap series is the sector series plus one extra term, and
        that extra term equals the cone volume (paper Section 3.2)."""
        for n in DIMENSIONS:
            for alpha in (0.4, 1.0):
                sector = sector_volume_series(n, 1.0, alpha)
                cap = cap_volume_series(n, 1.0, alpha)
                cone = cone_volume_series(n, 1.0, alpha)
                # cap = sector - cone, i.e. extra term == -cone.
                assert cap == pytest.approx(sector - cone, rel=1e-9)


class TestConeSeries:
    @pytest.mark.parametrize("n", DIMENSIONS)
    @pytest.mark.parametrize("alpha", (0.2, 0.9, 1.4))
    def test_matches_gamma_form(self, n, alpha):
        assert cone_volume_series(n, 1.2, alpha) == pytest.approx(
            cone_volume(n, 1.2, alpha), rel=1e-9
        )

    def test_pyramid_identity(self):
        # V_cone = V_{n-1}(R sin a) * R cos a / n.
        n, radius, alpha = 6, 1.5, 0.8
        base = sphere_volume(n - 1, radius * math.sin(alpha))
        height = radius * math.cos(alpha)
        assert cone_volume_series(n, radius, alpha) == pytest.approx(
            base * height / n, rel=1e-10
        )
