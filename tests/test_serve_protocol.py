"""Wire-protocol tests: framing fuzz, bit-exact codecs, typed errors.

The framing layer is the only part of the system that reads untrusted
bytes, so it gets the adversarial treatment: truncated frames, hostile
length prefixes, garbage magic, mid-stream corruption.  The invariant
under attack is simple — a malformed length field must never cause an
allocation beyond :data:`~repro.serve.protocol.MAX_FRAME_BYTES`, and a
framing error must poison the stream rather than resynchronise on
garbage.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.vitri import ViTri, VideoSummary
from repro.serve.protocol import (
    FRAME_ERROR,
    FRAME_HEADER_BYTES,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    MAGIC,
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    RateLimited,
    RemoteShardError,
    ServiceDraining,
    ServiceOverloaded,
    counters_from_wire,
    counters_to_wire,
    decode_error,
    decode_frame_header,
    decode_request,
    decode_response,
    decode_summary,
    encode_error,
    encode_frame,
    encode_request,
    encode_response,
    encode_summary,
    payload_to_exception,
)
from repro.shard.resilience import InjectedShardError, ShardDown, ShardTimeout
from repro.utils.counters import CostCounters
from repro.utils.rng import ensure_rng


def make_summary(seed: int = 7, vitris: int = 3, dim: int = 5) -> VideoSummary:
    rng = ensure_rng(seed)
    parts = tuple(
        ViTri(
            rng.normal(size=dim),
            float(rng.uniform(0.01, 2.0)),
            int(rng.integers(1, 50)),
        )
        for _ in range(vitris)
    )
    frames = sum(vitri.count for vitri in parts)
    return VideoSummary(int(rng.integers(0, 1000)), parts, num_frames=frames)


class TestFraming:
    def test_round_trip_each_type(self):
        for frame_type in (FRAME_REQUEST, FRAME_RESPONSE, FRAME_ERROR):
            frame = encode_frame(frame_type, b"payload")
            decoder = FrameDecoder()
            frames = decoder.feed(frame)
            assert frames == [(frame_type, b"payload")]
            assert decoder.buffered == 0

    def test_byte_by_byte_feed(self):
        frame = encode_frame(FRAME_REQUEST, b"drip-fed payload")
        decoder = FrameDecoder()
        collected = []
        for position in range(len(frame)):
            collected += decoder.feed(frame[position : position + 1])
        assert collected == [(FRAME_REQUEST, b"drip-fed payload")]

    def test_two_frames_in_one_feed(self):
        blob = encode_frame(FRAME_REQUEST, b"one") + encode_frame(
            FRAME_RESPONSE, b"two"
        )
        assert FrameDecoder().feed(blob) == [
            (FRAME_REQUEST, b"one"),
            (FRAME_RESPONSE, b"two"),
        ]

    def test_truncated_frame_stays_pending(self):
        frame = encode_frame(FRAME_REQUEST, b"x" * 100)
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.buffered == 99  # header consumed, payload partial
        assert decoder.feed(frame[-1:]) == [(FRAME_REQUEST, b"x" * 100)]

    def test_oversized_length_prefix_rejected_before_allocation(self):
        # A header claiming a 4 GiB payload must die at header-parse
        # time; the decoder may never wait for (or buffer towards) it.
        header = struct.pack("!2sBI", MAGIC, FRAME_REQUEST, 2**32 - 1)
        with pytest.raises(ProtocolError, match="cap"):
            decode_frame_header(header)
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="cap"):
            decoder.feed(header)
        # Poisoned: no amount of follow-up bytes yields frames.
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(b"more")

    def test_just_over_cap_rejected_just_under_accepted(self):
        over = struct.pack("!2sBI", MAGIC, FRAME_REQUEST, MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError):
            decode_frame_header(over)
        at_cap = struct.pack("!2sBI", MAGIC, FRAME_REQUEST, MAX_FRAME_BYTES)
        assert decode_frame_header(at_cap) == (FRAME_REQUEST, MAX_FRAME_BYTES)

    def test_bad_magic_rejected(self):
        header = struct.pack("!2sBI", b"XX", FRAME_REQUEST, 4)
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame_header(header)

    def test_unknown_frame_type_rejected(self):
        header = struct.pack("!2sBI", MAGIC, 0x7F, 4)
        with pytest.raises(ProtocolError, match="type"):
            decode_frame_header(header)

    def test_encode_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError, match="cap"):
            encode_frame(FRAME_REQUEST, b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_random_garbage_never_yields_frames(self):
        rng = np.random.default_rng(1234)
        for _ in range(50):
            blob = rng.integers(0, 256, size=64, dtype=np.uint8).tobytes()
            decoder = FrameDecoder()
            try:
                frames = decoder.feed(blob)
            except ProtocolError:
                continue  # rejected at a header boundary: fine
            # Garbage that happens to parse as a valid header just waits
            # for its (bounded) payload; it can never conjure one.
            assert frames == []
            assert decoder.buffered <= len(blob)


class TestSummaryCodec:
    def test_bit_exact_round_trip(self):
        summary = make_summary()
        rebuilt = decode_summary(encode_summary(summary))
        assert rebuilt.video_id == summary.video_id
        assert rebuilt.num_frames == summary.num_frames
        assert len(rebuilt.vitris) == len(summary.vitris)
        for mine, theirs in zip(summary.vitris, rebuilt.vitris):
            # Bitwise, not approx: the whole point of the binary codec.
            assert mine.position.tobytes() == theirs.position.tobytes()
            assert repr(mine.radius) == repr(theirs.radius)
            assert mine.count == theirs.count

    def test_truncated_blob_rejected(self):
        blob = encode_summary(make_summary())
        with pytest.raises(ProtocolError, match="match its header"):
            decode_summary(blob[:-1])

    def test_header_shorter_than_minimum_rejected(self):
        with pytest.raises(ProtocolError, match="shorter"):
            decode_summary(b"\x00" * 4)

    def test_header_claiming_extra_vitris_rejected(self):
        # Flip the ViTri count up: the byte count no longer matches, so
        # the decoder must refuse rather than read out of bounds.
        summary = make_summary(vitris=2)
        blob = bytearray(encode_summary(summary))
        struct.pack_into(
            "<qqII", blob, 0, summary.video_id, summary.num_frames, 9, 5
        )
        with pytest.raises(ProtocolError):
            decode_summary(bytes(blob))


class TestRequestResponseCodec:
    def test_request_round_trip_with_summary(self):
        summary = make_summary()
        payload = encode_request("knn", {"k": 5, "budget": 0.25}, summary)
        op, params, got = decode_request(payload)
        assert op == "knn"
        assert params == {"k": 5, "budget": 0.25}
        assert got is not None
        assert got.vitris[0].position.tobytes() == (
            summary.vitris[0].position.tobytes()
        )

    def test_request_round_trip_without_summary(self):
        op, params, summary = decode_request(encode_request("ping", {}))
        assert (op, params, summary) == ("ping", {}, None)

    def test_request_header_length_beyond_payload_rejected(self):
        payload = struct.pack("!I", 10_000) + b'{"op": "x"}'
        with pytest.raises(ProtocolError, match="JSON header"):
            decode_request(payload)

    def test_request_too_short_rejected(self):
        with pytest.raises(ProtocolError, match="too short"):
            decode_request(b"\x00\x00")

    def test_request_bad_json_rejected(self):
        blob = b"not json at all"
        payload = struct.pack("!I", len(blob)) + blob
        with pytest.raises(ProtocolError, match="malformed"):
            decode_request(payload)

    def test_request_non_dict_params_rejected(self):
        blob = b'{"op": "knn", "params": [1, 2]}'
        payload = struct.pack("!I", len(blob)) + blob
        with pytest.raises(ProtocolError, match="dict params"):
            decode_request(payload)

    def test_response_float_scores_survive_exactly(self):
        scores = [0.1 + 0.2, 1.0 / 3.0, 2.0 ** -52, 7.23e-301]
        body = decode_response(encode_response({"scores": scores}))
        assert [repr(score) for score in body["scores"]] == [
            repr(score) for score in scores
        ]

    def test_response_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_response(b"[1, 2, 3]")


class TestErrorMapping:
    @pytest.mark.parametrize(
        "exc_type",
        [
            ShardTimeout,
            ShardDown,
            InjectedShardError,
            ServiceOverloaded,
            RateLimited,
            ServiceDraining,
            ProtocolError,
            ValueError,
            RuntimeError,
        ],
    )
    def test_known_types_round_trip(self, exc_type):
        rebuilt = payload_to_exception(
            decode_error(encode_error(exc_type("boom")))
        )
        assert type(rebuilt) is exc_type
        assert "boom" in str(rebuilt)

    def test_unknown_type_degrades_to_remote_error(self):
        rebuilt = payload_to_exception(
            {"error_type": "SomethingExotic", "message": "?"}
        )
        assert isinstance(rebuilt, RemoteShardError)
        assert "SomethingExotic" in str(rebuilt)

    def test_service_draining_is_retryable_as_connection_error(self):
        # The restart-under-traffic contract: a draining shard must look
        # like a transient connectivity fault to the resilience layer's
        # default retryable set (which includes OSError).
        assert issubclass(ServiceDraining, ConnectionError)


class TestCountersCodec:
    def test_round_trip_including_extras(self):
        bundle = CostCounters()
        bundle.page_requests = 12
        bundle.page_reads = 3
        bundle.similarity_computations = 40
        bundle.extra["range_searches"] = 5
        rebuilt = counters_from_wire(counters_to_wire(bundle))
        assert rebuilt.page_requests == 12
        assert rebuilt.page_reads == 3
        assert rebuilt.similarity_computations == 40
        assert rebuilt.extra["range_searches"] == 5
        assert rebuilt.snapshot() == bundle.snapshot()
