"""Network-path equivalence and the front door's admission machinery.

The headline test scatters the PR 7 golden corpora through a full
:class:`~repro.serve.frontdoor.NetworkFleet` (thread-mode servers,
remote proxies, read-only router, front door) and asserts the rankings
are *bit-identical* to the in-process router's — scores, order, ties.

The admission tests drive a :class:`~repro.serve.frontdoor.FrontDoor`
over a stub router whose queries block on an event, so queue overflow,
rate limiting and draining are exercised deterministically, without
timing assumptions.
"""

from __future__ import annotations

import tempfile
import threading

import pytest

from repro.serve.frontdoor import (
    FrontDoor,
    FrontDoorServer,
    NetworkFleet,
    TokenBucket,
)
from repro.serve.protocol import (
    RateLimited,
    ServiceDraining,
    ServiceOverloaded,
)
from repro.serve.transport import RemoteShardClient
from repro.shard.router import ShardedVideoDatabase
from repro.utils.clock import VirtualClock
from tests.test_golden_rankings import EPSILON, K, SEEDS, build_corpus


def build_fleet_dir(tmp: str, summaries, num_shards: int = 3) -> str:
    fleet_dir = f"{tmp}/fleet"
    db = ShardedVideoDatabase(
        EPSILON, partitioner="hash", num_shards=num_shards, path=fleet_dir
    )
    for summary in summaries:
        db.add_summary(summary)
    db.close()
    return fleet_dir


@pytest.mark.parametrize("seed", SEEDS)
def test_network_rankings_bit_identical_to_in_process(seed):
    summaries, _ = build_corpus(seed)
    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = build_fleet_dir(tmp, summaries)
        with ShardedVideoDatabase(EPSILON, path=fleet_dir) as db:
            local = [db.knn(query, K) for query in summaries]
        with NetworkFleet(fleet_dir, mode="thread", workers=2) as fleet:
            for query, want in zip(summaries, local):
                got = fleet.query_sync(query, K, timeout=60.0)
                assert got.videos == want.videos
                assert got.scores == want.scores  # bitwise over TCP
                assert got.coverage is not None
                assert got.coverage.complete


def test_read_only_router_refuses_mutation():
    summaries, _ = build_corpus(SEEDS[0])
    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = build_fleet_dir(tmp, summaries)
        with NetworkFleet(fleet_dir, mode="thread") as fleet:
            with pytest.raises(RuntimeError, match="read-only"):
                fleet.router.add_summary(summaries[0])
            with pytest.raises(RuntimeError, match="read-only"):
                fleet.router.checkpoint()
            assert fleet.router.video_ids() == {
                summary.video_id for summary in summaries
            }


def test_restart_shard_under_live_traffic():
    summaries, _ = build_corpus(SEEDS[1])
    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = build_fleet_dir(tmp, summaries)
        with ShardedVideoDatabase(EPSILON, path=fleet_dir) as db:
            local = {
                summary.video_id: db.knn(summary, K) for summary in summaries
            }
        with NetworkFleet(fleet_dir, mode="thread", workers=2) as fleet:
            stop = threading.Event()
            outcomes: list[tuple[int, object]] = []

            def traffic() -> None:
                position = 0
                while not stop.is_set():
                    query = summaries[position % len(summaries)]
                    position += 1
                    try:
                        result = fleet.query_sync(query, K, timeout=60.0)
                    except Exception as exc:  # noqa: BLE001 - recorded
                        outcomes.append((query.video_id, exc))
                    else:
                        outcomes.append((query.video_id, result))

            client = threading.Thread(target=traffic, name="traffic")
            client.start()
            try:
                for shard_id in range(fleet.num_shards):
                    fleet.restart_shard(shard_id)
            finally:
                stop.set()
                client.join(30.0)

            assert outcomes, "traffic thread never completed a query"
            hard_failures = [
                exc for _, exc in outcomes if isinstance(exc, Exception)
            ]
            assert not hard_failures, hard_failures
            # Complete answers must equal the in-process golden result;
            # degraded ones must say exactly what they are.
            complete = 0
            for video_id, result in outcomes:
                if result.coverage is not None and result.coverage.complete:
                    complete += 1
                    assert result.videos == local[video_id].videos
                    assert result.scores == local[video_id].scores
            assert complete > 0, "no query ever saw the full fleet"

            # After every restart the fleet is whole again.
            final = fleet.query_sync(summaries[0], K, timeout=60.0)
            assert final.coverage.complete
            assert final.scores == local[summaries[0].video_id].scores


def test_frontdoor_server_speaks_the_shard_protocol():
    # The TCP front speaks the same framing as a shard server, so one
    # client codec serves both layers — and rankings stay bit-identical
    # through the extra hop.
    summaries, _ = build_corpus(SEEDS[0])
    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = build_fleet_dir(tmp, summaries)
        with ShardedVideoDatabase(EPSILON, path=fleet_dir) as db:
            want = db.knn(summaries[0], K)
        with NetworkFleet(fleet_dir, mode="thread", workers=2) as fleet:
            server = FrontDoorServer(fleet.frontdoor)
            host, port = server.run_in_thread()
            client = RemoteShardClient(host, port)
            try:
                assert client.request("ping") == {"pong": True}
                body = client.request("knn", {"k": K}, summary=summaries[0])
                assert tuple(int(v) for v in body["videos"]) == want.videos
                assert tuple(
                    float(score) for score in body["scores"]
                ) == want.scores
                assert body["coverage"]["complete"] is True
                with pytest.raises(ValueError, match="requires a query"):
                    client.request("knn", {"k": K})
                assert client.request("status")["stats"]["admitted"] >= 1
            finally:
                client.close()
                server.stop()
                assert server.wait_closed(10.0)


class StubRouter:
    """A router whose queries block until released — admission tests
    control exactly how many workers are busy and how deep the queue is.
    """

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.started = threading.Event()
        self.served = 0
        self._lock = threading.Lock()

    def knn(self, query, k, **kwargs):
        self.started.set()
        self.gate.wait(30.0)
        with self._lock:
            self.served += 1
        return (query, k)


class TestFrontDoorShedding:
    def test_overload_sheds_typed_and_queue_recovers(self):
        router = StubRouter()
        door = FrontDoor(router, max_queue=4, workers=1)
        try:
            # One query occupies the worker; four fill the queue.
            futures = [door.submit("q0", 1)]
            assert router.started.wait(10.0)  # worker holds q0, queue empty
            futures += [door.submit(f"q{i}", 1) for i in range(1, 5)]
            with pytest.raises(ServiceOverloaded, match="full"):
                door.submit("overflow", 1)
            stats = door.stats()
            assert stats["admitted"] == 5
            assert stats["shed_overload"] == 1
            router.gate.set()  # release the backlog
            for future in futures:
                assert future.result(30.0) is not None
            assert door.stats()["completed"] == 5
            # Capacity is back: admission succeeds again.
            assert door.submit("after", 1).result(30.0) is not None
        finally:
            router.gate.set()
            door.drain()

    def test_rate_limit_sheds_per_client_and_refills(self):
        clock = VirtualClock()
        router = StubRouter()
        router.gate.set()  # serve instantly; this test is about admission
        door = FrontDoor(
            router, max_queue=16, workers=1, rate=1.0, burst=2.0, clock=clock
        )
        try:
            door.submit("a", 1, client="alice").result(30.0)
            door.submit("a", 1, client="alice").result(30.0)
            with pytest.raises(RateLimited, match="alice"):
                door.submit("a", 1, client="alice")
            # Another client has their own bucket.
            door.submit("b", 1, client="bob").result(30.0)
            assert door.stats()["shed_rate_limited"] == 1
            # Virtual time refills alice's bucket deterministically.
            clock.advance(1.0)
            door.submit("a", 1, client="alice").result(30.0)
        finally:
            door.drain()

    def test_drain_sheds_then_stops_workers(self):
        router = StubRouter()
        router.gate.set()
        door = FrontDoor(router, max_queue=4, workers=2)
        door.submit("before", 1).result(30.0)
        door.drain()
        with pytest.raises(ServiceDraining, match="draining"):
            door.submit("after", 1)
        assert door.stats()["shed_draining"] == 1
        door.drain()  # idempotent

    def test_drain_fails_leftover_futures_instead_of_hanging(self):
        router = StubRouter()  # gate never set: worker blocks forever
        door = FrontDoor(router, max_queue=8, workers=1, drain_timeout=0.2)
        blocked = door.submit("blocked", 1)
        assert router.started.wait(10.0)  # the worker is wedged on it
        queued = door.submit("queued", 1)
        door.drain()
        router.gate.set()  # let the stuck worker finish after the fact
        assert blocked.result(30.0) is not None
        with pytest.raises(ServiceDraining, match="drained before"):
            queued.result(30.0)


class TestBucketTTL:
    """Regression: the per-client token-bucket map must not grow without
    bound — one-shot clients are evicted after ``bucket_ttl`` idle
    seconds (their refilled-to-burst bucket holds no state worth
    keeping)."""

    def make_door(self, clock, **kwargs):
        router = StubRouter()
        router.gate.set()
        return FrontDoor(
            router,
            rate=100.0,
            burst=100.0,
            workers=1,
            max_queue=1024,
            clock=clock,
            **kwargs,
        )

    def test_idle_clients_are_evicted_after_ttl(self):
        clock = VirtualClock()
        door = self.make_door(clock, bucket_ttl=60.0)
        try:
            futures = [
                door.submit("q", 1, client=f"client-{i}") for i in range(500)
            ]
            for future in futures:
                future.result(30.0)
            assert door.stats()["rate_limit_clients"] == 500
            clock.advance(61.0)
            # The next submission sweeps every idle bucket.
            door.submit("q", 1, client="fresh").result(30.0)
            assert door.stats()["rate_limit_clients"] == 1
        finally:
            door.drain()

    def test_active_client_survives_the_sweep(self):
        clock = VirtualClock()
        door = self.make_door(clock, bucket_ttl=60.0)
        try:
            door.submit("q", 1, client="steady").result(30.0)
            clock.advance(59.0)
            door.submit("q", 1, client="steady").result(30.0)
            clock.advance(59.0)  # 118s since the first, 59s since the last
            door.submit("q", 1, client="visitor").result(30.0)
            assert set(door._buckets) == {"steady", "visitor"}
        finally:
            door.drain()

    def test_ttl_none_disables_eviction(self):
        clock = VirtualClock()
        door = self.make_door(clock, bucket_ttl=None)
        try:
            for i in range(50):
                door.submit("q", 1, client=f"client-{i}").result(30.0)
            clock.advance(10_000.0)
            door.submit("q", 1, client="fresh").result(30.0)
            assert door.stats()["rate_limit_clients"] == 51
        finally:
            door.drain()

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError):
            self.make_door(VirtualClock(), bucket_ttl=0.0)


@pytest.mark.parametrize("seed", [SEEDS[0]])
def test_fleet_with_replicas_serves_identical_rankings(seed):
    summaries, _ = build_corpus(seed)
    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = build_fleet_dir(tmp, summaries, num_shards=2)
        with ShardedVideoDatabase(EPSILON, path=fleet_dir) as db:
            local = [db.knn(query, K) for query in summaries]
        with NetworkFleet(
            fleet_dir,
            mode="thread",
            workers=2,
            replicas_per_shard=2,
            range_cache_size=64,
        ) as fleet:
            for query, want in zip(summaries, local):
                got = fleet.query_sync(query, K, timeout=60.0)
                assert got.videos == want.videos
                assert got.scores == want.scores  # bitwise via replicas
            status = fleet.status()
            assert status["shards"], "fleet status must cover the shards"
            for body in status["shards"].values():
                replication = body.get("replication")
                assert replication is not None, body
                assert len(replication["replicas"]) == 2
                assert all(
                    replica["state"] == "synced"
                    for replica in replication["replicas"]
                )


def test_fleet_replicas_require_thread_mode():
    summaries, _ = build_corpus(SEEDS[0])
    with tempfile.TemporaryDirectory() as tmp:
        fleet_dir = build_fleet_dir(tmp, summaries, num_shards=2)
        with pytest.raises(ValueError, match="thread"):
            NetworkFleet(fleet_dir, mode="subprocess", replicas_per_shard=1)


class TestTokenBucket:
    def test_burst_then_steady_rate(self):
        clock = VirtualClock()
        bucket = TokenBucket(2.0, 3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(10.0, 2.0, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0)
