"""Tests for the ViTri similarity measure (paper Section 4.2)."""

import numpy as np
import pytest

from repro.core.similarity import (
    estimated_shared_frames,
    estimated_shared_frames_many,
    shared_frames_matrix,
    video_similarity,
    vitri_similarity,
)
from repro.core.vitri import VideoSummary, ViTri
from repro.geometry.intersection import intersection_volume
from repro.utils.counters import CostCounters


def vitri(offset, radius=0.5, count=10, dim=4):
    position = np.zeros(dim)
    position[0] = offset
    return ViTri(position=position, radius=radius, count=count)


class TestEstimatedSharedFrames:
    def test_disjoint_is_zero(self):
        assert estimated_shared_frames(vitri(0.0), vitri(5.0)) == 0.0

    def test_touching_is_zero(self):
        # d == R1 + R2: paper case 1 boundary.
        assert estimated_shared_frames(vitri(0.0), vitri(1.0)) == 0.0

    def test_identical_clusters_share_min_count(self):
        a = vitri(0.0, count=10)
        b = vitri(0.0, count=7)
        assert estimated_shared_frames(a, b) == pytest.approx(7.0)

    def test_contained_case_matches_formula(self):
        # Explicit check of V_int * min(D1, D2) in low dimension.
        big = vitri(0.0, radius=1.0, count=100, dim=3)
        small = vitri(0.1, radius=0.2, count=5, dim=3)
        v_int = intersection_volume(3, 1.0, 0.2, 0.1)
        expected = v_int * min(big.density, small.density)
        expected = min(expected, 5.0)
        assert estimated_shared_frames(big, small) == pytest.approx(
            expected, rel=1e-9
        )

    def test_lens_case_matches_formula(self):
        a = vitri(0.0, radius=1.0, count=50, dim=3)
        b = vitri(1.2, radius=0.8, count=30, dim=3)
        v_int = intersection_volume(3, 1.0, 0.8, 1.2)
        expected = min(v_int * min(a.density, b.density), 30.0)
        assert estimated_shared_frames(a, b) == pytest.approx(expected, rel=1e-9)

    def test_symmetric(self):
        a = vitri(0.0, radius=0.9, count=12)
        b = vitri(0.5, radius=0.4, count=40)
        assert estimated_shared_frames(a, b) == pytest.approx(
            estimated_shared_frames(b, a)
        )

    def test_never_exceeds_min_count(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a = vitri(rng.uniform(0, 1), rng.uniform(0.01, 1), int(rng.integers(1, 50)))
            b = vitri(rng.uniform(0, 1), rng.uniform(0.01, 1), int(rng.integers(1, 50)))
            assert estimated_shared_frames(a, b) <= min(a.count, b.count) + 1e-12

    def test_point_mass_inside(self):
        sphere = vitri(0.0, radius=0.5, count=20)
        point = vitri(0.3, radius=0.0, count=4)
        assert estimated_shared_frames(sphere, point) == 4.0

    def test_point_mass_outside(self):
        sphere = vitri(0.0, radius=0.5, count=20)
        point = vitri(0.8, radius=0.0, count=4)
        assert estimated_shared_frames(sphere, point) == 0.0

    def test_high_dim_stable(self):
        a = ViTri(position=np.zeros(64), radius=0.15, count=30)
        b = ViTri(position=np.full(64, 0.005), radius=0.14, count=25)
        value = estimated_shared_frames(a, b)
        assert 0.0 < value <= 25.0
        assert np.isfinite(value)

    def test_monotone_in_distance(self):
        values = [
            estimated_shared_frames(vitri(0.0), vitri(d))
            for d in np.linspace(0.0, 1.0, 11)
        ]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            estimated_shared_frames(vitri(0.0, dim=3), vitri(0.0, dim=4))

    def test_type_check(self):
        with pytest.raises(TypeError):
            estimated_shared_frames(vitri(0.0), "x")

    def test_alias(self):
        a, b = vitri(0.0), vitri(0.2)
        assert vitri_similarity(a, b) == estimated_shared_frames(a, b)


class TestVectorised:
    def test_matches_scalar(self):
        rng = np.random.default_rng(1)
        query = vitri(0.0, radius=0.4, count=9)
        positions = rng.uniform(0, 1.5, (20, 4))
        radii = rng.uniform(0.01, 0.8, 20)
        counts = rng.integers(1, 30, 20)
        vectorised = estimated_shared_frames_many(query, positions, radii, counts)
        for i in range(20):
            scalar = estimated_shared_frames(
                query,
                ViTri(position=positions[i], radius=radii[i], count=int(counts[i])),
            )
            assert vectorised[i] == pytest.approx(scalar, rel=1e-12)

    def test_negative_radius_rejected(self):
        query = vitri(0.0)
        with pytest.raises(ValueError):
            estimated_shared_frames_many(
                query, np.zeros((1, 4)), [-0.1], [1]
            )


class TestVideoSimilarity:
    def make_summary(self, video_id, offsets, counts, radius=0.3, dim=4):
        vitris = tuple(
            vitri(o, radius=radius, count=c, dim=dim)
            for o, c in zip(offsets, counts)
        )
        return VideoSummary(video_id=video_id, vitris=vitris)

    def test_self_similarity_is_one(self):
        summary = self.make_summary(0, [0.0, 2.0], [10, 20])
        assert video_similarity(summary, summary) == pytest.approx(1.0)

    def test_disjoint_videos(self):
        a = self.make_summary(0, [0.0], [10])
        b = self.make_summary(1, [10.0], [10])
        assert video_similarity(a, b) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        a = self.make_summary(0, [0.0, 5.0], [10, 10])
        b = self.make_summary(1, [0.0, 99.0], [10, 10])
        sim = video_similarity(a, b)
        assert 0.0 < sim < 1.0

    def test_symmetric(self):
        a = self.make_summary(0, [0.0, 1.0], [5, 15])
        b = self.make_summary(1, [0.5, 3.0], [10, 10])
        assert video_similarity(a, b) == pytest.approx(video_similarity(b, a))

    def test_clipped_at_one(self):
        # Dense identical clusters must not push the score above 1.
        a = self.make_summary(0, [0.0, 0.01, 0.02], [10, 10, 10])
        assert video_similarity(a, a) <= 1.0

    def test_matrix_shape(self):
        a = self.make_summary(0, [0.0, 1.0], [5, 5])
        b = self.make_summary(1, [0.0, 1.0, 2.0], [5, 5, 5])
        matrix = shared_frames_matrix(a, b)
        assert matrix.shape == (2, 3)

    def test_counters_incremented(self):
        a = self.make_summary(0, [0.0, 1.0], [5, 5])
        b = self.make_summary(1, [0.0, 1.0, 2.0], [5, 5, 5])
        counters = CostCounters()
        video_similarity(a, b, counters)
        assert counters.similarity_computations == 6

    def test_dim_mismatch(self):
        a = self.make_summary(0, [0.0], [5], dim=3)
        b = self.make_summary(1, [0.0], [5], dim=4)
        with pytest.raises(ValueError):
            video_similarity(a, b)


class TestBatchScalarEquivalence:
    """The vectorised estimator must agree with the scalar one across the
    whole case space (disjoint / lens / contained / point mass)."""

    def test_fuzz_equivalence(self):
        from repro.core.similarity import _estimate_from_scalars

        rng = np.random.default_rng(0)
        for _ in range(10):
            dim = int(rng.integers(2, 65))
            query = ViTri(
                position=rng.uniform(0, 1, dim),
                radius=float(rng.uniform(0, 0.5)),
                count=int(rng.integers(1, 50)),
            )
            m = 100
            positions = rng.uniform(0, 1, (m, dim))
            radii = rng.uniform(0, 0.5, m)
            radii[rng.random(m) < 0.05] = 0.0  # sprinkle point masses
            counts = rng.integers(1, 60, m)
            batch = estimated_shared_frames_many(query, positions, radii, counts)
            distances = np.linalg.norm(positions - query.position, axis=1)
            for i in range(m):
                scalar = _estimate_from_scalars(
                    dim,
                    query.radius,
                    query.count,
                    float(radii[i]),
                    int(counts[i]),
                    float(distances[i]),
                )
                assert batch[i] == pytest.approx(scalar, rel=1e-9, abs=1e-12)

    def test_zero_radius_query(self):
        query = ViTri(position=np.zeros(4), radius=0.0, count=3)
        positions = np.array([[0.1, 0, 0, 0], [2.0, 0, 0, 0]])
        out = estimated_shared_frames_many(query, positions, [0.5, 0.5], [7, 7])
        assert out[0] == 3.0  # point-mass query inside the first sphere
        assert out[1] == 0.0
