"""Tests for the temporal-order extension (warping, Hausdorff, alignment)."""

import numpy as np
import pytest

from repro.core.similarity import video_similarity
from repro.core.summarize import summarize_video
from repro.core.vitri import VideoSummary, ViTri
from repro.temporal import (
    align_summaries,
    directed_hausdorff,
    hausdorff_distance,
    temporal_video_similarity,
    warping_distance,
)


def vitri(offset, radius=0.3, count=10, dim=4):
    position = np.zeros(dim)
    position[0] = offset
    return ViTri(position=position, radius=radius, count=count)


def summary(video_id, offsets, dim=4):
    return VideoSummary(
        video_id=video_id,
        vitris=tuple(vitri(o, dim=dim) for o in offsets),
    )


class TestWarpingDistance:
    def test_identical_sequences_zero(self):
        frames = np.random.default_rng(0).uniform(0, 1, (15, 3))
        assert warping_distance(frames, frames) == pytest.approx(0.0)

    def test_known_value_1d(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([[0.0], [2.0]])
        # Optimal path: (0,0), (1,0) or (1,1), (2,1): cost 0 + 1 + 0 = 1.
        assert warping_distance(x, y) == pytest.approx(1.0)

    def test_handles_frame_repetition(self):
        # A video and its slowed-down version warp with zero cost.
        x = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        y = np.repeat(x, 3, axis=0)
        assert warping_distance(x, y) == pytest.approx(0.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, (10, 3))
        y = rng.uniform(0, 1, (14, 3))
        assert warping_distance(x, y) == pytest.approx(warping_distance(y, x))

    def test_band_matches_unbanded_when_wide(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, (12, 3))
        y = rng.uniform(0, 1, (12, 3))
        assert warping_distance(x, y, band=12) == pytest.approx(
            warping_distance(x, y)
        )

    def test_band_at_least_optimal(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, (15, 2))
        y = rng.uniform(0, 1, (15, 2))
        assert warping_distance(x, y, band=1) >= warping_distance(x, y) - 1e-12

    def test_band_too_narrow_rejected(self):
        x = np.zeros((10, 2))
        y = np.zeros((3, 2))
        with pytest.raises(ValueError, match="band"):
            warping_distance(x, y, band=2)

    def test_normalise(self):
        x = np.array([[0.0], [0.0]])
        y = np.array([[1.0], [1.0]])
        raw = warping_distance(x, y)
        assert warping_distance(x, y, normalise=True) == pytest.approx(raw / 4)

    def test_order_sensitivity(self):
        """Reversing a sequence increases the warping distance (unlike the
        ViTri bag-of-frames measure)."""
        ramp = np.linspace(0, 1, 10)[:, None] * np.ones((1, 3))
        assert warping_distance(ramp, ramp) < warping_distance(
            ramp, ramp[::-1]
        )


class TestHausdorff:
    def test_identical_zero(self):
        frames = np.random.default_rng(4).uniform(0, 1, (20, 3))
        # The blocked quadratic expansion leaves ~sqrt(eps) round-off.
        assert hausdorff_distance(frames, frames) == pytest.approx(0.0, abs=1e-6)

    def test_directed_asymmetric(self):
        x = np.array([[0.0, 0.0]])
        y = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert directed_hausdorff(x, y) == pytest.approx(0.0)
        assert directed_hausdorff(y, x) == pytest.approx(5.0)

    def test_symmetric_is_max(self):
        x = np.array([[0.0, 0.0]])
        y = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert hausdorff_distance(x, y) == pytest.approx(5.0)

    def test_outlier_dominates(self):
        """The weakness the ViTri density model avoids: one outlier frame
        determines the whole distance."""
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 0.1, (50, 3))
        y = np.vstack([rng.uniform(0, 0.1, (49, 3)), [[9.0, 9.0, 9.0]]])
        assert hausdorff_distance(x, y) > 10.0

    def test_known_value(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([[0.25], [0.75]])
        assert hausdorff_distance(x, y) == pytest.approx(0.25)


class TestAlignment:
    def test_identical_summaries_align_fully(self):
        s = summary(0, [0.0, 2.0, 4.0])
        total, pairs = align_summaries(s, s)
        assert total == pytest.approx(30.0)  # three clusters of 10
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_monotonicity_enforced(self):
        """Crossing matches cannot both be taken."""
        a = summary(0, [0.0, 5.0])
        b = summary(1, [5.0, 0.0])  # same content, reversed order
        total, pairs = align_summaries(a, b)
        assert total == pytest.approx(10.0)  # only one pair alignable
        assert len(pairs) == 1

    def test_temporal_similarity_order_sensitive(self):
        a = summary(0, [0.0, 5.0, 10.0])
        reversed_b = summary(1, [10.0, 5.0, 0.0])
        same_b = summary(2, [0.0, 5.0, 10.0])
        sim_same = temporal_video_similarity(a, same_b)
        sim_reversed = temporal_video_similarity(a, reversed_b)
        assert sim_same == pytest.approx(1.0)
        assert sim_reversed < sim_same

    def test_agrees_with_order_robust_when_order_matches(self):
        a = summary(0, [0.0, 5.0, 9.0])
        b = summary(1, [0.1, 5.1, 9.1])
        temporal = temporal_video_similarity(a, b)
        robust = video_similarity(a, b)
        assert temporal == pytest.approx(robust, rel=0.05)

    def test_disjoint_videos_zero(self):
        a = summary(0, [0.0])
        b = summary(1, [100.0])
        assert temporal_video_similarity(a, b) == 0.0

    def test_on_real_summaries(self, rng):
        anchors = [rng.uniform(0, 1, 8) for _ in range(3)]
        frames = np.vstack(
            [a + rng.normal(0, 0.01, (12, 8)) for a in anchors]
        )
        shuffled = np.vstack(
            [anchors[i] + rng.normal(0, 0.01, (12, 8)) for i in (2, 0, 1)]
        )
        x = summarize_video(0, frames, 0.3, seed=0)
        y_same = summarize_video(1, frames.copy(), 0.3, seed=1)
        y_shuffled = summarize_video(2, shuffled, 0.3, seed=2)
        assert temporal_video_similarity(x, y_same) >= temporal_video_similarity(
            x, y_shuffled
        )

    def test_type_check(self):
        with pytest.raises(TypeError):
            align_summaries("a", summary(0, [0.0]))
