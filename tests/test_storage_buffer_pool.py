"""Tests for repro.storage.buffer_pool."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def make_pool(capacity=4):
    pager = Pager()
    return pager, BufferPool(pager, capacity=capacity)


class TestBufferPool:
    def test_fetch_caches(self):
        pager, pool = make_pool()
        page = pool.allocate()
        reads_before = pager.physical_reads
        for _ in range(5):
            assert pool.fetch(page.page_id) is page
        assert pager.physical_reads == reads_before

    def test_hit_miss_counters(self):
        pager, pool = make_pool(capacity=1)
        a = pool.allocate()
        b = pool.allocate()  # evicts a
        pool.fetch(b.page_id)  # hit
        pool.fetch(a.page_id)  # miss (evicted)
        assert pool.requests == 2
        assert pool.hits == 1
        assert pool.misses == 1

    def test_lru_eviction_order(self):
        pager, pool = make_pool(capacity=2)
        a = pool.allocate()
        b = pool.allocate()
        pool.fetch(a.page_id)          # a is now most recent
        pool.allocate()                # evicts b (least recent)
        pager_reads = pager.physical_reads
        pool.fetch(a.page_id)          # still cached
        assert pager.physical_reads == pager_reads
        pool.fetch(b.page_id)          # must be re-read
        assert pager.physical_reads == pager_reads + 1

    def test_dirty_page_written_on_eviction(self):
        pager, pool = make_pool(capacity=1)
        a = pool.allocate()
        a.data[:2] = b"ok"
        a.mark_dirty()
        pool.allocate()  # evicts a, must write it back
        page = pager.read_page(a.page_id)
        assert bytes(page.data[:2]) == b"ok"

    def test_clean_page_not_written_on_eviction(self):
        pager, pool = make_pool(capacity=1)
        a = pool.allocate()
        writes = pager.physical_writes
        pool.allocate()  # evicts clean a
        # Only the allocation write happened.
        assert pager.physical_writes == writes + 1

    def test_flush_writes_dirty(self):
        pager, pool = make_pool()
        a = pool.allocate()
        a.data[0] = 7
        a.mark_dirty()
        pool.flush()
        assert pager.read_page(a.page_id).data[0] == 7
        assert not a.dirty

    def test_clear_drops_cache(self):
        pager, pool = make_pool()
        a = pool.allocate()
        pool.clear()
        reads = pager.physical_reads
        pool.fetch(a.page_id)
        assert pager.physical_reads == reads + 1

    def test_capacity_zero_always_misses(self):
        pager, pool = make_pool(capacity=0)
        pid = pager.allocate_page()
        pool.fetch(pid)
        pool.fetch(pid)
        assert pool.hits == 0
        assert pool.misses == 2

    def test_capacity_zero_write_through(self):
        pager, pool = make_pool(capacity=0)
        page = pool.allocate()
        page.data[0] = 5
        page.mark_dirty()
        pool.write_through(page)
        assert pager.read_page(page.page_id).data[0] == 5

    def test_reset_counters(self):
        pager, pool = make_pool()
        page = pool.allocate()
        pool.fetch(page.page_id)
        pool.reset_counters()
        assert pool.requests == 0
        assert pool.hits == 0
        assert pool.misses == 0

    def test_invalid_capacity(self):
        pager = Pager()
        with pytest.raises(ValueError):
            BufferPool(pager, capacity=-1)
        with pytest.raises(TypeError):
            BufferPool(pager, capacity=2.5)

    def test_never_exceeds_capacity(self):
        pager, pool = make_pool(capacity=3)
        for _ in range(10):
            pool.allocate()
        assert len(pool._pages) <= 3


class TestOrphanWriteThrough:
    """Mutating a page object after its eviction must not lose data."""

    def test_capacity_zero_mutation_persists(self):
        pager, pool = make_pool(capacity=0)
        page = pool.allocate()
        page.data[:3] = b"abc"
        page.mark_dirty()
        assert bytes(pager.read_page(page.page_id).data[:3]) == b"abc"

    def test_evicted_page_mutation_persists(self):
        pager, pool = make_pool(capacity=1)
        a = pool.allocate()
        pool.allocate()  # evicts a (clean)
        a.data[:2] = b"hi"
        a.mark_dirty()   # orphan write-through
        assert bytes(pager.read_page(a.page_id).data[:2]) == b"hi"

    def test_cleared_page_mutation_persists(self):
        pager, pool = make_pool(capacity=4)
        a = pool.allocate()
        pool.clear()
        a.data[0] = 9
        a.mark_dirty()
        assert pager.read_page(a.page_id).data[0] == 9

    def test_cached_page_not_written_until_eviction(self):
        pager, pool = make_pool(capacity=4)
        a = pool.allocate()
        writes = pager.physical_writes
        a.data[0] = 1
        a.mark_dirty()
        # Still cached: deferred write-back, no physical write yet.
        assert pager.physical_writes == writes

    def test_btree_build_works_with_tiny_pool(self):
        import struct
        from repro.btree.checker import check_tree
        from repro.btree.tree import BPlusTree

        pool = BufferPool(Pager(), capacity=2)
        tree = BPlusTree.create(pool, payload_size=8)
        for i in range(2000):
            tree.insert(float(i % 101), struct.pack("<q", i))
        check_tree(tree)
        assert len(tree.search(50.0)) == 2000 // 101 + (1 if 50 < 2000 % 101 else 0)


class TestPerQueryCounters:
    def test_fetch_populates_bundle(self):
        from repro.utils.counters import CostCounters

        pager, pool = make_pool(capacity=4)
        page = pool.allocate()
        pool.clear()
        counters = CostCounters()
        pool.fetch(page.page_id, counters)  # cold: miss
        pool.fetch(page.page_id, counters)  # warm: hit
        assert counters.page_requests == 2
        assert counters.page_reads == 1

    def test_bundle_isolated_between_queries(self):
        from repro.utils.counters import CostCounters

        pager, pool = make_pool(capacity=4)
        page = pool.allocate()
        first, second = CostCounters(), CostCounters()
        pool.fetch(page.page_id, first)
        pool.fetch(page.page_id, second)
        assert first.page_requests == 1
        assert second.page_requests == 1


class TestThreadSafety:
    def test_concurrent_fetches_lose_no_counts(self):
        """N threads x M fetches over one shared pool: the pool's global
        counters and the per-thread bundles must both be exact."""
        import sys
        import threading

        from repro.utils.counters import CostCounters

        pager = Pager()
        setup = BufferPool(pager, capacity=8)
        page_ids = [setup.allocate().page_id for _ in range(8)]
        setup.flush()

        pool = BufferPool(pager, capacity=3)  # small: constant churn
        num_threads, per_thread = 8, 400
        bundles = [CostCounters() for _ in range(num_threads)]
        barrier = threading.Barrier(num_threads)

        def run(slot: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                pool.fetch(page_ids[(slot + i) % len(page_ids)], bundles[slot])

        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [
                threading.Thread(target=run, args=(slot,))
                for slot in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(switch)

        total = num_threads * per_thread
        assert pool.requests == total
        assert pool.hits + pool.misses == total
        assert sum(b.page_requests for b in bundles) == total
        assert sum(b.page_reads for b in bundles) == pool.misses
        for bundle in bundles:
            assert bundle.page_requests == per_thread
