"""Tests for VitriIndex.remove_video (tombstoned removal)."""

import numpy as np
import pytest

from repro.baselines.seqscan import SequentialScan
from repro.core.index import TOMBSTONE_VIDEO_ID, VitriIndex
from repro.core.vitri import VideoSummary, ViTri

EPSILON = 0.3


class TestRemoveVideo:
    def test_removed_video_disappears_from_results(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        victim = small_summaries[1].video_id
        removed = index.remove_video(victim)
        assert removed == len(small_summaries[1])
        for query_id in (0, 2, 5):
            result = index.knn(small_summaries[query_id], 20, cold=True)
            assert victim not in result.videos

    def test_num_videos_updated(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        index.remove_video(0)
        assert index.num_videos == len(small_summaries) - 1
        assert 0 not in index.video_frames

    def test_btree_entries_removed(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        before = index.btree.num_entries
        removed = index.remove_video(3)
        assert index.btree.num_entries == before - removed

    def test_seqscan_agrees_after_removal(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        index.remove_video(2)
        index.remove_video(7)
        scan = SequentialScan(index)
        for query_id in (0, 4, 10):
            a = index.knn(small_summaries[query_id], 10, cold=True)
            b = scan.knn(small_summaries[query_id], 10)
            assert a.videos == b.videos
            assert np.allclose(a.scores, b.scores)

    def test_reinsert_after_removal(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        index.remove_video(0)
        index.insert_video(small_summaries[0])
        result = index.knn(small_summaries[0], 3, cold=True)
        assert result.videos[0] == 0
        assert result.scores[0] == pytest.approx(1.0)

    def test_rebuild_after_removal_drops_tombstones(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        index.remove_video(1)
        rebuilt = index.rebuild()
        assert rebuilt.num_videos == len(small_summaries) - 1
        assert rebuilt.num_vitris == index.btree.num_entries
        result = rebuilt.knn(small_summaries[0], 20, cold=True)
        assert 1 not in result.videos

    def test_remove_unknown_video(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        with pytest.raises(ValueError, match="not indexed"):
            index.remove_video(12345)

    def test_remove_twice_rejected(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        index.remove_video(0)
        with pytest.raises(ValueError):
            index.remove_video(0)

    def test_reserved_video_id_rejected_at_build(self):
        summary = VideoSummary(
            video_id=TOMBSTONE_VIDEO_ID,
            vitris=(ViTri(position=np.zeros(4), radius=0.1, count=1),),
        )
        with pytest.raises(ValueError, match="reserved"):
            VitriIndex.build([summary], EPSILON)

    def test_reserved_video_id_rejected_at_insert(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        summary = VideoSummary(
            video_id=TOMBSTONE_VIDEO_ID,
            vitris=(
                ViTri(
                    position=np.zeros(small_summaries[0].dim),
                    radius=0.1,
                    count=1,
                ),
            ),
        )
        with pytest.raises(ValueError, match="reserved"):
            index.insert_video(summary)

    def test_drift_angle_still_works_after_removal(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        index.remove_video(0)
        assert 0.0 <= index.drift_angle() <= np.pi / 2


class TestRemoveEverything:
    """Degenerate path: an index whose every video has been removed."""

    def emptied_index(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        for summary in small_summaries:
            index.remove_video(summary.video_id)
        return index

    def test_knn_returns_empty(self, small_summaries):
        index = self.emptied_index(small_summaries)
        assert index.num_videos == 0
        assert index.btree.num_entries == 0
        result = index.knn(small_summaries[0], 5)
        assert result.videos == ()
        assert result.scores == ()
        # The query still ran real range searches over the emptied tree.
        assert result.stats.ranges > 0
        assert result.stats.candidates == 0

    def test_similarity_range_returns_empty(self, small_summaries):
        index = self.emptied_index(small_summaries)
        result = index.similarity_range(small_summaries[0], 0.5)
        assert result.videos == ()

    def test_reinsert_revives_queries(self, small_summaries):
        index = self.emptied_index(small_summaries)
        index.insert_video(small_summaries[3])
        result = index.knn(small_summaries[3], 5)
        assert result.videos[0] == small_summaries[3].video_id
