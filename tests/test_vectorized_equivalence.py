"""Oracle-equivalence harness for the vectorized query path.

The vectorized implementation (page-batched leaf reads, columnar
deserialisation, numpy geometry, deferred bincount score folding) is
contractually **bit-identical** to the scalar oracle — not approximately
equal.  Every assertion in this module uses ``==`` on floats; a single
ulp of drift is a failure.

Three layers are pinned, mirroring the three layers of the rewrite:

1. geometry — ``_estimate_batch`` against ``_estimate_from_scalars``,
   over randomized sweeps including degenerate radii, coincident
   centres and point-mass clusters;
2. storage — ``decode_columns`` / ``decode_batch`` against per-record
   ``decode``, and ``range_search_many`` against per-range
   ``range_search`` (keys, payload bytes *and* cost counters);
3. end-to-end — ``knn`` / ``similarity_range`` with ``impl="scalar"``
   against ``impl="vectorized"``: identical rankings, identical score
   floats, identical logical counter signatures, and the vectorized
   side never touching *more* pages than the scalar one.
"""

import numpy as np
import pytest

import repro
from repro.core.index import VitriIndex
from repro.core.similarity import (
    _estimate_batch,
    _estimate_from_scalars,
    estimated_shared_frames,
)
from repro.core.summarize import summarize_video
from repro.core.vitri import VideoSummary, ViTri
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.storage.serialization import ViTriRecord, ViTriRecordCodec
from repro.utils.counters import CostCounters
from repro.utils.rng import ensure_rng

# Counter fields that must match *exactly* between implementations: the
# logical work is identical even though the physical access pattern is
# batched.  page_requests / node visits are asserted separately as <=
# (the bulk path may skip redundant root-to-leaf descents).
LOGICAL_COUNTERS = (
    "similarity_computations",
    "distance_computations",
    "records_scanned",
    "records_decoded",
)


def logical_signature(counters):
    return {name: getattr(counters, name) for name in LOGICAL_COUNTERS}


# ---------------------------------------------------------------------------
# Layer 1: geometry kernel vs scalar oracle
# ---------------------------------------------------------------------------


def random_vitri_params(rng, *, degenerate_fraction=0.25):
    """Random (radius, count) with a controlled share of point masses."""
    if rng.random() < degenerate_fraction:
        radius = 0.0
    else:
        radius = float(rng.uniform(0.0, 2.0))
    count = int(rng.integers(1, 500))
    return radius, count


class TestGeometryKernelEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 20240601])
    @pytest.mark.parametrize("dim", [1, 2, 16, 64])
    def test_batch_matches_scalar_oracle(self, seed, dim):
        """Every lane of _estimate_batch equals the scalar oracle bitwise."""
        rng = ensure_rng(seed)
        batch = 64
        radius_q, count_q = random_vitri_params(rng)
        radii = np.empty(batch)
        counts = np.empty(batch)
        for i in range(batch):
            radii[i], counts[i] = random_vitri_params(rng)
        # Distance mix: disjoint, containment, lens, coincident centres.
        distances = np.concatenate(
            [
                rng.uniform(0.0, 4.0, size=batch - 16),
                np.zeros(8),
                np.abs(radii[:8] - radius_q),  # boundary of containment
            ]
        )
        got = _estimate_batch(
            dim, radius_q, count_q, radii, counts, distances
        )
        for i in range(batch):
            want = _estimate_from_scalars(
                dim,
                radius_q,
                count_q,
                float(radii[i]),
                int(counts[i]),
                float(distances[i]),
            )
            assert got[i] == want, (
                f"lane {i}: batch={got[i]!r} oracle={want!r} "
                f"(rq={radius_q}, r={radii[i]}, d={distances[i]})"
            )

    def test_batch_is_batch_size_independent(self):
        """Slicing a batch in half must not change any lane's bits."""
        rng = ensure_rng(3)
        dim = 16
        radii = rng.uniform(0.0, 1.5, size=40)
        counts = rng.integers(1, 300, size=40).astype(np.float64)
        distances = rng.uniform(0.0, 3.0, size=40)
        full = _estimate_batch(dim, 0.4, 50, radii, counts, distances)
        halves = np.concatenate(
            [
                _estimate_batch(
                    dim, 0.4, 50, radii[:13], counts[:13], distances[:13]
                ),
                _estimate_batch(
                    dim, 0.4, 50, radii[13:], counts[13:], distances[13:]
                ),
            ]
        )
        assert np.array_equal(full, halves)

    def test_point_mass_pairs(self):
        """Zero-radius (zero-variance cluster) cases on both sides."""
        dim = 8
        for rq, rc, d, expect_nonzero in [
            (0.0, 0.0, 0.0, True),  # coincident point masses
            (0.0, 0.0, 0.5, False),  # separated point masses
            (0.0, 1.0, 0.5, True),  # point query inside a sphere
            (1.0, 0.0, 0.5, True),  # point candidate inside the query
            (1.0, 0.0, 1.5, False),  # point candidate outside
        ]:
            got = _estimate_batch(
                dim, rq, 10, np.asarray([rc]), np.asarray([20.0]),
                np.asarray([d]),
            )
            want = _estimate_from_scalars(dim, rq, 10, rc, 20, d)
            assert got[0] == want
            assert (want > 0.0) is expect_nonzero

    def test_public_entry_point_uses_oracle(self):
        """estimated_shared_frames routes through the same oracle."""
        rng = ensure_rng(9)
        for _ in range(25):
            dim = int(rng.integers(1, 32))
            a = ViTri(
                position=rng.normal(size=dim),
                radius=float(rng.uniform(0.0, 1.0)),
                count=int(rng.integers(1, 100)),
            )
            b = ViTri(
                position=rng.normal(size=dim),
                radius=float(rng.uniform(0.0, 1.0)),
                count=int(rng.integers(1, 100)),
            )
            diff = a.position - b.position
            distance = float(np.sqrt(np.sum(diff * diff)))
            assert estimated_shared_frames(a, b) == _estimate_from_scalars(
                dim, a.radius, a.count, b.radius, b.count, distance
            )


# ---------------------------------------------------------------------------
# Layer 2a: columnar decode vs per-record decode
# ---------------------------------------------------------------------------


def assert_records_equal(got, want):
    assert got.video_id == want.video_id
    assert got.vitri_id == want.vitri_id
    assert got.count == want.count
    assert got.radius == want.radius
    assert np.array_equal(got.position, want.position)


def random_records(rng, dim, n):
    return [
        ViTriRecord(
            video_id=int(rng.integers(0, 2**32 - 2)),
            vitri_id=int(rng.integers(0, 2**32 - 1)),
            count=int(rng.integers(1, 2**31)),
            radius=float(rng.uniform(0.0, 5.0)),
            position=rng.normal(size=dim),
        )
        for _ in range(n)
    ]


class TestColumnarDecodeEquivalence:
    @pytest.mark.parametrize("seed", [0, 11, 202])
    @pytest.mark.parametrize("dim", [1, 3, 16])
    def test_decode_columns_matches_per_record_decode(self, seed, dim):
        rng = ensure_rng(seed)
        codec = ViTriRecordCodec(dim)
        records = random_records(rng, dim, 17)
        buffer = b"".join(codec.encode(r) for r in records)

        counters = CostCounters()
        columns = codec.decode_columns(buffer, len(records), counters=counters)
        assert counters.records_decoded == len(records)
        assert len(columns) == len(records)
        for i, record in enumerate(records):
            scalar = codec.decode(codec.encode(record))
            assert columns.video_ids[i] == scalar.video_id
            assert columns.vitri_ids[i] == scalar.vitri_id
            assert columns.counts[i] == scalar.count
            assert columns.radii[i] == scalar.radius
            assert np.array_equal(columns.positions[i], scalar.position)
            assert_records_equal(columns.record(i), scalar)

    def test_decode_batch_matches_concatenated_decode(self):
        rng = ensure_rng(5)
        codec = ViTriRecordCodec(4)
        records = random_records(rng, 4, 9)
        payloads = [codec.encode(r) for r in records]
        counters = CostCounters()
        columns = codec.decode_batch(payloads, counters=counters)
        assert counters.records_decoded == len(records)
        for i, payload in enumerate(payloads):
            assert_records_equal(columns.record(i), codec.decode(payload))

    def test_empty_inputs(self):
        codec = ViTriRecordCodec(2)
        counters = CostCounters()
        columns = codec.decode_columns(b"", 0, counters=counters)
        assert len(columns) == 0
        assert counters.records_decoded == 0
        assert len(codec.decode_batch([], counters=counters)) == 0

    def test_offset_decode(self):
        """decode_columns honours a nonzero byte offset into the page."""
        rng = ensure_rng(8)
        codec = ViTriRecordCodec(3)
        records = random_records(rng, 3, 5)
        buffer = b"\xaa" * 7 + b"".join(codec.encode(r) for r in records)
        columns = codec.decode_columns(buffer, len(records), offset=7)
        for i in range(len(records)):
            assert_records_equal(columns.record(i), records[i])


# ---------------------------------------------------------------------------
# Layer 2b: bulk range search vs per-range range search
# ---------------------------------------------------------------------------


def assert_bulk_matches_scalar(tree, ranges, payload_dtype=None):
    scalar_counters = CostCounters()
    bulk_counters = CostCounters()
    bulk = tree.range_search_many(
        ranges, payload_dtype=payload_dtype, counters=bulk_counters
    )
    assert len(bulk) == len(ranges)
    total = 0
    for (low, high), (keys, payloads) in zip(ranges, bulk):
        entries = tree.range_search(low, high, counters=scalar_counters)
        assert keys.shape[0] == len(entries)
        assert payloads.shape[0] == len(entries)
        for i, (key, payload) in enumerate(entries):
            assert float(keys[i]) == key
            assert payloads[i].tobytes() == payload
        total += len(entries)
    assert bulk_counters.records_scanned == total
    assert bulk_counters.page_requests <= scalar_counters.page_requests
    assert bulk_counters.btree_node_visits <= scalar_counters.btree_node_visits
    return total


class TestBulkRangeSearchEquivalence:
    @pytest.fixture()
    def tree(self):
        from repro.btree.tree import BPlusTree
        from repro.storage.buffer_pool import BufferPool
        from repro.storage.pager import Pager

        pool = BufferPool(Pager(), capacity=64)
        return BPlusTree.create(pool, payload_size=24)

    def payload(self, i):
        return i.to_bytes(8, "little") * 3

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_ranges(self, tree, seed):
        rng = ensure_rng(seed)
        keys = rng.uniform(-100.0, 100.0, size=400)
        for i, key in enumerate(keys):
            tree.insert(float(key), self.payload(i))
        ranges = []
        for _ in range(30):
            a, b = sorted(rng.uniform(-120.0, 120.0, size=2))
            ranges.append((float(a), float(b)))
        # Overlapping, duplicate, inverted and empty ranges too.
        ranges += [ranges[0], (50.0, -50.0), (200.0, 300.0)]
        found = assert_bulk_matches_scalar(tree, ranges)
        assert found > 0

    def test_duplicate_keys_and_boundaries(self, tree):
        for i in range(60):
            tree.insert(float(i % 5), self.payload(i))
        ranges = [(0.0, 0.0), (1.0, 3.0), (4.0, 4.0), (2.5, 2.5)]
        assert_bulk_matches_scalar(tree, ranges)

    def test_after_deletes_leave_sparse_leaves(self, tree):
        """Lazy deletes leave underfull/empty leaves the walk must skip."""
        for i in range(300):
            tree.insert(float(i), self.payload(i))
        for i in range(0, 300, 2):
            tree.delete(float(i))
        for i in range(100, 140):  # empty out a whole stretch
            if i % 2 == 1:
                tree.delete(float(i))
        ranges = [(-10.0, 320.0), (99.0, 141.0), (100.0, 100.0)]
        assert_bulk_matches_scalar(tree, ranges)

    def test_backward_jump_re_descends(self, tree):
        """A later range left of the cached leaf must re-descend, not scan."""
        for i in range(200):
            tree.insert(float(i), self.payload(i))
        ranges = [(150.0, 160.0), (10.0, 20.0), (155.0, 156.0)]
        assert_bulk_matches_scalar(tree, ranges)

    def test_nan_rejected(self, tree):
        tree.insert(1.0, self.payload(1))
        with pytest.raises(ValueError, match="NaN"):
            tree.range_search_many([(float("nan"), 1.0)])

    def test_payload_dtype_itemsize_checked(self, tree):
        tree.insert(1.0, self.payload(1))
        with pytest.raises(ValueError, match="itemsize"):
            tree.range_search_many([(0.0, 2.0)], payload_dtype=np.dtype("<f8"))


# ---------------------------------------------------------------------------
# Layer 3: end-to-end query equivalence
# ---------------------------------------------------------------------------


def build_corpus(seed, *, dim=16, epsilon=0.3):
    config = DatasetConfig(
        dim=dim,
        num_families=3,
        family_size=3,
        num_distractors=5,
        duration_classes=((30, 0.6), (20, 0.4)),
    )
    dataset = generate_dataset(config, seed=seed)
    summaries = [
        summarize_video(i, dataset.frames(i), epsilon, seed=seed + i)
        for i in range(dataset.num_videos)
    ]
    return summaries, VitriIndex.build(summaries, epsilon)


def assert_query_equivalent(index, query, k, method):
    scalar_counters = CostCounters()
    vector_counters = CostCounters()
    scalar = index.knn(
        query, k, method=method, impl="scalar", out_counters=scalar_counters
    )
    vector = index.knn(
        query, k, method=method, impl="vectorized",
        out_counters=vector_counters,
    )
    assert scalar.videos == vector.videos
    assert scalar.scores == vector.scores  # bitwise, not approx
    assert scalar.stats.candidates == vector.stats.candidates
    assert scalar.stats.ranges == vector.stats.ranges
    assert logical_signature(scalar_counters) == logical_signature(
        vector_counters
    )
    assert vector_counters.page_requests <= scalar_counters.page_requests
    assert (
        vector_counters.btree_node_visits
        <= scalar_counters.btree_node_visits
    )
    return vector


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    @pytest.mark.parametrize("method", ["composed", "naive"])
    def test_knn_equivalent_across_seeds(self, seed, method):
        summaries, index = build_corpus(seed)
        for query in summaries[:5]:
            assert_query_equivalent(index, query, 5, method)

    def test_similarity_range_equivalent(self):
        summaries, index = build_corpus(77)
        for query in summaries[:4]:
            for threshold in (0.05, 0.5, 0.99):
                scalar = index.similarity_range(
                    query, threshold, impl="scalar"
                )
                vector = index.similarity_range(
                    query, threshold, impl="vectorized"
                )
                assert scalar.videos == vector.videos
                assert scalar.scores == vector.scores

    def test_equivalent_after_inserts_and_tombstones(self):
        """Splits from inserts and tombstones from deletes keep identity."""
        summaries, index = build_corpus(55)
        held_out = summaries[-3:]
        base = summaries[: len(summaries) - 3]
        _, index = held_out, VitriIndex.build(base, 0.3)
        for extra in held_out:
            index.insert_video(extra)
        index.remove_video(base[1].video_id)
        index.remove_video(base[4].video_id)
        for query in summaries[:4]:
            for method in ("composed", "naive"):
                result = assert_query_equivalent(index, query, 6, method)
                assert base[1].video_id not in result.videos
                assert base[4].video_id not in result.videos

    def test_zero_variance_clusters(self):
        """Hand-built point-mass ViTris (radius exactly 0.0) end to end."""
        rng = ensure_rng(13)
        dim, epsilon = 8, 0.4
        summaries = []
        for video_id in range(12):
            anchor = rng.normal(size=dim)
            vitris = []
            for j in range(3):
                position = anchor + 0.05 * rng.normal(size=dim)
                radius = 0.0 if (video_id + j) % 2 == 0 else float(
                    rng.uniform(0.0, epsilon / 2.0)
                )
                vitris.append(
                    ViTri(
                        position=position,
                        radius=radius,
                        count=int(rng.integers(1, 40)),
                    )
                )
            summaries.append(
                VideoSummary(video_id=video_id, vitris=tuple(vitris))
            )
        index = VitriIndex.build(summaries, epsilon)
        for query in summaries:
            for method in ("composed", "naive"):
                assert_query_equivalent(index, query, 4, method)

    def test_single_video_single_vitri(self):
        """Smallest possible database: one video, one point-mass ViTri."""
        vitri = ViTri(position=np.zeros(4), radius=0.0, count=5)
        summary = VideoSummary(video_id=0, vitris=(vitri,))
        index = VitriIndex.build([summary], 0.5)
        assert_query_equivalent(index, summary, 1, "composed")
        assert_query_equivalent(index, summary, 1, "naive")

    def test_engine_impl_selection(self):
        """The serving engine's impl knob produces identical answers."""
        summaries, index = build_corpus(31)
        scalar_engine = repro.QueryEngine(index, impl="scalar")
        vector_engine = repro.QueryEngine(index, impl="vectorized")
        for query in summaries[:3]:
            a = scalar_engine.knn(query, 4)
            b = vector_engine.knn(query, 4)
            assert a.videos == b.videos
            assert a.scores == b.scores

    def test_unknown_impl_rejected(self):
        summaries, index = build_corpus(41)
        with pytest.raises(ValueError, match="impl"):
            index.knn(summaries[0], 3, impl="simd")
        with pytest.raises(ValueError, match="impl"):
            index.similarity_range(summaries[0], 0.5, impl="")

    def test_seqscan_agrees_with_both_impls(self):
        """The brute-force baseline stays bit-identical to the index."""
        from repro.baselines.seqscan import SequentialScan

        summaries, index = build_corpus(61)
        scan = SequentialScan(index)
        for query in summaries[:4]:
            brute = scan.knn(query, 5)
            scalar = index.knn(query, 5, impl="scalar")
            assert brute.videos == scalar.videos
            assert brute.scores == scalar.scores
