"""Property-based tests: the B+-tree against a sorted-list oracle."""

import struct

from hypothesis import given, settings, strategies as st

from repro.btree.checker import check_tree
from repro.btree.tree import BPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager


def payload(i: int) -> bytes:
    return struct.pack("<q", i)


keys = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
# Small key domain to force duplicates.
dup_keys = st.integers(min_value=0, max_value=9).map(float)


@settings(max_examples=30, deadline=None)
@given(values=st.lists(keys, min_size=0, max_size=300))
def test_inserts_match_oracle(values):
    pool = BufferPool(Pager(), capacity=32)
    tree = BPlusTree.create(pool, payload_size=8)
    oracle = []
    for i, key in enumerate(values):
        tree.insert(key, payload(i))
        oracle.append((key, payload(i)))
    oracle.sort(key=lambda kv: kv[0])
    check_tree(tree)
    got = list(tree.iter_entries())
    assert sorted(got) == sorted(oracle)
    assert [k for k, _ in got] == [k for k, _ in oracle]


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(dup_keys, min_size=1, max_size=200),
    lo=dup_keys,
    hi=dup_keys,
)
def test_range_search_matches_oracle(values, lo, hi):
    pool = BufferPool(Pager(), capacity=32)
    tree = BPlusTree.create(pool, payload_size=8)
    oracle = []
    for i, key in enumerate(values):
        tree.insert(key, payload(i))
        oracle.append((key, payload(i)))
    expected = sorted((k, p) for k, p in oracle if lo <= k <= hi)
    got = sorted(tree.range_search(lo, hi))
    assert got == expected


@settings(max_examples=20, deadline=None)
@given(values=st.lists(keys, min_size=0, max_size=250))
def test_bulk_load_equals_incremental(values):
    items = sorted(
        ((key, payload(i)) for i, key in enumerate(values)),
        key=lambda kv: kv[0],
    )
    bulk_tree = BPlusTree.create(BufferPool(Pager(), capacity=32), 8)
    bulk_tree.bulk_load(items)
    if items:
        check_tree(bulk_tree)
    assert list(bulk_tree.iter_entries()) == items


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(dup_keys, min_size=1, max_size=150),
    probe=dup_keys,
)
def test_point_search_matches_oracle(values, probe):
    tree = BPlusTree.create(BufferPool(Pager(), capacity=16), 8)
    oracle = {}
    for i, key in enumerate(values):
        tree.insert(key, payload(i))
        oracle.setdefault(key, []).append(payload(i))
    assert sorted(tree.search(probe)) == sorted(oracle.get(probe, []))
