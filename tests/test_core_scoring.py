"""Tests for the shared KNN scoring accumulator."""

import numpy as np
import pytest

from repro.core.scoring import ScoreAccumulator
from repro.core.similarity import video_similarity
from repro.core.vitri import VideoSummary, ViTri
from repro.storage.serialization import ViTriRecord


def vitri(offset, radius=0.4, count=10, dim=4):
    position = np.zeros(dim)
    position[0] = offset
    return ViTri(position=position, radius=radius, count=count)


def record(video_id, vitri_id, offset, radius=0.4, count=10, dim=4):
    position = np.zeros(dim)
    position[0] = offset
    return ViTriRecord(
        video_id=video_id,
        vitri_id=vitri_id,
        count=count,
        radius=radius,
        position=position,
    )


def summary(video_id, offsets, dim=4):
    return VideoSummary(
        video_id=video_id,
        vitris=tuple(vitri(o, dim=dim) for o in offsets),
    )


class TestScoreAccumulator:
    def test_matches_video_similarity(self):
        """Feeding a database summary's clusters through the accumulator
        reproduces video_similarity exactly."""
        query = summary(0, [0.0, 2.0, 5.0])
        database = summary(1, [0.1, 2.2, 9.0])
        accumulator = ScoreAccumulator(
            query, {1: database.num_frames}
        )
        for j, db_vitri in enumerate(database.vitris):
            rec = ViTriRecord(
                video_id=1,
                vitri_id=j,
                count=db_vitri.count,
                radius=db_vitri.radius,
                position=db_vitri.position,
            )
            accumulator.evaluate(rec, range(len(query.vitris)))
        expected = video_similarity(query, database)
        assert accumulator.scores()[1] == pytest.approx(expected)

    def test_zero_similarity_videos_excluded(self):
        query = summary(0, [0.0])
        accumulator = ScoreAccumulator(query, {5: 10})
        accumulator.evaluate(record(5, 0, offset=50.0), [0])
        assert accumulator.scores() == {}

    def test_evaluation_count(self):
        query = summary(0, [0.0, 1.0])
        accumulator = ScoreAccumulator(query, {1: 10})
        performed = accumulator.evaluate(record(1, 0, 0.0), [0, 1])
        assert performed == 2
        assert accumulator.evaluations == 2

    def test_partial_indices(self):
        """Evaluating only a subset of query ViTris (the naive method's
        per-range behaviour) accumulates only those contributions."""
        query = summary(0, [0.0, 0.0])
        full = ScoreAccumulator(query, {1: 10})
        full.evaluate(record(1, 0, 0.0), [0, 1])
        partial = ScoreAccumulator(query, {1: 10})
        partial.evaluate(record(1, 0, 0.0), [0])
        partial.evaluate(record(1, 0, 0.0), [1])
        assert full.scores()[1] == pytest.approx(partial.scores()[1])

    def test_db_side_capped_at_cluster_count(self):
        # Two overlapping query clusters both hit the same small database
        # cluster; the database side must not exceed its frame count.
        query = summary(0, [0.0, 0.01])
        accumulator = ScoreAccumulator(query, {1: 5})
        accumulator.evaluate(record(1, 0, 0.0, count=5), [0, 1])
        # query side <= 10+10, db side <= 5; denominator 20 + 5.
        assert accumulator.scores()[1] <= (20 + 5) / 25

    def test_score_clipped_at_one(self):
        query = summary(0, [0.0])
        accumulator = ScoreAccumulator(query, {1: 1})
        # A tiny "video" of 1 frame fully covered.
        accumulator.evaluate(record(1, 0, 0.0, count=1), [0])
        assert accumulator.scores()[1] <= 1.0

    def test_ranked_order_and_tiebreak(self):
        query = summary(0, [0.0])
        accumulator = ScoreAccumulator(query, {1: 10, 2: 10, 3: 10})
        accumulator.evaluate(record(1, 0, 0.0), [0])     # strong match
        accumulator.evaluate(record(2, 1, 0.3), [0])     # weaker
        accumulator.evaluate(record(3, 2, 0.3), [0])     # tie with 2
        ranked = accumulator.ranked(3)
        assert ranked[0][0] == 1
        assert [video for video, _ in ranked[1:]] == [2, 3]  # id tie-break

    def test_ranked_k_truncation(self):
        query = summary(0, [0.0])
        accumulator = ScoreAccumulator(query, {i: 10 for i in range(1, 6)})
        for i in range(1, 6):
            accumulator.evaluate(record(i, i, 0.0), [0])
        assert len(accumulator.ranked(2)) == 2
