"""Tests for the fault-tolerant scatter path (repro.shard.resilience).

Three load-bearing properties:

* **Determinism** — same seed means identical backoff schedules, hedge
  decisions, rankings and health counters across independent runs; all
  time comes from a :class:`VirtualClock`, all jitter from a seeded hash.
* **Degraded exactness** — with a shard hard-down, ``fail_fast=False``
  returns exactly the surviving-shards oracle ranking and the coverage
  report proves what is missing; strict mode still raises.
* **Cost discipline** — transient faults recover the fault-free rankings
  *and* cost counters bit-for-bit, which only holds if no retry's
  :class:`CostCounters` bundle is ever double-counted.
"""

import numpy as np
import pytest

from repro.core.index import VitriIndex
from repro.shard import (
    BreakerPolicy,
    CircuitBreaker,
    Coverage,
    FaultInjectingShard,
    FaultPolicy,
    HedgePolicy,
    KeyRangePartitioner,
    RetryPolicy,
    ScatterError,
    ShardDown,
    ShardFault,
    ShardFaultInjector,
    ShardedVideoDatabase,
)
from repro.utils.clock import VirtualClock

EPSILON = 0.3
NUM_SHARDS = 4


def make_fleet(summaries, num_shards=NUM_SHARDS, **kwargs):
    """A key-range fleet on a virtual clock with the result cache off.

    The cache must stay off: a cached repeat costs nothing, which would
    let a double-counting bug hide behind a hit.
    """
    kwargs.setdefault("clock", VirtualClock())
    kwargs.setdefault("cache_size", 0)
    fleet = ShardedVideoDatabase(
        EPSILON,
        partitioner=KeyRangePartitioner.fit(list(summaries), num_shards),
        **kwargs,
    )
    for summary in summaries:
        fleet.add_summary(summary)
    return fleet


def cost_signature(stats):
    """The deterministic cost fields of a query (wall time excluded)."""
    return (
        stats.page_requests,
        stats.physical_reads,
        stats.node_visits,
        stats.similarity_computations,
        stats.candidates,
        stats.ranges,
    )


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_same_seed_identical_schedules(self):
        first = RetryPolicy(max_attempts=5, seed=42)
        second = RetryPolicy(max_attempts=5, seed=42)
        for shard_id in range(6):
            assert first.schedule(shard_id) == second.schedule(shard_id)

    def test_different_seeds_differ(self):
        a = RetryPolicy(max_attempts=5, seed=1).schedule(0)
        b = RetryPolicy(max_attempts=5, seed=2).schedule(0)
        assert a != b

    def test_shards_get_decorrelated_jitter(self):
        policy = RetryPolicy(max_attempts=5, seed=0)
        assert policy.schedule(0) != policy.schedule(1)

    def test_backoff_bounded_by_jitter_band(self):
        policy = RetryPolicy(
            max_attempts=6,
            base_backoff=0.01,
            multiplier=2.0,
            max_backoff=0.05,
            jitter=0.5,
            seed=3,
        )
        for shard_id in range(4):
            for retry_index in range(1, policy.max_attempts):
                nominal = min(
                    policy.base_backoff
                    * policy.multiplier ** (retry_index - 1),
                    policy.max_backoff,
                )
                got = policy.backoff(shard_id, retry_index)
                assert nominal * 0.5 <= got <= nominal * 1.5

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff=0.01, multiplier=2.0, jitter=0.0
        )
        assert policy.schedule(7) == pytest.approx((0.01, 0.02, 0.04))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_backoff": 0.0},
            {"multiplier": -1.0},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


# ---------------------------------------------------------------------------
# HedgePolicy
# ---------------------------------------------------------------------------
class TestHedgePolicy:
    def test_absolute_threshold_wins(self):
        policy = HedgePolicy(after=0.02)
        assert policy.threshold([0.5] * 100) == 0.02

    def test_unarmed_until_min_samples(self):
        policy = HedgePolicy(percentile=0.9, min_samples=4)
        assert policy.threshold([0.1, 0.2, 0.3]) == float("inf")

    def test_percentile_once_armed(self):
        policy = HedgePolicy(percentile=0.5, min_samples=3)
        assert policy.threshold([0.3, 0.1, 0.2]) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(after=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(percentile=1.5)


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    POLICY = BreakerPolicy(
        failure_rate=0.5, window=4, min_volume=2, cooldown=1.0, probe_budget=1
    )

    def fail_until_open(self, breaker, now=0.0):
        for _ in range(self.POLICY.window):
            breaker.record(False, now)
        assert breaker.state == CircuitBreaker.OPEN

    def test_opens_on_failure_rate(self):
        breaker = CircuitBreaker(self.POLICY)
        breaker.record(True, 0.0)
        breaker.record(False, 0.0)  # 1/2 failures >= 0.5, volume met
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(0.5)

    def test_stays_closed_below_min_volume(self):
        breaker = CircuitBreaker(self.POLICY)
        breaker.record(False, 0.0)  # volume 1 < min_volume 2
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(0.0)

    def test_cooldown_then_half_open_probe_budget(self):
        breaker = CircuitBreaker(self.POLICY)
        self.fail_until_open(breaker)
        assert not breaker.allow(0.99)
        assert breaker.allow(1.0)  # cooldown elapsed -> probe admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow(1.0)  # probe budget exhausted

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(self.POLICY)
        self.fail_until_open(breaker)
        assert breaker.allow(1.0)
        breaker.record(True, 1.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(1.0)

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(self.POLICY)
        self.fail_until_open(breaker)
        assert breaker.allow(1.0)
        breaker.record(False, 1.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow(1.5)  # cooldown restarted at 1.0

    def test_force_open(self):
        breaker = CircuitBreaker(self.POLICY)
        breaker.force_open(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(min_volume=9, window=8)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_rate=0.0)
        with pytest.raises(TypeError):
            CircuitBreaker("not a policy")


# ---------------------------------------------------------------------------
# ScatterError aggregation (satellite: no worker error is discarded)
# ---------------------------------------------------------------------------
class TestScatterError:
    def test_aggregates_every_failure_with_attribution(self):
        failures = {
            3: ValueError("bad shard 3"),
            1: RuntimeError("shard 1 exploded"),
        }
        error = ScatterError(failures)
        text = str(error)
        lines = text.splitlines()
        # Headline is the first (lowest shard id) error's message.
        assert lines[0] == "shard 1 exploded"
        assert "shard 1: RuntimeError: shard 1 exploded" in text
        assert "shard 3: ValueError: bad shard 3" in text
        assert error.failures == failures
        assert error.__cause__ is failures[1]

    def test_requires_at_least_one_failure(self):
        with pytest.raises(ValueError):
            ScatterError({})

    def test_strict_scatter_reports_all_failing_shards(
        self, small_summaries
    ):
        """Legacy strict path (no policy): every worker error surfaces."""
        fleet = make_fleet(small_summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {
                    0: [ShardFault.hard_down()],
                    2: [ShardFault.hard_down()],
                }
            )
        )
        with pytest.raises(ScatterError) as excinfo:
            fleet.knn(small_summaries[0], 5, prune=False)
        assert sorted(excinfo.value.failures) == [0, 2]
        for exc in excinfo.value.failures.values():
            assert isinstance(exc, ShardDown)


# ---------------------------------------------------------------------------
# Fault injection plumbing
# ---------------------------------------------------------------------------
class TestShardFaultInjector:
    def test_counts_serving_ops_only(self, small_summaries):
        fleet = make_fleet(small_summaries)
        injector = ShardFaultInjector({})
        fleet.inject_shard_faults(injector)
        fleet.knn(small_summaries[0], 3, prune=False)
        for shard_id in range(fleet.num_shards):
            assert injector.operations(shard_id) == 1
        # Routing metadata (len, membership) is never an operation.
        assert len(fleet) == len(small_summaries)
        assert injector.operations(0) == 1

    def test_every_attempt_is_an_operation(self, small_summaries):
        fleet = make_fleet(small_summaries)
        injector = ShardFaultInjector(
            {1: [ShardFault.transient(errors=2)]}
        )
        fleet.inject_shard_faults(injector)
        fleet.knn(
            small_summaries[0],
            3,
            prune=False,
            fault_policy=FaultPolicy(retry=RetryPolicy(max_attempts=4)),
        )
        assert injector.operations(1) == 3  # two failures + the success
        assert injector.operations(0) == 1

    def test_rejects_nesting(self, small_summaries):
        fleet = make_fleet(small_summaries[:4])
        wrapped = FaultInjectingShard(
            fleet.shards[0], ShardFaultInjector({})
        )
        with pytest.raises(TypeError):
            FaultInjectingShard(wrapped, ShardFaultInjector({}))

    def test_fault_window_validation(self):
        with pytest.raises(ValueError):
            ShardFault("slow")  # slow needs a positive delay
        with pytest.raises(ValueError):
            ShardFault("error", first_op=3, last_op=2)
        with pytest.raises(ValueError):
            ShardFault("nonsense")


# ---------------------------------------------------------------------------
# Degraded-results protocol
# ---------------------------------------------------------------------------
DOWN_SHARD = 1


def survivors_oracle(fleet, summaries, down_shard):
    surviving = [
        s for s in summaries if fleet.shard_of(s.video_id) != down_shard
    ]
    assert surviving and len(surviving) < len(summaries)
    return VitriIndex.build(surviving, EPSILON, reference="optimal")


class TestDegradedResults:
    def test_hard_down_matches_survivor_oracle(self, small_summaries):
        fleet = make_fleet(small_summaries)
        oracle = survivors_oracle(fleet, small_summaries, DOWN_SHARD)
        fleet.inject_shard_faults(
            ShardFaultInjector({DOWN_SHARD: [ShardFault.hard_down()]})
        )
        for query in small_summaries[:6]:
            got = fleet.knn(
                query,
                5,
                prune=False,
                fault_policy=FaultPolicy(),
                fail_fast=False,
            )
            expected = oracle.knn(query, 5)
            assert got.videos == expected.videos
            assert np.allclose(got.scores, expected.scores)
            assert not got.coverage.complete
            # Early queries report the shard failed; once the breaker
            # opens mid-stream it reports tripped — missing either way.
            assert got.coverage.shards_missing == (DOWN_SHARD,)
            assert DOWN_SHARD not in got.coverage.shards_answered

    def test_strict_mode_still_raises(self, small_summaries):
        fleet = make_fleet(small_summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector({DOWN_SHARD: [ShardFault.hard_down()]})
        )
        with pytest.raises(ScatterError) as excinfo:
            fleet.knn(
                small_summaries[0],
                5,
                prune=False,
                fault_policy=FaultPolicy(),
                fail_fast=True,
            )
        assert list(excinfo.value.failures) == [DOWN_SHARD]

    def test_non_retryable_error_raises_even_degraded(
        self, small_summaries, monkeypatch
    ):
        """Retrying a bug is not resilience: a programming error inside
        a shard aborts the query even with ``fail_fast=False``."""
        fleet = make_fleet(small_summaries)

        def boom(*args, **kwargs):
            raise ValueError("programming error, not a fault")

        monkeypatch.setattr(fleet.shards[DOWN_SHARD], "knn", boom)
        with pytest.raises(ScatterError) as excinfo:
            fleet.knn(
                small_summaries[0],
                5,
                prune=False,
                fault_policy=FaultPolicy(),
                fail_fast=False,
            )
        assert list(excinfo.value.failures) == [DOWN_SHARD]
        assert isinstance(
            excinfo.value.failures[DOWN_SHARD], ValueError
        )

    def test_similarity_range_degrades_too(self, small_summaries):
        fleet = make_fleet(small_summaries)
        oracle = survivors_oracle(fleet, small_summaries, DOWN_SHARD)
        fleet.inject_shard_faults(
            ShardFaultInjector({DOWN_SHARD: [ShardFault.hard_down()]})
        )
        query = small_summaries[0]
        got = fleet.similarity_range(
            query,
            0.2,
            prune=False,
            fault_policy=FaultPolicy(),
            fail_fast=False,
        )
        expected = oracle.similarity_range(query, 0.2)
        assert got.videos == expected.videos
        assert not got.coverage.complete

    def test_fault_free_coverage_is_complete(self, small_summaries):
        fleet = make_fleet(small_summaries)
        got = fleet.knn(
            small_summaries[0], 5, prune=False, fault_policy=FaultPolicy()
        )
        assert got.coverage.complete
        assert got.coverage.fraction_answered == 1.0
        assert len(got.coverage.shards_answered) == NUM_SHARDS

    def test_pruned_shards_never_threaten_completeness(
        self, small_summaries
    ):
        fleet = make_fleet(small_summaries)
        for query in small_summaries[:6]:
            got = fleet.knn(
                query, 5, prune=True, fault_policy=FaultPolicy()
            )
            assert got.coverage.complete
            assert set(got.coverage.shards_pruned).isdisjoint(
                got.coverage.shards_answered
            )


class TestCoverage:
    def test_complete_iff_nothing_missing(self):
        good = Coverage(4, (0, 1, 2), (3,))
        assert good.complete
        assert good.shards_missing == ()
        bad = Coverage(4, (0, 2), (), shards_failed=(1,),
                       shards_timed_out=(3,))
        assert not bad.complete
        assert bad.shards_missing == (1, 3)
        assert bad.fraction_answered == pytest.approx(0.5)

    def test_to_dict_round_trips_flags(self):
        coverage = Coverage(4, (0,), (2,), shards_tripped=(1, 3))
        payload = coverage.to_dict()
        assert payload["complete"] is False
        assert payload["shards_tripped"] == [1, 3]


# ---------------------------------------------------------------------------
# Transient recovery: exact rankings, zero double-counted cost
# ---------------------------------------------------------------------------
class TestTransientRecovery:
    def test_retries_recover_reference_exactly(self, small_summaries):
        reference = make_fleet(small_summaries)
        expected = [
            reference.knn(query, 5, prune=False)
            for query in small_summaries[:6]
        ]

        fleet = make_fleet(small_summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {DOWN_SHARD: [ShardFault.transient(errors=2)]}
            )
        )
        policy = FaultPolicy(retry=RetryPolicy(max_attempts=4))
        for query, want in zip(small_summaries[:6], expected):
            got = fleet.knn(
                query, 5, prune=False, fault_policy=policy, fail_fast=False
            )
            assert got.videos == want.videos
            assert np.allclose(got.scores, want.scores)
            # Bit-identical cost: a double-counted retry bundle would
            # inflate the faulted query's counters above the reference.
            assert cost_signature(got.stats) == cost_signature(want.stats)
            assert got.coverage.complete

        health = fleet.fleet_health()
        assert health[DOWN_SHARD]["retries"] == 2
        assert health[DOWN_SHARD]["failures"] == 2
        assert health[DOWN_SHARD]["breaker_state"] == "closed"

    def test_exhausted_retries_fail_the_shard(self, small_summaries):
        fleet = make_fleet(small_summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {DOWN_SHARD: [ShardFault.transient(errors=5)]}
            )
        )
        got = fleet.knn(
            small_summaries[0],
            5,
            prune=False,
            fault_policy=FaultPolicy(retry=RetryPolicy(max_attempts=2)),
            fail_fast=False,
        )
        assert got.coverage.shards_failed == (DOWN_SHARD,)


# ---------------------------------------------------------------------------
# Breaker integration: a crashing shard trips, then probes heal it
# ---------------------------------------------------------------------------
class TestBreakerIntegration:
    POLICY = FaultPolicy(
        retry=RetryPolicy(max_attempts=2),
        breaker=BreakerPolicy(
            failure_rate=0.5,
            window=4,
            min_volume=2,
            cooldown=50.0,
            probe_budget=1,
        ),
    )

    def test_mid_stream_crash_opens_the_breaker(self, small_summaries):
        """Crash-point sweep: the shard dies mid-query-stream; the first
        failing query burns its retries, after which the breaker is open
        and later queries trip instead of re-attempting."""
        for crash_op in (1, 2, 3):
            fleet = make_fleet(small_summaries)
            fleet.inject_shard_faults(
                ShardFaultInjector(
                    {DOWN_SHARD: [ShardFault.hard_down(first_op=crash_op)]}
                )
            )
            tripped_seen = False
            for position, query in enumerate(small_summaries[:6]):
                got = fleet.knn(
                    query,
                    5,
                    prune=False,
                    fault_policy=self.POLICY,
                    fail_fast=False,
                )
                if tripped_seen:
                    assert got.coverage.shards_tripped == (DOWN_SHARD,)
                elif got.coverage.shards_tripped:
                    tripped_seen = True
            assert tripped_seen, f"breaker never opened (crash_op={crash_op})"
            health = fleet.fleet_health()
            assert health[DOWN_SHARD]["breaker_state"] == "open"
            assert health[DOWN_SHARD]["breaker_opens"] >= 1
            assert health[DOWN_SHARD]["trips"] > 0

    def test_probe_heals_after_cooldown(self, small_summaries):
        clock = VirtualClock()
        fleet = make_fleet(small_summaries, clock=clock)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {DOWN_SHARD: [ShardFault.transient(errors=2)]}
            )
        )
        reference = make_fleet(small_summaries)
        query = small_summaries[0]
        expected = reference.knn(query, 5, prune=False)

        # One query x two failed attempts -> the window hits min_volume
        # at failure rate 1.0 and the breaker opens.
        fleet.knn(
            query, 5, prune=False, fault_policy=self.POLICY, fail_fast=False
        )
        assert fleet.fleet_health()[DOWN_SHARD]["breaker_state"] == "open"

        # Before the cooldown the shard keeps tripping.
        got = fleet.knn(
            query, 5, prune=False, fault_policy=self.POLICY, fail_fast=False
        )
        assert got.coverage.shards_tripped == (DOWN_SHARD,)

        # After the cooldown a probe goes through; the fault window has
        # passed, so the probe succeeds and the breaker closes again.
        # (Advance past cooldown + the worker thread's small backoff
        # offsets, which shift the breaker's recorded open time.)
        clock.advance(self.POLICY.breaker.cooldown * 2)
        got = fleet.knn(
            query, 5, prune=False, fault_policy=self.POLICY, fail_fast=False
        )
        assert got.coverage.complete
        assert got.videos == expected.videos
        assert (
            fleet.fleet_health()[DOWN_SHARD]["breaker_state"] == "closed"
        )


# ---------------------------------------------------------------------------
# Hedging and deadlines
# ---------------------------------------------------------------------------
class TestHedgingAndDeadlines:
    DELAY = 0.05

    def test_hedge_fires_on_straggler_and_keeps_rankings(
        self, small_summaries
    ):
        reference = make_fleet(small_summaries)
        fleet = make_fleet(small_summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {DOWN_SHARD: [ShardFault.slow(self.DELAY)]}
            )
        )
        policy = FaultPolicy(hedge=HedgePolicy(after=self.DELAY / 2))
        for query in small_summaries[:4]:
            want = reference.knn(query, 5, prune=False)
            got = fleet.knn(
                query, 5, prune=False, fault_policy=policy, fail_fast=False
            )
            assert got.videos == want.videos
            assert got.coverage.complete
        health = fleet.fleet_health()
        assert health[DOWN_SHARD]["hedges_fired"] == 4
        assert health[0]["hedges_fired"] == 0

    def test_deadline_times_the_straggler_out(self, small_summaries):
        fleet = make_fleet(small_summaries)
        oracle = survivors_oracle(fleet, small_summaries, DOWN_SHARD)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {DOWN_SHARD: [ShardFault.slow(self.DELAY)]}
            )
        )
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=2), deadline=self.DELAY / 2
        )
        query = small_summaries[0]
        got = fleet.knn(
            query, 5, prune=False, fault_policy=policy, fail_fast=False
        )
        expected = oracle.knn(query, 5)
        assert got.videos == expected.videos
        assert got.coverage.shards_timed_out == (DOWN_SHARD,)
        assert fleet.fleet_health()[DOWN_SHARD]["timeouts"] == 2

    def test_exhausted_budget_never_runs_a_doomed_attempt(
        self, small_summaries
    ):
        """Regression: deadline enforcement is budget-aware, not post-hoc.

        Schedule a hard-down first op, then a slow fault whose delay
        exceeds the whole budget.  The old post-hoc check would run the
        retry to completion against the real shard and discard the
        result; budget-aware enforcement aborts it at the injected delay
        (before any real work) and skips the final attempt outright, so
        the real shard serves *zero* queries and wastes zero pages.
        """
        fleet = make_fleet(small_summaries)
        oracle = survivors_oracle(fleet, small_summaries, DOWN_SHARD)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {
                    DOWN_SHARD: [
                        ShardFault("down", first_op=1, last_op=1),
                        ShardFault.slow(self.DELAY, first_op=2),
                    ]
                }
            )
        )
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=3), deadline=self.DELAY / 2
        )
        query = small_summaries[0]
        got = fleet.knn(
            query, 5, prune=False, fault_policy=policy, fail_fast=False
        )
        expected = oracle.knn(query, 5)
        assert got.videos == expected.videos
        assert got.coverage.shards_timed_out == (DOWN_SHARD,)
        # The slow retry aborted at the injected delay and the final
        # attempt was skipped: the real shard never served anything.
        assert fleet.shards[DOWN_SHARD].inner.queries_served == 0
        health = fleet.fleet_health()[DOWN_SHARD]
        assert health["failures"] == 3  # down, budget-aborted, skipped
        assert health["timeouts"] == 2  # budget-aborted + skipped
        assert health["retries"] == 1  # the skipped attempt never slept
        assert health["wasted_page_reads"] == 0


# ---------------------------------------------------------------------------
# End-to-end determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def run_once(self, summaries):
        fleet = make_fleet(summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector(
                {
                    DOWN_SHARD: [ShardFault.transient(errors=2)],
                    2: [ShardFault.slow(0.05, first_op=2)],
                }
            )
        )
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=4, seed=9),
            hedge=HedgePolicy(after=0.02),
        )
        rankings = []
        for query in summaries[:6]:
            got = fleet.knn(
                query, 5, prune=False, fault_policy=policy, fail_fast=False
            )
            rankings.append((got.videos, tuple(got.scores)))
        return rankings, fleet.fleet_health()

    def test_two_runs_are_bit_identical(self, small_summaries):
        """Same seed -> identical rankings, hedge decisions, retries and
        latency percentiles across two independent fleets."""
        first_rankings, first_health = self.run_once(small_summaries)
        second_rankings, second_health = self.run_once(small_summaries)
        assert first_rankings == second_rankings
        assert first_health == second_health
        # The machinery actually engaged in this scenario.
        assert first_health[DOWN_SHARD]["retries"] > 0
        assert first_health[2]["hedges_fired"] > 0


# ---------------------------------------------------------------------------
# Health persistence (health.json)
# ---------------------------------------------------------------------------
class TestHealthPersistence:
    def test_open_breaker_survives_reopen(self, small_summaries, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = make_fleet(small_summaries, path=path)
        fleet.inject_shard_faults(
            ShardFaultInjector({DOWN_SHARD: [ShardFault.hard_down()]})
        )
        policy = FaultPolicy(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerPolicy(
                failure_rate=0.5, window=4, min_volume=2, cooldown=100.0
            ),
        )
        for query in small_summaries[:3]:
            fleet.knn(
                query, 5, prune=False, fault_policy=policy, fail_fast=False
            )
        before = fleet.fleet_health()
        assert before[DOWN_SHARD]["breaker_state"] == "open"
        fleet.close()

        reopened = ShardedVideoDatabase(path=path, clock=VirtualClock())
        after = reopened.fleet_health()
        assert after[DOWN_SHARD]["breaker_state"] == "open"
        assert after[DOWN_SHARD]["failures"] == before[DOWN_SHARD]["failures"]
        assert after[DOWN_SHARD]["retries"] == before[DOWN_SHARD]["retries"]
        # The restored breaker keeps failing fast until its cooldown.
        got = reopened.knn(
            small_summaries[0],
            5,
            prune=False,
            fault_policy=policy,
            fail_fast=False,
        )
        assert got.coverage.shards_tripped == (DOWN_SHARD,)
        reopened.close()

    def test_healthy_fleet_reopens_closed(self, small_summaries, tmp_path):
        path = str(tmp_path / "fleet")
        fleet = make_fleet(small_summaries, path=path)
        fleet.knn(small_summaries[0], 5, fault_policy=FaultPolicy())
        fleet.close()
        reopened = ShardedVideoDatabase(path=path, clock=VirtualClock())
        health = reopened.fleet_health()
        assert all(
            entry["breaker_state"] == "closed" for entry in health.values()
        )
        reopened.close()


# ---------------------------------------------------------------------------
# Serving metrics
# ---------------------------------------------------------------------------
class TestServingMetrics:
    def test_batch_metrics_count_degradation(self, small_summaries):
        fleet = make_fleet(small_summaries)
        fleet.inject_shard_faults(
            ShardFaultInjector({DOWN_SHARD: [ShardFault.hard_down()]})
        )
        batch = fleet.serve_many(
            list(small_summaries[:5]),
            5,
            prune=False,
            fault_policy=FaultPolicy(retry=RetryPolicy(max_attempts=2)),
            fail_fast=False,
        )
        metrics = batch.metrics
        assert metrics.degraded_queries == 5
        # Survivors answered every query, so nothing was unavailable.
        assert metrics.availability == 1.0
        assert metrics.retries > 0
        payload = metrics.to_dict()
        assert payload["degraded_queries"] == 5
        assert payload["availability"] == 1.0
