"""Engine-level tests: suppressions, baseline round-trip, CLI behaviour."""

import json
import subprocess
import sys
import textwrap

from repro.analysis import Baseline, lint_paths, lint_source
from repro.analysis.baseline import BaselineError
from repro.analysis.cli import main as vilint_main
from repro.analysis.engine import discover_files
from repro.cli import main as repro_main

VIOLATION = textwrap.dedent(
    """\
    from __future__ import annotations

    import numpy as np

    def sample():
        return np.random.uniform(0.0, 1.0)
    """
)


def write(tmp_path, name, content):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(content))
    return path


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_same_line_suppression(self):
        source = (
            "import numpy as np\n"
            "x = np.random.uniform()  # vilint: disable=seeded-rng -- fixture\n"
        )
        assert not lint_source(source, select=["seeded-rng"])

    def test_suppression_is_rule_specific(self):
        source = (
            "import numpy as np\n"
            "x = np.random.uniform()  # vilint: disable=float-equality\n"
        )
        diagnostics = lint_source(source, select=["seeded-rng", "float-equality"])
        assert [d.rule for d in diagnostics] == ["seeded-rng"]

    def test_multiple_rules_one_directive(self):
        source = (
            "import numpy as np\n"
            "x = (np.random.uniform() == 0.0)"
            "  # vilint: disable=seeded-rng,float-equality\n"
        )
        assert not lint_source(source, select=["seeded-rng", "float-equality"])

    def test_disable_all(self):
        source = (
            "import numpy as np\n"
            "x = np.random.uniform()  # vilint: disable=all\n"
        )
        assert not lint_source(source, select=["seeded-rng"])

    def test_file_wide_suppression(self):
        source = (
            "# vilint: disable-file=seeded-rng -- sanctioned wrapper module\n"
            "import numpy as np\n"
            "a = np.random.uniform()\n"
            "b = np.random.normal()\n"
        )
        assert not lint_source(source, select=["seeded-rng"])

    def test_unsuppressed_line_still_flagged(self):
        source = (
            "import numpy as np\n"
            "a = np.random.uniform()  # vilint: disable=seeded-rng\n"
            "b = np.random.normal()\n"
        )
        diagnostics = lint_source(source, select=["seeded-rng"])
        assert [d.line for d in diagnostics] == [3]

    def test_multiline_statement_suppressed_on_anchor_line(self):
        # Diagnostics anchor where the statement starts; the directive
        # belongs on that line even when the call spans several.
        source = (
            "import numpy as np\n"
            "x = np.random.uniform(  # vilint: disable=seeded-rng -- fixture\n"
            "    0.0,\n"
            "    1.0,\n"
            ")\n"
        )
        assert not lint_source(source, select=["seeded-rng"])

    def test_multiline_statement_directive_on_closing_line_ignored(self):
        source = (
            "import numpy as np\n"
            "x = np.random.uniform(\n"
            "    0.0,\n"
            "    1.0,\n"
            ")  # vilint: disable=seeded-rng -- wrong line, must not apply\n"
        )
        diagnostics = lint_source(source, select=["seeded-rng"])
        assert [d.line for d in diagnostics] == [2]


# ---------------------------------------------------------------------------
# Baseline round-trip
# ---------------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_absorbs_findings(self, tmp_path):
        module = write(tmp_path, "pkg/mod.py", VIOLATION)
        baseline_path = tmp_path / "vilint.baseline"

        # First run: finding reported.
        result = lint_paths([str(module)])
        assert [d.rule for d in result.diagnostics] == ["seeded-rng"]
        assert result.exit_code == 1

        # Write the baseline, reload it, re-run: finding absorbed.
        baseline_path.write_text(Baseline.render(result.diagnostics))
        baseline = Baseline.load(str(baseline_path))
        again = lint_paths([str(module)], baseline=baseline)
        assert again.diagnostics == []
        assert again.baselined == 1
        assert again.stale_baseline == []
        assert again.exit_code == 0

    def test_rendered_baseline_carries_comment_per_entry(self, tmp_path):
        module = write(tmp_path, "mod.py", VIOLATION)
        result = lint_paths([str(module)])
        content = Baseline.render(result.diagnostics)
        entry_lines = [
            line
            for line in content.splitlines()
            if line and not line.startswith("#")
        ]
        assert entry_lines, content
        assert all("#" in line for line in entry_lines)

    def test_stale_entry_reported(self, tmp_path):
        clean = write(tmp_path, "clean.py", "from __future__ import annotations\n")
        baseline_path = write(
            tmp_path,
            "vilint.baseline",
            f"{clean}:3: seeded-rng  # long since fixed\n",
        )
        baseline = Baseline.load(str(baseline_path))
        result = lint_paths([str(clean)], baseline=baseline)
        assert result.exit_code == 0
        assert result.stale_baseline == [(str(clean), 3, "seeded-rng")]

    def test_baseline_does_not_absorb_other_rules(self, tmp_path):
        module = write(tmp_path, "mod.py", VIOLATION)
        result = lint_paths([str(module)])
        (finding,) = result.diagnostics
        baseline_path = write(
            tmp_path,
            "vilint.baseline",
            f"{finding.path}:{finding.line}: float-equality  # wrong rule\n",
        )
        baseline = Baseline.load(str(baseline_path))
        again = lint_paths([str(module)], baseline=baseline)
        assert [d.rule for d in again.diagnostics] == ["seeded-rng"]

    def test_unparseable_baseline_raises(self, tmp_path):
        bad = write(tmp_path, "vilint.baseline", "not a baseline entry\n")
        try:
            Baseline.load(str(bad))
        except BaselineError as error:
            assert "unparseable" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected BaselineError")


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------
class TestEngine:
    def test_discover_skips_pycache_and_sorts(self, tmp_path):
        write(tmp_path, "b.py", "")
        write(tmp_path, "a.py", "")
        write(tmp_path, "__pycache__/c.py", "")
        found = discover_files([str(tmp_path)])
        assert [p.split("/")[-1] for p in found] == ["a.py", "b.py"]

    def test_syntax_error_becomes_parse_error_diagnostic(self, tmp_path):
        module = write(tmp_path, "broken.py", "def broken(:\n")
        result = lint_paths([str(module)])
        assert [d.rule for d in result.diagnostics] == ["parse-error"]
        assert result.exit_code == 1

    def test_missing_path_raises(self):
        try:
            lint_paths(["no/such/path.py"])
        except FileNotFoundError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected FileNotFoundError")

    def test_parallel_jobs_output_identical(self, tmp_path):
        for index in range(6):
            write(tmp_path, f"mod_{index}.py", VIOLATION)
        serial = lint_paths([str(tmp_path)], jobs=1)
        parallel = lint_paths([str(tmp_path)], jobs=4)
        assert serial.diagnostics == parallel.diagnostics
        assert serial.files_checked == parallel.files_checked
        assert serial.suppressed == parallel.suppressed

    def test_library_rules_relax_in_test_tier(self, tmp_path):
        # future-annotations is library-only; seeded default_rng with a
        # literal seed is allowed outside the library tier.
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
        )
        library = write(tmp_path, "lib/mod.py", source)
        test = write(tmp_path, "tests/test_mod.py", source)
        lib_rules = {
            d.rule
            for d in lint_paths(
                [str(library)], select=["future-annotations", "seeded-rng"]
            ).diagnostics
        }
        test_rules = {
            d.rule
            for d in lint_paths(
                [str(test)], select=["future-annotations", "seeded-rng"]
            ).diagnostics
        }
        assert lib_rules == {"future-annotations", "seeded-rng"}
        assert test_rules == set()


# ---------------------------------------------------------------------------
# CLI (module and repro-video subcommand)
# ---------------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        dirty = write(tmp_path, "dirty.py", VIOLATION)
        clean = write(tmp_path, "clean.py", "from __future__ import annotations\n")
        assert vilint_main([str(clean), "--no-baseline"]) == 0
        assert vilint_main([str(dirty), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "seeded-rng" in out
        assert "VIL002" in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        clean = write(tmp_path, "clean.py", "")
        assert vilint_main([str(clean), "--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_json_format(self, tmp_path, capsys):
        dirty = write(tmp_path, "dirty.py", VIOLATION)
        assert vilint_main([str(dirty), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "seeded-rng"
        assert finding["line"] == 6

    def test_update_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "dirty.py", VIOLATION)
        assert vilint_main(["dirty.py", "--update-baseline"]) == 0
        assert (tmp_path / "vilint.baseline").exists()
        capsys.readouterr()
        # Default baseline discovery picks the file up from the cwd.
        assert vilint_main(["dirty.py"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_repro_video_lint_subcommand(self, tmp_path, capsys):
        dirty = write(tmp_path, "dirty.py", VIOLATION)
        assert repro_main(["lint", str(dirty), "--no-baseline"]) == 1
        assert "seeded-rng" in capsys.readouterr().out
        assert repro_main(["lint", "--list-rules"]) == 0

    def test_update_baseline_preserves_justifications(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        write(tmp_path, "dirty.py", VIOLATION)
        assert vilint_main(["dirty.py", "--update-baseline"]) == 0
        baseline = tmp_path / "vilint.baseline"
        content = baseline.read_text()
        entry = next(
            line
            for line in content.splitlines()
            if line and not line.startswith("#")
        )
        head, _, _ = entry.partition("#")
        reviewed = head + "# reviewed 2026-08: fixture RNG is deliberate"
        baseline.write_text(content.replace(entry, reviewed))
        capsys.readouterr()
        # Regenerating must keep the hand-written justification verbatim.
        assert vilint_main(["dirty.py", "--update-baseline"]) == 0
        assert "reviewed 2026-08: fixture RNG is deliberate" in (
            baseline.read_text()
        )

    def test_concurrency_flag_excludes_select(self, tmp_path, capsys):
        clean = write(tmp_path, "clean.py", "")
        code = vilint_main(
            [str(clean), "--concurrency", "--select", "seeded-rng"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_concurrency_flag_runs_only_lock_rules(self, tmp_path, capsys):
        # A seeded-rng violation is invisible under --concurrency.
        dirty = write(tmp_path, "dirty.py", VIOLATION)
        assert vilint_main([str(dirty), "--concurrency", "--no-baseline"]) == 0
        capsys.readouterr()

    def test_lock_graph_dot_written(self, tmp_path, capsys):
        source = """\
        from __future__ import annotations

        import threading


        class Outer:
            def __init__(self) -> None:
                self._lock = threading.Lock()
                self._inner = Inner()

            def touch(self) -> None:
                with self._lock:
                    self._inner.poke()


        class Inner:
            def __init__(self) -> None:
                self._lock = threading.Lock()

            def poke(self) -> None:
                with self._lock:
                    pass
        """
        module = write(tmp_path, "locks_mod.py", source)
        target = tmp_path / "graph.dot"
        assert vilint_main(
            [str(module), "--no-baseline", "--lock-graph-dot", str(target)]
        ) == 0
        dot = target.read_text()
        assert '"Outer._lock" -> "Inner._lock"' in dot
        capsys.readouterr()

    def test_python_dash_m_entry_point(self, tmp_path):
        dirty = write(tmp_path, "dirty.py", VIOLATION)
        process = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(dirty), "--no-baseline"],
            capture_output=True,
            text=True,
        )
        assert process.returncode == 1
        assert "seeded-rng" in process.stdout
