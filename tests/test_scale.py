"""Medium-scale integration: the invariants must hold beyond toy sizes.

Several hundred videos / ~1000 ViTris, multi-level B+-tree, mixed bulk +
dynamic construction, removals, and cross-method result equality.  This
is the closest the test suite gets to the benchmark workloads.
"""

import numpy as np
import pytest

import repro
from repro.baselines import SequentialScan
from repro.btree.checker import check_tree
from repro.datasets import DatasetConfig, generate_dataset

EPSILON = 0.2


@pytest.fixture(scope="module")
def big_workload():
    config = DatasetConfig.indexing_preset(
        num_distractors=350,
        scene_weight=10.0,
        palette_weight=12.0,
        shot_weight=2.0,
        duration_classes=((120, 0.5), (80, 0.5)),
        dim=32,  # keep the records small enough for a quick build
    )
    dataset = generate_dataset(config, seed=555)
    summaries = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)
    return dataset, summaries, index


class TestScale:
    def test_workload_is_nontrivial(self, big_workload):
        dataset, summaries, index = big_workload
        assert index.num_vitris >= 300
        assert index.btree.height >= 2

    def test_btree_invariants(self, big_workload):
        _, _, index = big_workload
        check_tree(index.btree)

    def test_index_equals_scan_sampled(self, big_workload):
        dataset, summaries, index = big_workload
        scan = SequentialScan(index)
        for query_id in range(0, dataset.num_videos, 23):
            a = index.knn(summaries[query_id], 20, cold=True)
            b = scan.knn(summaries[query_id], 20)
            assert a.videos == b.videos
            assert np.allclose(a.scores, b.scores)

    def test_methods_agree_sampled(self, big_workload):
        dataset, summaries, index = big_workload
        for query_id in range(0, dataset.num_videos, 31):
            composed = index.knn(summaries[query_id], 20, method="composed")
            naive = index.knn(summaries[query_id], 20, method="naive")
            assert composed.videos == naive.videos

    def test_index_prunes_meaningfully(self, big_workload):
        dataset, summaries, index = big_workload
        scan = SequentialScan(index)
        index_pages = 0
        scan_pages = 0
        for query_id in range(0, 40, 4):
            index_pages += index.knn(
                summaries[query_id], 20, cold=True
            ).stats.page_requests
            scan_pages += scan.knn(summaries[query_id], 20).stats.page_requests
        assert index_pages < scan_pages

    def test_mixed_growth_and_removal(self, big_workload):
        dataset, summaries, index = big_workload
        half = len(summaries) // 2
        grown = repro.VitriIndex.build(summaries[:half], EPSILON)
        for summary in summaries[half:]:
            grown.insert_video(summary)
        victims = [summaries[3].video_id, summaries[half + 3].video_id]
        for victim in victims:
            grown.remove_video(victim)
        check_tree(grown.btree)
        result = grown.knn(summaries[0], dataset.num_videos, cold=True)
        assert not set(victims) & set(result.videos)
        # The surviving content still matches a freshly built index.
        survivors = [
            s for s in summaries if s.video_id not in victims
        ]
        fresh = repro.VitriIndex.build(survivors, EPSILON)
        a = grown.knn(summaries[0], 15, cold=True)
        b = fresh.knn(summaries[0], 15, cold=True)
        assert a.videos == b.videos
