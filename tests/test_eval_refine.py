"""Tests for filter-and-refine retrieval."""

import numpy as np
import pytest

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import GroundTruthCache, precision_at_k
from repro.eval.refine import refine_ranking, refined_knn

EPSILON = 0.3


@pytest.fixture(scope="module")
def workload():
    config = DatasetConfig.precision_preset(
        dim=24,
        num_families=5,
        family_size=4,
        num_distractors=10,
        duration_classes=((40, 0.5), (25, 0.5)),
    )
    dataset = generate_dataset(config, seed=404)
    summaries = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)
    return dataset, summaries, index


class TestRefineRanking:
    def test_exact_scores(self, workload):
        dataset, summaries, index = workload
        ranked = refine_ranking(
            dataset, dataset.frames(0), [0, 1, 5], EPSILON
        )
        assert ranked[0] == (0, pytest.approx(1.0))
        for video, score in ranked:
            expected = repro.frame_similarity(
                dataset.frames(0), dataset.frames(video), EPSILON
            )
            assert score == pytest.approx(expected)

    def test_sorted_descending(self, workload):
        dataset, summaries, index = workload
        ranked = refine_ranking(
            dataset, dataset.frames(2), list(range(10)), EPSILON
        )
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_epsilon(self, workload):
        dataset, _, _ = workload
        with pytest.raises(ValueError):
            refine_ranking(dataset, dataset.frames(0), [0], 0.0)


class TestRefinedKnn:
    def test_self_first_with_exact_score(self, workload):
        dataset, summaries, index = workload
        result = refined_knn(index, dataset, summaries, 0, k=3)
        assert result.videos[0] == 0
        assert result.scores[0] == pytest.approx(1.0)

    def test_never_hurts_precision(self, workload):
        dataset, summaries, index = workload
        ground_truth = GroundTruthCache(dataset)
        k = 4
        coarse_precision = []
        refined_precision = []
        for family in range(5):
            query_id = dataset.family_members(family)[0]
            relevant = ground_truth.top_k(query_id, k, EPSILON)
            coarse = index.knn(summaries[query_id], k).videos
            refined = refined_knn(
                index, dataset, summaries, query_id, k=k, overfetch=4
            ).videos
            coarse_precision.append(precision_at_k(relevant, coarse))
            refined_precision.append(precision_at_k(relevant, refined))
        assert np.mean(refined_precision) >= np.mean(coarse_precision) - 1e-9

    def test_overfetch_bounds_candidates(self, workload):
        dataset, summaries, index = workload
        result = refined_knn(index, dataset, summaries, 1, k=2, overfetch=2)
        assert len(result) <= 2

    def test_invalid_arguments(self, workload):
        dataset, summaries, index = workload
        with pytest.raises(ValueError):
            refined_knn(index, dataset, summaries, 0, k=0)
        with pytest.raises(ValueError):
            refined_knn(index, dataset, summaries, 0, k=2, overfetch=0)
