"""Shard-server tests: correctness over TCP, robustness, clock seams.

The correctness bar is bit-identity: a query answered over the wire
must return the same videos, the same score bits and the same counter
bundle as the same query against an identical in-process shard.  The
robustness bar is that no sequence of hostile bytes on one connection
costs more than that connection.
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.serve.protocol import (
    FRAME_ERROR,
    FRAME_HEADER_BYTES,
    FRAME_REQUEST,
    MAGIC,
    MAX_FRAME_BYTES,
    decode_error,
    decode_frame_header,
    payload_to_exception,
)
from repro.serve.shard_server import ShardServer
from repro.serve.transport import RemoteShard, RemoteShardClient
from repro.shard.resilience import ShardTimeout
from repro.shard.shard import Shard
from repro.utils.clock import Deadline, SystemClock, VirtualClock
from repro.utils.counters import CostCounters
from tests.test_golden_rankings import EPSILON, K, build_corpus


def make_shard(summaries, shard_id: int = 0) -> Shard:
    shard = Shard(shard_id, epsilon=EPSILON)
    for summary in summaries:
        shard.add_summary(summary)
    return shard


@pytest.fixture(scope="module")
def corpus():
    summaries, _ = build_corpus(101)
    return summaries


@pytest.fixture()
def served_shard(corpus):
    """A served shard, its remote proxy, and an identical local twin."""
    server = ShardServer(make_shard(corpus))
    host, port = server.run_in_thread()
    remote = RemoteShard(0, host, port)
    local = make_shard(corpus)
    try:
        yield server, remote, local
    finally:
        remote.close()
        server.drain()
        assert server.wait_closed(10.0)
        local.close()


def deterministic(bundle: CostCounters) -> dict:
    """A bundle's snapshot minus its wall-clock stage timers (``*_s``)."""
    return {
        key: value
        for key, value in bundle.snapshot().items()
        if not key.endswith("_s")
    }


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    def read_exactly(count: int) -> bytes:
        data = bytearray()
        while len(data) < count:
            chunk = sock.recv(count - len(data))
            if not chunk:
                raise ConnectionError("peer closed")
            data.extend(chunk)
        return bytes(data)

    frame_type, length = decode_frame_header(read_exactly(FRAME_HEADER_BYTES))
    return frame_type, read_exactly(length)


class TestCorrectness:
    def test_knn_bit_identical_and_counters_fold(self, served_shard):
        _, remote, local = served_shard
        query = local.summaries()[0]
        local_bundle, remote_bundle = CostCounters(), CostCounters()
        want = local.knn(query, K, out_counters=local_bundle)
        got = remote.knn(query, K, out_counters=remote_bundle)
        assert got.videos == want.videos
        assert got.scores == want.scores  # bitwise across the wire
        assert deterministic(remote_bundle) == deterministic(local_bundle)

    def test_similarity_range_bit_identical(self, served_shard):
        _, remote, local = served_shard
        query = local.summaries()[1]
        want = local.similarity_range(query, 0.1)
        got = remote.similarity_range(query, 0.1)
        assert got.videos == want.videos
        assert got.scores == want.scores

    def test_may_contain_matches_and_counts_io(self, served_shard):
        _, remote, local = served_shard
        query = local.summaries()[2]
        local_bundle, remote_bundle = CostCounters(), CostCounters()
        want = local.may_contain(query, counters=local_bundle)
        got = remote.may_contain(query, counters=remote_bundle)
        assert got == want
        assert deterministic(remote_bundle) == deterministic(local_bundle)

    def test_introspection_surface(self, served_shard):
        server, remote, local = served_shard
        assert remote.shard_id == 0
        assert len(remote) == len(local)
        assert remote.video_ids() == local.video_ids()
        assert remote._engine is None  # router's cache-tally seam
        status = remote.status()
        assert status["videos"] == len(local)
        assert status["draining"] is False
        remote.knn(local.summaries()[0], K)
        assert remote.status()["queries_served"] >= status["queries_served"]
        assert server.requests_served > 0

    def test_spent_budget_refused_with_typed_timeout(self, served_shard):
        _, remote, local = served_shard
        spent = Deadline(SystemClock(), 0.0)
        with pytest.raises(ShardTimeout, match="refusing to start"):
            remote.knn(local.summaries()[0], K, deadline=spent)

    def test_unknown_op_is_typed_value_error(self, served_shard):
        _, remote, _ = served_shard
        with pytest.raises(ValueError, match="unknown op"):
            remote._client.request("frobnicate")

    def test_query_op_without_summary_rejected(self, served_shard):
        _, remote, _ = served_shard
        with pytest.raises(ValueError, match="requires a query summary"):
            remote._client.request("knn", {"k": 1})


class TestRobustness:
    def test_garbage_bytes_cost_one_connection(self, served_shard):
        server, remote, local = served_shard
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
            frame_type, payload = read_frame(sock)
            assert frame_type == FRAME_ERROR
            exc = payload_to_exception(decode_error(payload))
            assert "magic" in str(exc)
            assert sock.recv(1) == b""  # server hung up on us
        # ...but the server itself is fine.
        want = local.knn(local.summaries()[0], K)
        assert remote.knn(local.summaries()[0], K).scores == want.scores

    def test_oversized_length_prefix_rejected_without_allocation(
        self, served_shard
    ):
        server, remote, local = served_shard
        header = struct.pack("!2sBI", MAGIC, FRAME_REQUEST, MAX_FRAME_BYTES + 1)
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(header)
            # The error comes back immediately: the server rejected the
            # header without waiting for (or allocating) the claimed
            # 16 MiB + 1 payload, which we never send.
            frame_type, payload = read_frame(sock)
            assert frame_type == FRAME_ERROR
            assert "cap" in str(payload_to_exception(decode_error(payload)))
            assert sock.recv(1) == b""
        assert remote.knn(local.summaries()[0], K).videos  # still serving

    def test_mid_frame_disconnect_tolerated(self, served_shard):
        server, remote, local = served_shard
        frame = struct.pack("!2sBI", MAGIC, FRAME_REQUEST, 100) + b"partial"
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(frame)
        # Connection dropped mid-payload; the server shrugs it off.
        want = local.knn(local.summaries()[0], K)
        assert remote.knn(local.summaries()[0], K).scores == want.scores

    def test_truncated_header_disconnect_tolerated(self, served_shard):
        server, remote, local = served_shard
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(b"V")  # one byte of magic, then gone
        assert remote.may_contain(local.summaries()[0]) in (True, False)


class TestDrain:
    def test_drain_op_acks_then_shuts_down(self, corpus):
        server = ShardServer(make_shard(corpus))
        host, port = server.run_in_thread()
        client = RemoteShardClient(host, port)
        assert client.request("drain") == {"draining": True}
        assert server.wait_closed(10.0)
        client.close()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0).close()

    def test_drain_is_idempotent_from_any_thread(self, corpus):
        server = ShardServer(make_shard(corpus))
        server.run_in_thread()
        server.drain()
        server.drain()
        assert server.wait_closed(10.0)
        server.drain()  # after shutdown: a no-op, not an error


class TestVirtualClockSeam:
    def test_sequential_requests_never_falsely_expire(self, corpus):
        # The deadline is built on the worker thread against the
        # server's own clock; a VirtualClock's thread-local offsets must
        # therefore never leak one request's sleeps into the next
        # request's budget.
        server = ShardServer(make_shard(corpus), clock=VirtualClock())
        host, port = server.run_in_thread()
        remote = RemoteShard(0, host, port)
        try:
            query = corpus[0]
            fresh = Deadline(SystemClock(), 30.0)
            first = remote.knn(query, K, deadline=fresh)
            for _ in range(5):
                again = remote.knn(
                    query, K, deadline=Deadline(SystemClock(), 30.0)
                )
                assert again.scores == first.scores
        finally:
            remote.close()
            server.drain()
            assert server.wait_closed(10.0)

    def test_zero_budget_times_out_under_virtual_clock(self, corpus):
        server = ShardServer(make_shard(corpus), clock=VirtualClock())
        host, port = server.run_in_thread()
        remote = RemoteShard(0, host, port)
        try:
            with pytest.raises(ShardTimeout):
                remote.knn(corpus[0], K, deadline=Deadline(SystemClock(), 0.0))
        finally:
            remote.close()
            server.drain()
            assert server.wait_closed(10.0)
