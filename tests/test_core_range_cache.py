"""Tests for repro.core.range_cache (the L2 composed-range tier).

Unit tests pin the cache's own contract — LRU bounds, epoch scoping on
the content token, the ``fetch_many`` protocol — and the engine-level
tests pin what makes the tier safe to enable: rankings and the logical
cost signature are identical with the tier on or off; only physical
I/O drops on a hit.  The warm/hot-ranges round trip is what replica
attach replays, so it is pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import QueryEngine
from repro.core.index import VitriIndex
from repro.core.range_cache import RangeCache
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.utils.counters import CostCounters

EPSILON = 0.3
TOKEN_A = "aa" * 16
TOKEN_B = "bb" * 16


def block(*keys):
    values = np.asarray(keys, dtype=np.float64)
    return (values, np.zeros(len(keys), dtype=np.uint8))


def spy_fetcher(log):
    def fetch_many(missing):
        log.extend(missing)
        return [block(low) for low, _ in missing]

    return fetch_many


class TestRangeCacheUnit:
    def test_capacity_validation(self):
        with pytest.raises(TypeError):
            RangeCache("four")
        with pytest.raises(TypeError):
            RangeCache(True)
        with pytest.raises(ValueError):
            RangeCache(0)

    def test_hits_and_misses_are_tallied(self):
        cache = RangeCache(4)
        fetched: list = []
        counters = CostCounters()
        cache.fetch(TOKEN_A, [(0.0, 1.0)], spy_fetcher(fetched), counters)
        assert (cache.hits, cache.misses) == (0, 1)
        assert fetched == [(0.0, 1.0)]
        cache.fetch(TOKEN_A, [(0.0, 1.0)], spy_fetcher(fetched), counters)
        assert (cache.hits, cache.misses) == (1, 1)
        assert fetched == [(0.0, 1.0)], "a hit must not re-fetch"
        assert counters.extra["range_cache_hits"] == 1
        assert counters.extra["range_cache_misses"] == 1

    def test_hit_charges_records_scanned(self):
        cache = RangeCache(4)
        cache.fetch(TOKEN_A, [(0.0, 1.0)], lambda m: [block(1.0, 2.0, 3.0)])
        counters = CostCounters()
        cache.fetch(TOKEN_A, [(0.0, 1.0)], lambda m: [], counters)
        assert counters.records_scanned == 3

    def test_lru_eviction_bounds_the_tier(self):
        cache = RangeCache(2)
        fetched: list = []
        for low in (0.0, 1.0, 2.0):
            cache.fetch(TOKEN_A, [(low, low + 1)], spy_fetcher(fetched))
        assert len(cache) == 2
        # (0.0, 1.0) was evicted; re-fetching it is a miss again.
        cache.fetch(TOKEN_A, [(0.0, 1.0)], spy_fetcher(fetched))
        assert fetched.count((0.0, 1.0)) == 2

    def test_epoch_scoping_on_the_content_token(self):
        cache = RangeCache(4)
        fetched: list = []
        cache.fetch(TOKEN_A, [(0.0, 1.0)], spy_fetcher(fetched))
        # The same range under a new token is a different epoch: the old
        # block must be unreachable, never served to the fresh state.
        cache.fetch(TOKEN_B, [(0.0, 1.0)], spy_fetcher(fetched))
        assert len(fetched) == 2
        assert cache.hot_ranges(TOKEN_A) == [(0.0, 1.0)]
        assert cache.hot_ranges(TOKEN_B) == [(0.0, 1.0)]

    def test_fetch_many_contract_violation_raises(self):
        cache = RangeCache(4)
        with pytest.raises(RuntimeError, match="blocks for"):
            cache.fetch(TOKEN_A, [(0.0, 1.0), (2.0, 3.0)], lambda m: [])


def build_index():
    config = DatasetConfig(
        dim=8, num_families=3, family_size=3, num_distractors=6
    )
    dataset = generate_dataset(config, seed=7)
    summaries = [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    return summaries, VitriIndex.build(summaries, EPSILON, buffer_capacity=16)


class TestEngineRangeTier:
    def test_k_variant_hits_the_range_tier_below_l1(self):
        summaries, index = build_index()
        engine = QueryEngine(
            index, buffer_capacity=8, cache_size=0, range_cache_size=32
        )
        bare = QueryEngine(index, buffer_capacity=8, cache_size=0)
        query = summaries[0]
        engine.knn(query, 3)
        assert engine.range_cache_misses > 0
        assert engine.range_cache_hits == 0

        # Same query, different k: L1 would miss (different key), but
        # the composed ranges are the same blocks.
        misses_before = engine.range_cache_misses
        got = engine.knn(query, 5)
        want = bare.knn(query, 5)
        assert engine.range_cache_hits > 0
        assert engine.range_cache_misses == misses_before
        assert got.videos == want.videos
        assert [repr(s) for s in got.scores] == [repr(s) for s in want.scores]

    def test_logical_signature_identical_tier_on_or_off(self):
        summaries, index = build_index()
        engine = QueryEngine(
            index, buffer_capacity=8, cache_size=0, range_cache_size=32
        )
        bare = QueryEngine(index, buffer_capacity=8, cache_size=0)
        query = summaries[1]
        engine.knn(query, 3)  # heat the tier

        cached_counters = CostCounters()
        bare_counters = CostCounters()
        engine.knn(query, 3, out_counters=cached_counters)
        bare.knn(query, 3, cold=True, out_counters=bare_counters)
        for field in (
            "similarity_computations",
            "distance_computations",
            "records_scanned",
            "records_decoded",
        ):
            assert getattr(cached_counters, field) == getattr(
                bare_counters, field
            ), field
        # The tier's whole point: served from memory, no tree I/O.
        assert cached_counters.page_requests < bare_counters.page_requests
        assert cached_counters.btree_node_visits == 0

    def test_warm_replays_another_engines_hot_ranges(self):
        summaries, index = build_index()
        source = QueryEngine(
            index, buffer_capacity=8, cache_size=0, range_cache_size=32
        )
        target = QueryEngine(
            index, buffer_capacity=8, cache_size=0, range_cache_size=32
        )
        query = summaries[2]
        want = source.knn(query, 4)
        hot = source.hot_ranges()
        assert hot

        assert target.warm(hot) == len(hot)
        assert target.range_cache_len == len(hot)
        misses_before = target.range_cache_misses
        got = target.knn(query, 4)
        assert target.range_cache_hits > 0
        assert target.range_cache_misses == misses_before
        assert got.videos == want.videos
        assert [repr(s) for s in got.scores] == [repr(s) for s in want.scores]

    def test_disabled_tier_reports_zeroes(self):
        summaries, index = build_index()
        engine = QueryEngine(index, buffer_capacity=8, cache_size=0)
        engine.knn(summaries[0], 3)
        assert engine.range_cache_size == 0
        assert engine.range_cache_len == 0
        assert engine.range_cache_hits == 0
        assert engine.range_cache_misses == 0
        assert engine.hot_ranges() == []
        assert engine.warm([(0.0, 1.0)]) == 0
