"""Tests for the VitriIndex (paper Section 5)."""

import math

import numpy as np
import pytest

from repro.baselines.seqscan import SequentialScan
from repro.core.index import VitriIndex
from repro.core.similarity import video_similarity
from repro.core.summarize import summarize_video
from repro.core.vitri import VideoSummary, ViTri

EPSILON = 0.3


def brute_force_knn(summaries, query, k):
    """Reference implementation: full pairwise video similarity."""
    scored = []
    for summary in summaries:
        score = video_similarity(query, summary)
        if score > 0.0:
            scored.append((summary.video_id, score))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return tuple(video for video, _ in scored[:k])


class TestBuild:
    def test_basic_properties(self, small_index, small_summaries):
        assert small_index.num_videos == len(small_summaries)
        assert small_index.num_vitris == sum(len(s) for s in small_summaries)
        assert small_index.epsilon == EPSILON
        assert small_index.dim == small_summaries[0].dim

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VitriIndex.build([], EPSILON)

    def test_duplicate_video_ids_rejected(self, small_summaries):
        with pytest.raises(ValueError, match="duplicate"):
            VitriIndex.build(
                [small_summaries[0], small_summaries[0]], EPSILON
            )

    def test_mixed_dims_rejected(self, small_summaries):
        other = VideoSummary(
            video_id=999,
            vitris=(ViTri(position=np.zeros(3), radius=0.1, count=1),),
        )
        with pytest.raises(ValueError, match="inconsistent"):
            VitriIndex.build([small_summaries[0], other], EPSILON)

    def test_direct_construction_rejected(self):
        with pytest.raises(RuntimeError):
            VitriIndex()

    def test_heap_clustered_by_key(self, small_index):
        """Bulk build stores ViTri records in key order so range scans
        touch contiguous heap pages."""
        keys = []
        codec = small_index._codec
        for _, payload in small_index.heap.scan():
            record = codec.decode(payload)
            keys.append(small_index.transform.key(record.position))
        assert keys == sorted(keys)


class TestKnn:
    def test_matches_brute_force(self, small_index, small_summaries):
        for query_id in (0, 3, 7, 12):
            query = small_summaries[query_id]
            expected = brute_force_knn(small_summaries, query, 5)
            got = small_index.knn(query, 5).videos
            assert got == expected

    def test_naive_equals_composed(self, small_index, small_summaries):
        for query_id in (0, 5, 10):
            query = small_summaries[query_id]
            composed = small_index.knn(query, 8, method="composed", cold=True)
            naive = small_index.knn(query, 8, method="naive", cold=True)
            assert composed.videos == naive.videos
            assert np.allclose(composed.scores, naive.scores)

    def test_matches_sequential_scan(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        for query_id in (1, 6, 14):
            query = small_summaries[query_id]
            a = small_index.knn(query, 10, cold=True)
            b = scan.knn(query, 10)
            assert a.videos == b.videos
            assert np.allclose(a.scores, b.scores)

    def test_self_query_ranks_first(self, small_index, small_summaries):
        result = small_index.knn(small_summaries[4], 3)
        assert result.videos[0] == 4
        assert result.scores[0] == pytest.approx(1.0)

    def test_scores_sorted_descending(self, small_index, small_summaries):
        result = small_index.knn(small_summaries[0], 10)
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_k_larger_than_matches(self, small_index, small_summaries):
        result = small_index.knn(small_summaries[0], 10_000)
        assert len(result) <= small_index.num_videos

    def test_stats_populated(self, small_index, small_summaries):
        result = small_index.knn(small_summaries[0], 5, cold=True)
        stats = result.stats
        assert stats.page_requests > 0
        assert stats.physical_reads > 0
        assert stats.similarity_computations > 0
        assert stats.ranges >= 1
        assert stats.wall_time >= 0.0

    def test_naive_costs_at_least_composed(self, small_index, small_summaries):
        # Query composition can only reduce page accesses.
        for query_id in range(0, 15, 3):
            query = small_summaries[query_id]
            composed = small_index.knn(query, 5, method="composed", cold=True)
            naive = small_index.knn(query, 5, method="naive", cold=True)
            assert naive.stats.page_requests >= composed.stats.page_requests

    def test_warm_cache_fewer_physical_reads(self, small_index, small_summaries):
        query = small_summaries[2]
        small_index.knn(query, 5, cold=True)
        warm = small_index.knn(query, 5, cold=False)
        assert warm.stats.physical_reads == 0

    def test_invalid_arguments(self, small_index, small_summaries):
        with pytest.raises(ValueError):
            small_index.knn(small_summaries[0], 0)
        with pytest.raises(ValueError):
            small_index.knn(small_summaries[0], 5, method="magic")
        with pytest.raises(TypeError):
            small_index.knn("not a summary", 5)

    def test_dim_mismatch(self, small_index):
        query = VideoSummary(
            video_id=0,
            vitris=(ViTri(position=np.zeros(3), radius=0.1, count=1),),
        )
        with pytest.raises(ValueError):
            small_index.knn(query, 5)


class TestDynamicInsertion:
    def build_pair(self, small_summaries):
        """An index built on a prefix, to insert the rest dynamically."""
        static = VitriIndex.build(small_summaries[:10], EPSILON)
        return static

    def test_insert_then_query(self, small_summaries):
        index = self.build_pair(small_summaries)
        for summary in small_summaries[10:]:
            index.insert_video(summary)
        assert index.num_videos == len(small_summaries)
        # Dynamic index returns the same results as a one-off build.
        full = VitriIndex.build(small_summaries, EPSILON)
        for query_id in (0, 11, 15):
            a = index.knn(small_summaries[query_id], 5, cold=True)
            b = full.knn(small_summaries[query_id], 5, cold=True)
            assert a.videos == b.videos

    def test_duplicate_insert_rejected(self, small_summaries):
        index = self.build_pair(small_summaries)
        with pytest.raises(ValueError, match="already indexed"):
            index.insert_video(small_summaries[0])

    def test_insert_wrong_dim(self, small_summaries):
        index = self.build_pair(small_summaries)
        bad = VideoSummary(
            video_id=999,
            vitris=(ViTri(position=np.zeros(3), radius=0.1, count=1),),
        )
        with pytest.raises(ValueError):
            index.insert_video(bad)

    def test_drift_angle_small_for_same_distribution(self, small_summaries):
        index = self.build_pair(small_summaries)
        for summary in small_summaries[10:]:
            index.insert_video(summary)
        assert index.drift_angle() < math.radians(30.0)

    def test_rebuild_preserves_results(self, small_summaries):
        index = self.build_pair(small_summaries)
        for summary in small_summaries[10:]:
            index.insert_video(summary)
        rebuilt = index.rebuild()
        assert rebuilt.num_videos == index.num_videos
        assert rebuilt.num_vitris == index.num_vitris
        for query_id in (0, 12):
            a = index.knn(small_summaries[query_id], 5, cold=True)
            b = rebuilt.knn(small_summaries[query_id], 5, cold=True)
            assert a.videos == b.videos
            assert np.allclose(a.scores, b.scores)


class TestPersistence:
    def test_file_backed_round_trip(self, small_summaries, tmp_path):
        btree_path = str(tmp_path / "index.btree")
        heap_path = str(tmp_path / "index.heap")
        meta_path = str(tmp_path / "index.meta.json")

        index = VitriIndex.build(
            small_summaries, EPSILON,
            btree_path=btree_path, heap_path=heap_path,
        )
        expected = index.knn(small_summaries[0], 5).videos
        index.flush()
        index.save_meta(meta_path)

        reopened = VitriIndex.open(btree_path, heap_path, meta_path)
        assert reopened.num_videos == index.num_videos
        assert reopened.num_vitris == index.num_vitris
        assert reopened.epsilon == EPSILON
        assert reopened.knn(small_summaries[0], 5).videos == expected


class TestSimilarityRange:
    def test_threshold_filtering(self, small_index, small_summaries):
        query = small_summaries[0]
        everything = small_index.knn(query, small_index.num_videos)
        for threshold in (0.05, 0.3, 0.9):
            result = small_index.similarity_range(query, threshold)
            expected = [
                v for v, s in zip(everything.videos, everything.scores)
                if s >= threshold
            ]
            assert list(result.videos) == expected
            assert all(s >= threshold for s in result.scores)

    def test_self_always_included_at_one(self, small_index, small_summaries):
        result = small_index.similarity_range(small_summaries[5], 1.0)
        assert 5 in result.videos

    def test_sorted_descending(self, small_index, small_summaries):
        result = small_index.similarity_range(small_summaries[0], 0.01)
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_invalid_threshold(self, small_index, small_summaries):
        with pytest.raises(ValueError):
            small_index.similarity_range(small_summaries[0], 0.0)
        with pytest.raises(ValueError):
            small_index.similarity_range(small_summaries[0], 1.5)
        with pytest.raises(TypeError):
            small_index.similarity_range(small_summaries[0], "high")


class TestRadiusValidation:
    """Indexed radii must respect R <= eps/2, or the key filter would
    silently miss results (the summary must use the index's epsilon)."""

    def oversized_summary(self, dim):
        return VideoSummary(
            video_id=5000,
            vitris=(ViTri(position=np.zeros(dim), radius=0.9, count=3),),
        )

    def test_build_rejects_oversized_radius(self, small_summaries):
        bad = self.oversized_summary(small_summaries[0].dim)
        with pytest.raises(ValueError, match="epsilon"):
            VitriIndex.build([small_summaries[0], bad], EPSILON)

    def test_insert_rejects_oversized_radius(self, small_summaries):
        index = VitriIndex.build(small_summaries, EPSILON)
        with pytest.raises(ValueError, match="epsilon"):
            index.insert_video(self.oversized_summary(small_summaries[0].dim))

    def test_boundary_radius_accepted(self, small_summaries):
        dim = small_summaries[0].dim
        boundary = VideoSummary(
            video_id=5001,
            vitris=(
                ViTri(position=np.zeros(dim), radius=EPSILON / 2.0, count=3),
            ),
        )
        index = VitriIndex.build(small_summaries, EPSILON)
        index.insert_video(boundary)  # must not raise


class TestSimilarityRangeBoundaries:
    def test_threshold_exactly_one(self, small_index, small_summaries):
        query = small_summaries[3]
        result = small_index.similarity_range(query, 1.0)
        # The video itself always scores 1.0, so the boundary keeps it.
        assert query.video_id in result.videos
        assert all(score >= 1.0 - 1e-12 for score in result.scores)

    def test_threshold_just_above_zero(self, small_index, small_summaries):
        query = small_summaries[0]
        result = small_index.similarity_range(query, 1e-12)
        full = small_index.knn(query, small_index.num_videos)
        kept = {
            video
            for video, score in zip(full.videos, full.scores)
            if score >= 1e-12
        }
        assert set(result.videos) == kept

    def test_reports_own_stats(self, small_index, small_summaries):
        """The range query's stats cover its own candidate pass (they are
        not a reused knn stats object)."""
        query = small_summaries[2]
        result = small_index.similarity_range(query, 0.5)
        knn_stats = small_index.knn(query, 1).stats
        assert result.stats.ranges > 0
        assert result.stats.candidates > 0
        assert result.stats.page_requests > 0
        # Same candidate pass as a knn over the same warm pools: every
        # logical cost field agrees (only wall_time may differ).
        assert result.stats.page_requests == knn_stats.page_requests
        assert result.stats.node_visits == knn_stats.node_visits
        assert (
            result.stats.similarity_computations
            == knn_stats.similarity_computations
        )
        assert result.stats.candidates == knn_stats.candidates
        assert result.stats.ranges == knn_stats.ranges


class TestConcurrentAccounting:
    """Regression for the global-delta accounting bug: two queries running
    in lockstep must each report exactly their solo-run stats.  (The old
    implementation derived QueryStats from before/after deltas of the
    shared pool counters, so interleaved queries swallowed each other's
    page accesses.)"""

    def test_lockstep_queries_report_solo_stats(self, small_summaries):
        import sys
        import threading

        index = VitriIndex.build(small_summaries, EPSILON)
        queries = [small_summaries[0], small_summaries[7]]
        k = 5

        # Warm the pools so physical reads are deterministically zero and
        # every remaining stats field is interleave-independent.
        for query in queries:
            index.knn(query, k)
        solo = [index.knn(query, k).stats for query in queries]

        observed: dict[int, object] = {}
        barrier = threading.Barrier(len(queries))

        def run(slot: int) -> None:
            barrier.wait()
            observed[slot] = index.knn(queries[slot], k).stats

        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force tight interleaving
        try:
            threads = [
                threading.Thread(target=run, args=(slot,))
                for slot in range(len(queries))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(switch)

        for slot, expected in enumerate(solo):
            got = observed[slot]
            assert got.page_requests == expected.page_requests
            assert got.physical_reads == expected.physical_reads
            assert got.node_visits == expected.node_visits
            assert (
                got.similarity_computations
                == expected.similarity_computations
            )
            assert got.candidates == expected.candidates
            assert got.ranges == expected.ranges


class TestConcurrentInsertAndQuery:
    """Lockstep insert + knn on one index: the serving snapshot contract.

    :class:`~repro.core.engine.QueryEngine` treats the pager as a
    read-only snapshot; ``insert_video`` keeps its mutations in the
    index's own buffer pool until the next flush.  So queries served
    *during* an insert must be bit-identical to pre-insert queries —
    never a mixed state — and only an explicit ``refresh()`` (which
    flushes and re-snapshots) makes the new video visible.
    """

    def test_snapshot_stable_during_insert_refresh_sees_it(
        self, small_summaries, small_dataset
    ):
        import sys
        import threading

        from repro.core.engine import QueryEngine

        base = list(small_summaries)
        index = VitriIndex.build(base, EPSILON)
        # cache_size=0: every query re-executes against the snapshot
        # instead of replaying a memoised ranking.
        engine = QueryEngine(index, cache_size=0)
        k = 5
        probes = base[:3]
        before = [
            (tuple(r.videos), tuple(r.scores))
            for r in (engine.knn(probe, k) for probe in probes)
        ]

        # Newcomers reuse existing videos' frames, so post-insert they
        # tie the originals at full similarity — guaranteed to crack
        # the originals' top-k once visible.
        newcomers = [
            summarize_video(
                len(base) + i, small_dataset.frames(i), EPSILON, seed=777 + i
            )
            for i in range(3)
        ]

        served: list = []
        barrier = threading.Barrier(2)

        def writer() -> None:
            barrier.wait()
            for newcomer in newcomers:
                index.insert_video(newcomer)

        def reader() -> None:
            barrier.wait()
            for _ in range(8):
                for probe in probes:
                    result = engine.knn(probe, k)
                    served.append((tuple(result.videos), tuple(result.scores)))

        switch = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force tight interleaving
        try:
            threads = [
                threading.Thread(target=writer),
                threading.Thread(target=reader),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(switch)

        # Every mid-insert query matched its pre-insert ranking exactly.
        assert served == before * 8

        # The mutation is real — the index itself serves the newcomers —
        # but the engine's snapshot still predates it.
        new_ids = {summary.video_id for summary in newcomers}
        assert new_ids & set(index.knn(probes[0], k + 3).videos)
        assert engine.snapshot_token != index.content_token()
        stale = engine.knn(probes[0], k)
        assert not new_ids & set(stale.videos)

        engine.refresh()
        assert engine.snapshot_token == index.content_token()
        oracle = VitriIndex.build(base + newcomers, EPSILON)
        for probe in probes:
            expected = oracle.knn(probe, k)
            got = engine.knn(probe, k)
            assert tuple(got.videos) == tuple(expected.videos)
            assert np.allclose(got.scores, expected.scores)
        assert new_ids & set(engine.knn(probes[0], k).videos)
