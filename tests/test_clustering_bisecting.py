"""Tests for repro.clustering.bisecting (Generate_Clusters, paper Fig. 3)."""

import numpy as np
import pytest

from repro.clustering.bisecting import generate_clusters


def shot_video(rng, anchors, per_shot=20, jitter=0.01):
    """Frames jittering around a sequence of anchors."""
    frames = []
    for anchor in anchors:
        frames.append(anchor + rng.normal(0, jitter, (per_shot, len(anchor))))
    return np.vstack(frames)


class TestGenerateClusters:
    def test_partition_property(self):
        """Every frame belongs to exactly one cluster."""
        rng = np.random.default_rng(0)
        frames = shot_video(rng, [np.zeros(8), np.full(8, 1.0), np.full(8, -1.0)])
        clusters = generate_clusters(frames, epsilon=0.3, seed=0)
        all_indices = np.concatenate([c.member_indices for c in clusters])
        assert sorted(all_indices) == list(range(len(frames)))
        assert sum(c.count for c in clusters) == len(frames)

    def test_radius_bound(self):
        """Accepted clusters respect R <= eps/2 (non-degenerate data)."""
        rng = np.random.default_rng(1)
        frames = shot_video(rng, [np.zeros(6), np.full(6, 2.0)])
        epsilon = 0.4
        clusters = generate_clusters(frames, epsilon, seed=0)
        for cluster in clusters:
            assert cluster.radius <= epsilon / 2.0 + 1e-12

    def test_pairwise_similarity_guarantee(self):
        """R <= eps/2 implies any two members are within eps."""
        rng = np.random.default_rng(2)
        frames = shot_video(rng, [np.zeros(4), np.full(4, 1.5)], jitter=0.02)
        epsilon = 0.5
        clusters = generate_clusters(frames, epsilon, seed=0)
        for cluster in clusters:
            members = frames[cluster.member_indices]
            center = cluster.center
            dist = np.linalg.norm(members - center, axis=1)
            # All but mu+sigma-trimmed outliers are inside the radius;
            # every member is within max_distance of the centre.
            assert dist.max() <= cluster.max_distance + 1e-12

    def test_radius_refinement(self):
        """The recorded radius is min(max distance, mu + sigma)."""
        rng = np.random.default_rng(3)
        frames = shot_video(rng, [np.zeros(5)], per_shot=50, jitter=0.01)
        clusters = generate_clusters(frames, epsilon=1.0, seed=0)
        assert len(clusters) == 1
        cluster = clusters[0]
        expected = min(
            cluster.max_distance, cluster.mean_distance + cluster.std_distance
        )
        assert cluster.radius == pytest.approx(expected)

    def test_outlier_trimmed_by_mu_sigma(self):
        """One far outlier must not balloon the radius (mu+sigma rule)."""
        frames = np.vstack([np.zeros((50, 3)), [[0.09, 0.0, 0.0]]])
        clusters = generate_clusters(frames, epsilon=0.2, seed=0)
        assert len(clusters) == 1
        assert clusters[0].radius < 0.09

    def test_epsilon_monotonicity(self):
        """Smaller epsilon gives at least as many clusters."""
        rng = np.random.default_rng(4)
        anchors = [rng.normal(0, 1, 6) for _ in range(5)]
        frames = shot_video(rng, anchors, jitter=0.02)
        counts = [
            len(generate_clusters(frames, eps, seed=0))
            for eps in (0.1, 0.5, 2.0, 8.0)
        ]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_tiny_epsilon_gives_per_point_clusters(self):
        rng = np.random.default_rng(5)
        frames = rng.normal(0, 1, (12, 3))
        clusters = generate_clusters(frames, epsilon=1e-9, seed=0)
        assert len(clusters) == 12
        assert all(c.count == 1 for c in clusters)
        assert all(c.radius == 0.0 for c in clusters)

    def test_huge_epsilon_single_cluster(self):
        rng = np.random.default_rng(6)
        frames = rng.normal(0, 1, (40, 4))
        clusters = generate_clusters(frames, epsilon=100.0, seed=0)
        assert len(clusters) == 1
        assert clusters[0].count == 40

    def test_identical_frames_accepted_without_split(self):
        frames = np.ones((25, 4))
        clusters = generate_clusters(frames, epsilon=0.5, seed=0)
        assert len(clusters) == 1
        assert clusters[0].radius == 0.0

    def test_single_frame(self):
        clusters = generate_clusters(np.array([[1.0, 2.0]]), epsilon=0.1)
        assert len(clusters) == 1
        assert clusters[0].count == 1

    def test_deterministic(self):
        rng = np.random.default_rng(7)
        frames = shot_video(rng, [np.zeros(4), np.full(4, 1.0)])
        a = generate_clusters(frames, 0.3, seed=5)
        b = generate_clusters(frames, 0.3, seed=5)
        assert len(a) == len(b)
        for ca, cb in zip(a, b):
            assert np.array_equal(ca.member_indices, cb.member_indices)

    def test_clusters_sorted_by_first_member(self):
        rng = np.random.default_rng(8)
        frames = shot_video(rng, [np.zeros(4), np.full(4, 2.0), np.full(4, 5.0)])
        clusters = generate_clusters(frames, 0.2, seed=0)
        firsts = [int(c.member_indices[0]) for c in clusters]
        assert firsts == sorted(firsts)

    def test_max_depth_terminates(self):
        # Two coincident heaps far apart with eps so small no valid
        # cluster exists: max_depth must still terminate the recursion.
        frames = np.vstack([np.zeros((8, 2)), np.full((8, 2), 1.0)])
        frames += np.random.default_rng(9).normal(0, 0.2, frames.shape)
        clusters = generate_clusters(frames, epsilon=1e-9, max_depth=3, seed=0)
        assert sum(c.count for c in clusters) == 16

    def test_invalid_arguments(self):
        frames = np.zeros((4, 2))
        with pytest.raises(ValueError):
            generate_clusters(frames, 0.0)
        with pytest.raises(ValueError):
            generate_clusters(frames, -1.0)
        with pytest.raises(ValueError):
            generate_clusters(frames, 0.5, max_depth=0)
