"""Tests for repro.utils.stats (Welford running statistics, percentile)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import RunningStats, percentile


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.5], 0.99) == 7.5

    def test_interpolates(self):
        values = [0.0, 10.0, 20.0, 30.0]
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 30.0
        assert percentile(values, 0.5) == pytest.approx(15.0)
        assert percentile(values, 0.95) == pytest.approx(28.5)

    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(3)
        values = sorted(rng.normal(0.0, 1.0, 101).tolist())
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert percentile(values, q) == pytest.approx(
                float(np.quantile(values, q)), rel=1e-12, abs=1e-12
            )

    def test_empty_raises_without_default(self):
        with pytest.raises(ValueError, match="empty sequence"):
            percentile([], 0.5)

    def test_empty_returns_default_when_given(self):
        assert percentile([], 0.5, default=0.0) == 0.0
        assert percentile([], 0.95, default=float("inf")) == float("inf")

    def test_default_ignored_when_nonempty(self):
        assert percentile([1.0, 3.0], 0.5, default=99.0) == pytest.approx(2.0)

    @pytest.mark.parametrize("q", [-0.01, 1.01, float("nan"), float("inf")])
    def test_out_of_range_fraction_rejected(self, q):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], q)

    def test_out_of_range_fraction_rejected_even_when_empty(self):
        # Argument validation happens before the emptiness check.
        with pytest.raises(ValueError, match="fraction"):
            percentile([], 1.5, default=0.0)


class TestRunningStats:
    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0
        assert rs.mean == 0.0
        assert rs.variance == 0.0
        assert rs.std == 0.0

    def test_single_value(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert rs.variance == 0.0
        assert rs.min == 5.0
        assert rs.max == 5.0

    def test_known_values(self):
        rs = RunningStats()
        rs.add_many([1.0, 2.0, 3.0, 4.0])
        assert rs.mean == pytest.approx(2.5)
        # Population variance.
        assert rs.variance == pytest.approx(1.25)
        assert rs.min == 1.0
        assert rs.max == 4.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(3.0, 2.0, 500)
        rs = RunningStats()
        rs.add_many(data)
        assert rs.mean == pytest.approx(float(data.mean()), rel=1e-12)
        assert rs.std == pytest.approx(float(data.std()), rel=1e-10)

    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 100)
        b = rng.normal(5, 3, 50)
        ra, rb, rall = RunningStats(), RunningStats(), RunningStats()
        ra.add_many(a)
        rb.add_many(b)
        rall.add_many(np.concatenate([a, b]))
        merged = ra.merge(rb)
        assert merged.count == rall.count
        assert merged.mean == pytest.approx(rall.mean, rel=1e-12)
        assert merged.variance == pytest.approx(rall.variance, rel=1e-10)
        assert merged.min == rall.min
        assert merged.max == rall.max

    def test_merge_with_empty(self):
        ra = RunningStats()
        ra.add_many([1.0, 2.0])
        merged = ra.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_merge_two_empty(self):
        merged = RunningStats().merge(RunningStats())
        assert merged.count == 0

    def test_merge_type_error(self):
        with pytest.raises(TypeError):
            RunningStats().merge([1, 2, 3])

    def test_repr(self):
        rs = RunningStats()
        rs.add(1.0)
        assert "count=1" in repr(rs)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_property_matches_numpy(self, values):
        rs = RunningStats()
        rs.add_many(values)
        arr = np.asarray(values)
        assert rs.count == len(values)
        assert rs.mean == pytest.approx(float(arr.mean()), rel=1e-8, abs=1e-8)
        assert rs.variance == pytest.approx(
            float(arr.var()), rel=1e-6, abs=1e-6
        )
