"""Tests for the online rebuild (repro.ingest.cutover).

The load-bearing properties: the side build never touches the serving
file set; the ``epoch.json`` replace is the *only* commit point (a
crash-at-every-step sweep recovers to exactly one of {old complete,
new complete}); and rankings are bit-identical across the cutover —
scores depend only on the query and each video's ViTris, never on the
reference point the rebuild refits.
"""

import os

import numpy as np
import pytest

from repro.core.database import read_epoch_pointer
from repro.core.index import VitriIndex
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.eval.ingest import run_cutover_crash_sweep
from repro.ingest import commit_cutover, rebuild_online, side_build
from repro.replication import ReplicaSet, ReplicaShard
from repro.shard.shard import Shard
from repro.utils.clock import VirtualClock

EPSILON = 0.3


def make_summaries(count: int = 12, *, seed: int = 7, dim: int = 8):
    config = DatasetConfig(
        dim=dim,
        num_families=2,
        family_size=3,
        num_distractors=max(count - 6, 1),
    )
    dataset = generate_dataset(config, seed=seed)
    return [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(min(count, dataset.num_videos))
    ]


def make_shard(path, summaries) -> Shard:
    shard = Shard(0, epsilon=EPSILON, path=str(path))
    for summary in summaries:
        shard.add_summary(summary)
    shard.checkpoint()
    return shard


def rankings(server, probes, k=5):
    results = []
    for probe in probes:
        result = server.knn(probe, k)
        results.append((tuple(result.videos), tuple(result.scores)))
    return results


class TestValidation:
    def test_side_build_rejects_non_database(self):
        with pytest.raises(TypeError, match="VideoDatabase"):
            side_build(object())

    def test_side_build_requires_durability(self):
        shard = Shard(0, epsilon=EPSILON)  # in-memory
        for summary in make_summaries(8):
            shard.add_summary(summary)
        with pytest.raises(ValueError, match="durable"):
            side_build(shard.database)

    def test_side_build_requires_content(self, tmp_path):
        shard = Shard(0, epsilon=EPSILON, path=str(tmp_path / "empty"))
        with pytest.raises(ValueError, match="empty"):
            side_build(shard.database)

    def test_commit_rejects_non_result(self, tmp_path):
        shard = make_shard(tmp_path / "s", make_summaries(8))
        with pytest.raises(TypeError, match="SideBuildResult"):
            commit_cutover(shard, {"generation": "gen-0001"})


class TestOnlineRebuild:
    def test_cutover_preserves_rankings_exactly(self, tmp_path):
        summaries = make_summaries(14)
        shard = make_shard(tmp_path / "shard", summaries)
        probes = summaries[:5]
        before = rankings(shard, probes)

        report = rebuild_online(shard)

        assert report.old_epoch == 0
        assert report.new_epoch == 1
        assert report.generation == "gen-0001"
        assert report.old_token != report.new_token
        assert report.videos == len(summaries)
        assert shard.database.epoch == 1
        assert shard.database.index.content_token() == report.new_token

        after = rankings(shard, probes)
        for (old_videos, old_scores), (new_videos, new_scores) in zip(
            before, after
        ):
            assert new_videos == old_videos
            assert new_scores == old_scores  # bit-identical, not just close

        oracle = VitriIndex.build(summaries, EPSILON)
        for probe, (videos, scores) in zip(probes, after):
            expected = oracle.knn(probe, 5)
            assert videos == tuple(expected.videos)
            assert np.allclose(scores, expected.scores)

    def test_reopen_lands_on_new_epoch_and_sweeps_old(self, tmp_path):
        path = tmp_path / "shard"
        summaries = make_summaries(10)
        shard = make_shard(path, summaries)
        report = rebuild_online(shard)
        shard.checkpoint()
        shard.close()

        assert read_epoch_pointer(str(path)) == ("gen-0001", 1)
        reopened = Shard(0, epsilon=EPSILON, path=str(path))
        assert reopened.database.epoch == 1
        assert reopened.database.index.content_token() == report.new_token
        assert len(reopened) == len(summaries)
        # The flat epoch-0 file set was swept: only the pointer and the
        # live generation remain in the root.
        assert sorted(os.listdir(path)) == ["epoch.json", "gen-0001"]
        reopened.close()

    def test_engine_and_caches_invalidate(self, tmp_path):
        summaries = make_summaries(10)
        shard = make_shard(tmp_path / "shard", summaries)
        engine_before = shard.engine()
        token_before = engine_before.snapshot_token

        report = rebuild_online(shard)

        engine_after = shard.engine()
        assert engine_after is not engine_before
        assert engine_after.snapshot_token == report.new_token
        assert engine_after.snapshot_token != token_before

    def test_successive_rebuilds_advance_epochs(self, tmp_path):
        shard = make_shard(tmp_path / "shard", make_summaries(10))
        first = rebuild_online(shard)
        second = rebuild_online(shard)
        assert (first.new_epoch, second.new_epoch) == (1, 2)
        assert second.generation == "gen-0002"
        assert shard.database.epoch == 2

    def test_replicas_rebootstrap_after_cutover(self, tmp_path):
        summaries = make_summaries(12)
        primary = make_shard(tmp_path / "primary", summaries)
        clock = VirtualClock()
        group = ReplicaSet(primary, clock=clock)
        group.attach_replica(
            ReplicaShard(0, tmp_path / "replica", epsilon=EPSILON, clock=clock)
        )
        group.sync()

        report = rebuild_online(group.primary, shipper=group.shipper)
        group.sync()

        # The replica re-bootstrapped from a new-epoch snapshot: it now
        # serves the new token's content, bit-identical to the oracle.
        oracle = VitriIndex.build(summaries, EPSILON)
        for probe in summaries[:4]:
            expected = oracle.knn(probe, 5)
            got = group.knn(probe, 5)
            assert tuple(got.videos) == tuple(expected.videos)
            assert np.allclose(got.scores, expected.scores)
        status = group.replication_status()
        assert report.new_token in str(status)
        group.close()


class TestCrashSweep:
    def test_every_crash_point_recovers_to_one_side(self, tmp_path):
        report = run_cutover_crash_sweep(
            str(tmp_path / "sweep"), make_summaries(8), epsilon=EPSILON
        )
        assert report["crash_points"] > 0
        assert report["recovered"] == report["crash_points"]
        # Both sides of the pointer must be reachable, or the sweep is
        # not actually straddling the commit point.
        assert report["outcomes"]["old"] > 0
        assert report["outcomes"]["new"] > 0
