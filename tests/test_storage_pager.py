"""Tests for repro.storage.page and repro.storage.pager."""

import os

import pytest

from repro.storage.page import CHECKSUM_SIZE, PAGE_CONTENT_SIZE, PAGE_SIZE, Page
from repro.storage.pager import Pager
from repro.storage.serialization import ChecksumError
from repro.utils.counters import Timer


class TestPage:
    def test_default_zeroed(self):
        page = Page(0)
        assert len(page.data) == PAGE_CONTENT_SIZE
        assert not any(page.data)
        assert not page.dirty

    def test_frame_budget(self):
        assert PAGE_CONTENT_SIZE + CHECKSUM_SIZE == PAGE_SIZE

    def test_mark_dirty(self):
        page = Page(1)
        page.mark_dirty()
        assert page.dirty

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            Page(0, bytearray(10))

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Page(-1)

    def test_repr(self):
        assert "clean" in repr(Page(3))


class TestMemoryPager:
    def test_allocate_and_read(self):
        pager = Pager()
        pid = pager.allocate_page()
        assert pid == 0
        assert pager.num_pages == 1
        page = pager.read_page(pid)
        assert not any(page.data)

    def test_write_read_round_trip(self):
        pager = Pager()
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:5] = b"hello"
        pager.write_page(page)
        again = pager.read_page(pid)
        assert bytes(again.data[:5]) == b"hello"

    def test_reads_are_copies(self):
        pager = Pager()
        pid = pager.allocate_page()
        a = pager.read_page(pid)
        a.data[0] = 99
        b = pager.read_page(pid)
        assert b.data[0] == 0

    def test_counters(self):
        pager = Pager()
        pid = pager.allocate_page()
        assert pager.physical_writes == 1
        pager.read_page(pid)
        pager.read_page(pid)
        assert pager.physical_reads == 2
        pager.write_page(Page(pid))
        assert pager.physical_writes == 2

    def test_out_of_range_read(self):
        pager = Pager()
        with pytest.raises(ValueError):
            pager.read_page(0)
        pager.allocate_page()
        with pytest.raises(ValueError):
            pager.read_page(5)

    def test_closed_pager_raises(self):
        pager = Pager()
        pager.close()
        with pytest.raises(RuntimeError):
            pager.allocate_page()

    def test_double_close_is_noop(self):
        pager = Pager()
        pager.close()
        pager.close()


class TestFilePager:
    def test_persistence(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:3] = b"abc"
            pager.write_page(page)
            pager.sync()
        with Pager(path) as pager:
            assert pager.num_pages == 1
            assert bytes(pager.read_page(0).data[:3]) == b"abc"

    def test_writes_honour_seek(self, tmp_path):
        """Regression: append-mode files ignore seek() on write."""
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            first = pager.allocate_page()
            pager.allocate_page()
            page = pager.read_page(first)
            page.data[:2] = b"hi"
            pager.write_page(page)
            assert bytes(pager.read_page(first).data[:2]) == b"hi"
            assert bytes(pager.read_page(1).data[:2]) == b"\x00\x00"

    def test_file_size_is_page_multiple(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.sync()
        assert os.path.getsize(path) == 2 * PAGE_SIZE

    def test_rejects_corrupt_size(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(ValueError, match="multiple"):
            Pager(path)

    def test_path_property(self, tmp_path):
        path = tmp_path / "p.pages"
        with Pager(path) as pager:
            assert pager.path == str(path)
        assert Pager().path is None

    def test_exit_syncs_unsynced_writes(self, tmp_path):
        """Regression: leaving the context manager without an explicit
        sync() must still persist every write."""
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:6] = b"synced"
            pager.write_page(page)
            # no pager.sync() here — __exit__ must do it
        with Pager(path) as pager:
            assert bytes(pager.read_page(0).data[:6]) == b"synced"

    def test_close_syncs_unsynced_writes(self, tmp_path):
        path = tmp_path / "data.pages"
        pager = Pager(path)
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:4] = b"also"
        pager.write_page(page)
        pager.close()
        with Pager(path) as reopened:
            assert bytes(reopened.read_page(0).data[:4]) == b"also"

    def test_close_is_idempotent(self, tmp_path):
        pager = Pager(tmp_path / "data.pages")
        pager.allocate_page()
        pager.close()
        pager.close()
        with pytest.raises(RuntimeError):
            pager.allocate_page()

    def test_read_before_sync_sees_pending_writes(self, tmp_path):
        with Pager(tmp_path / "data.pages") as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:3] = b"wip"
            pager.write_page(page)
            assert bytes(pager.read_page(pid).data[:3]) == b"wip"

    def test_wal_file_created_alongside(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pager.allocate_page()
        assert os.path.exists(str(path) + ".wal")

    def test_wal_disabled_mode_round_trips(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path, wal=False) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:2] = b"ok"
            pager.write_page(page)
        assert not os.path.exists(str(path) + ".wal")
        with Pager(path, wal=False) as pager:
            assert bytes(pager.read_page(0).data[:2]) == b"ok"


class TestChecksums:
    def test_verify_checksums_clean_file(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.sync()
            assert pager.verify_checksums() == 2

    def test_verify_checksums_memory(self):
        pager = Pager()
        pager.allocate_page()
        assert pager.verify_checksums() == 1

    def test_corrupt_page_raises_on_read(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:4] = b"good"
            pager.write_page(page)
        # Flip one content byte on disk without fixing the trailer.
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with Pager(path) as pager:
            with pytest.raises(ChecksumError, match="checksum mismatch"):
                pager.read_page(0)

    def test_corrupt_page_caught_by_verify(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:4] = b"good"
            pager.write_page(page)
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0x01
        path.write_bytes(bytes(raw))
        with Pager(path) as pager:
            with pytest.raises(ChecksumError):
                pager.verify_checksums()

    def test_all_zero_frame_is_valid(self, tmp_path):
        """Fresh-page convention: a zeroed frame decodes to zero content."""
        path = tmp_path / "data.pages"
        path.write_bytes(bytes(PAGE_SIZE))
        with Pager(path) as pager:
            assert pager.num_pages == 1
            assert not any(pager.read_page(0).data)
            assert pager.verify_checksums() == 1


class TestReadLatency:
    """The simulated disk service time behind the serving benchmark."""

    def test_default_zero(self):
        assert Pager().read_latency == 0.0

    def test_validation(self):
        with pytest.raises(TypeError):
            Pager(read_latency="slow")
        with pytest.raises(TypeError):
            Pager(read_latency=True)
        with pytest.raises(ValueError):
            Pager(read_latency=-0.001)

    def test_reads_still_correct(self):
        pager = Pager(read_latency=0.001)
        page_id = pager.allocate_page()
        page = Page(page_id)
        page.data[0] = 42
        pager.write_page(page)
        assert pager.read_page(page_id).data[0] == 42
        assert pager.physical_reads == 1

    def test_latency_applied_per_read(self):
        pager = Pager(read_latency=0.01)
        page_id = pager.allocate_page()
        pager.write_page(Page(page_id))
        with Timer() as timer:
            pager.read_page(page_id)
        assert timer.elapsed >= 0.01

    def test_concurrent_reads_overlap_waits(self):
        """Sleeps happen outside the pager lock: four concurrent reads of
        a 10 ms-latency pager take far less than 4 x 10 ms."""
        import threading

        pager = Pager(read_latency=0.01)
        page_id = pager.allocate_page()
        pager.write_page(Page(page_id))
        barrier = threading.Barrier(4)

        def read() -> None:
            barrier.wait()
            pager.read_page(page_id)

        threads = [threading.Thread(target=read) for _ in range(4)]
        with Timer() as timer:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert timer.elapsed < 0.035  # serial waits would need >= 0.04
