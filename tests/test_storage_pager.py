"""Tests for repro.storage.page and repro.storage.pager."""

import os

import pytest

from repro.storage.page import PAGE_SIZE, Page
from repro.storage.pager import Pager


class TestPage:
    def test_default_zeroed(self):
        page = Page(0)
        assert len(page.data) == PAGE_SIZE
        assert not any(page.data)
        assert not page.dirty

    def test_mark_dirty(self):
        page = Page(1)
        page.mark_dirty()
        assert page.dirty

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            Page(0, bytearray(10))

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Page(-1)

    def test_repr(self):
        assert "clean" in repr(Page(3))


class TestMemoryPager:
    def test_allocate_and_read(self):
        pager = Pager()
        pid = pager.allocate_page()
        assert pid == 0
        assert pager.num_pages == 1
        page = pager.read_page(pid)
        assert not any(page.data)

    def test_write_read_round_trip(self):
        pager = Pager()
        pid = pager.allocate_page()
        page = pager.read_page(pid)
        page.data[:5] = b"hello"
        pager.write_page(page)
        again = pager.read_page(pid)
        assert bytes(again.data[:5]) == b"hello"

    def test_reads_are_copies(self):
        pager = Pager()
        pid = pager.allocate_page()
        a = pager.read_page(pid)
        a.data[0] = 99
        b = pager.read_page(pid)
        assert b.data[0] == 0

    def test_counters(self):
        pager = Pager()
        pid = pager.allocate_page()
        assert pager.physical_writes == 1
        pager.read_page(pid)
        pager.read_page(pid)
        assert pager.physical_reads == 2
        pager.write_page(Page(pid))
        assert pager.physical_writes == 2

    def test_out_of_range_read(self):
        pager = Pager()
        with pytest.raises(ValueError):
            pager.read_page(0)
        pager.allocate_page()
        with pytest.raises(ValueError):
            pager.read_page(5)

    def test_closed_pager_raises(self):
        pager = Pager()
        pager.close()
        with pytest.raises(RuntimeError):
            pager.allocate_page()

    def test_double_close_is_noop(self):
        pager = Pager()
        pager.close()
        pager.close()


class TestFilePager:
    def test_persistence(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pid = pager.allocate_page()
            page = pager.read_page(pid)
            page.data[:3] = b"abc"
            pager.write_page(page)
            pager.sync()
        with Pager(path) as pager:
            assert pager.num_pages == 1
            assert bytes(pager.read_page(0).data[:3]) == b"abc"

    def test_writes_honour_seek(self, tmp_path):
        """Regression: append-mode files ignore seek() on write."""
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            first = pager.allocate_page()
            pager.allocate_page()
            page = pager.read_page(first)
            page.data[:2] = b"hi"
            pager.write_page(page)
            assert bytes(pager.read_page(first).data[:2]) == b"hi"
            assert bytes(pager.read_page(1).data[:2]) == b"\x00\x00"

    def test_file_size_is_page_multiple(self, tmp_path):
        path = tmp_path / "data.pages"
        with Pager(path) as pager:
            pager.allocate_page()
            pager.allocate_page()
            pager.sync()
        assert os.path.getsize(path) == 2 * PAGE_SIZE

    def test_rejects_corrupt_size(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(ValueError, match="multiple"):
            Pager(path)

    def test_path_property(self, tmp_path):
        path = tmp_path / "p.pages"
        with Pager(path) as pager:
            assert pager.path == str(path)
        assert Pager().path is None
