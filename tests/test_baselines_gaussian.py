"""Tests for the Gaussian-distribution baseline."""

import numpy as np
import pytest

from repro.baselines.gaussian import (
    GaussianSummary,
    bhattacharyya_similarity,
    summarize_gaussian,
)


class TestSummarizeGaussian:
    def test_moments(self, rng):
        frames = rng.normal(3.0, 2.0, (500, 4))
        summary = summarize_gaussian(7, frames)
        assert summary.video_id == 7
        assert summary.num_frames == 500
        assert np.allclose(summary.mean, frames.mean(axis=0))
        assert np.allclose(summary.variances, frames.var(axis=0))

    def test_variance_floor(self):
        frames = np.ones((10, 3))
        summary = summarize_gaussian(0, frames)
        assert (summary.variances > 0).all()

    def test_single_frame(self):
        summary = summarize_gaussian(0, np.array([[1.0, 2.0]]))
        assert summary.num_frames == 1
        assert (summary.variances > 0).all()


class TestBhattacharyyaSimilarity:
    def test_identical_is_one(self, rng):
        frames = rng.normal(0, 1, (100, 5))
        summary = summarize_gaussian(0, frames)
        assert bhattacharyya_similarity(summary, summary) == pytest.approx(1.0)

    def test_symmetric(self, rng):
        a = summarize_gaussian(0, rng.normal(0, 1, (80, 4)))
        b = summarize_gaussian(1, rng.normal(1, 2, (60, 4)))
        assert bhattacharyya_similarity(a, b) == pytest.approx(
            bhattacharyya_similarity(b, a)
        )

    def test_decreases_with_mean_separation(self, rng):
        base = rng.normal(0, 1, (200, 3))
        a = summarize_gaussian(0, base)
        sims = [
            bhattacharyya_similarity(a, summarize_gaussian(1, base + shift))
            for shift in (0.0, 0.5, 2.0, 8.0)
        ]
        assert all(later < earlier for earlier, later in zip(sims, sims[1:]))

    def test_bounded(self, rng):
        a = summarize_gaussian(0, rng.normal(0, 1, (50, 4)))
        b = summarize_gaussian(1, rng.normal(5, 0.1, (50, 4)))
        value = bhattacharyya_similarity(a, b)
        assert 0.0 <= value <= 1.0

    def test_multimodality_blindness(self, rng):
        """The category's documented weakness: a bimodal video and a
        unimodal blob with the same moments are indistinguishable."""
        mode_a = rng.normal(-1.0, 0.05, (100, 3))
        mode_b = rng.normal(1.0, 0.05, (100, 3))
        bimodal = np.vstack([mode_a, mode_b])
        summary_bimodal = summarize_gaussian(0, bimodal)
        blob = rng.normal(0.0, 1.0, (200, 3))
        # Match the blob's moments to the bimodal video's.
        blob = (blob - blob.mean(axis=0)) / blob.std(axis=0)
        blob = blob * np.sqrt(summary_bimodal.variances) + summary_bimodal.mean
        summary_blob = summarize_gaussian(1, blob)
        assert bhattacharyya_similarity(
            summary_bimodal, summary_blob
        ) == pytest.approx(1.0, abs=0.01)

    def test_dim_mismatch(self, rng):
        a = summarize_gaussian(0, rng.normal(0, 1, (10, 3)))
        b = summarize_gaussian(1, rng.normal(0, 1, (10, 4)))
        with pytest.raises(ValueError):
            bhattacharyya_similarity(a, b)

    def test_type_check(self):
        summary = GaussianSummary(0, np.zeros(2), np.ones(2), 5)
        with pytest.raises(TypeError):
            bhattacharyya_similarity(summary, "x")
