"""Integration tests: the full pipeline from raw frames to ranked results.

These exercise the public API exactly as the examples and benchmarks do,
and assert the cross-component invariants that make the reproduction
trustworthy:

* the indexed KNN (naive and composed) returns exactly the sequential
  scan's results — the key filter is lossless;
* a dynamically grown index returns the same results as a one-off build;
* on a dataset with near-duplicate families, ViTri retrieval finds the
  family (precision against frame-level ground truth is meaningfully
  above chance).
"""

import numpy as np
import pytest

import repro
from repro.baselines import (
    SequentialScan,
    VideoSignatureIndex,
    keyframe_similarity,
    summarize_keyframes,
)
from repro.datasets import DatasetConfig, generate_dataset, sample_queries
from repro.eval import GroundTruthCache, precision_at_k

EPSILON = 0.3


@pytest.fixture(scope="module")
def pipeline():
    config = DatasetConfig.precision_preset(
        dim=24,
        num_families=4,
        family_size=4,
        num_distractors=8,
        duration_classes=((40, 0.5), (25, 0.5)),
    )
    dataset = generate_dataset(config, seed=777)
    summaries = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)
    return dataset, summaries, index


class TestPipeline:
    def test_index_equals_seqscan_for_all_queries(self, pipeline):
        dataset, summaries, index = pipeline
        scan = SequentialScan(index)
        for query_id in range(dataset.num_videos):
            query = summaries[query_id]
            via_index = index.knn(query, 8, cold=True)
            via_scan = scan.knn(query, 8)
            assert via_index.videos == via_scan.videos, f"query {query_id}"
            assert np.allclose(via_index.scores, via_scan.scores)

    def test_naive_equals_composed_for_all_queries(self, pipeline):
        dataset, summaries, index = pipeline
        for query_id in range(dataset.num_videos):
            query = summaries[query_id]
            composed = index.knn(query, 8, method="composed", cold=True)
            naive = index.knn(query, 8, method="naive", cold=True)
            assert composed.videos == naive.videos

    def test_dynamic_growth_equals_bulk_build(self, pipeline):
        dataset, summaries, index = pipeline
        half = len(summaries) // 2
        grown = repro.VitriIndex.build(summaries[:half], EPSILON)
        for summary in summaries[half:]:
            grown.insert_video(summary)
        for query_id in (0, half, len(summaries) - 1):
            a = grown.knn(summaries[query_id], 6, cold=True)
            b = index.knn(summaries[query_id], 6, cold=True)
            assert a.videos == b.videos

    def test_retrieval_finds_family(self, pipeline):
        dataset, summaries, index = pipeline
        gt = GroundTruthCache(dataset)
        precisions = []
        for family in dataset.families:
            query_id = dataset.family_members(family)[0]
            relevant = gt.top_k(query_id, 4, EPSILON)
            retrieved = index.knn(summaries[query_id], 4).videos
            precisions.append(precision_at_k(relevant, retrieved))
        # Random retrieval over 24 videos would score ~0.17; the pipeline
        # must do far better.
        assert float(np.mean(precisions)) >= 0.5

    def test_vitri_score_correlates_with_ground_truth(self, pipeline):
        dataset, summaries, index = pipeline
        query_id = dataset.family_members(0)[0]
        family = set(dataset.family_members(0))
        result = index.knn(summaries[query_id], dataset.num_videos)
        scores = dict(zip(result.videos, result.scores))
        family_scores = [scores.get(v, 0.0) for v in family]
        stranger_scores = [
            scores.get(v, 0.0)
            for v in range(dataset.num_videos)
            if v not in family
        ]
        assert min(family_scores) >= 0.0
        assert np.mean(family_scores) > np.mean(stranger_scores)

    def test_baselines_run_end_to_end(self, pipeline):
        dataset, summaries, index = pipeline
        query_id = 0
        keyframes = [
            summarize_keyframes(i, dataset.frames(i), k=max(len(summaries[i]), 1), seed=i)
            for i in range(dataset.num_videos)
        ]
        ranked = sorted(
            range(dataset.num_videos),
            key=lambda v: -keyframe_similarity(
                keyframes[query_id], keyframes[v], EPSILON
            ),
        )
        assert len(ranked) == dataset.num_videos

        visig = VideoSignatureIndex(dim=dataset.dim, num_seeds=8, seed=0)
        signatures = [
            visig.summarize(i, dataset.frames(i)) for i in range(dataset.num_videos)
        ]
        sims = [
            visig.similarity(signatures[query_id], s, EPSILON) for s in signatures
        ]
        assert sims[query_id] == pytest.approx(1.0)

    def test_query_workflow_helpers(self, pipeline):
        dataset, summaries, index = pipeline
        queries = sample_queries(dataset, 5, seed=0)
        for query_id in queries:
            result = index.knn(summaries[query_id], 3)
            assert len(result) >= 1

    def test_top_level_exports(self):
        assert hasattr(repro, "VitriIndex")
        assert hasattr(repro, "summarize_video")
        assert hasattr(repro, "generate_dataset")
        assert repro.__version__
