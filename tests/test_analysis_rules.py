"""Golden-fixture tests for every vilint rule.

Each rule gets positive fixtures (snippets that must produce a diagnostic
with the right rule id and line) and negative fixtures (idiomatic code
that must stay clean).  Snippets run through
:func:`repro.analysis.lint_source`, the same path the CLI uses.
"""

import textwrap

import pytest

from repro.analysis import lint_source, rule_names


def findings(source, rule=None):
    select = [rule] if rule else None
    return lint_source(textwrap.dedent(source), path="fixture.py", select=select)


def lines_for(source, rule):
    return [d.line for d in findings(source, rule)]


def test_registry_has_all_ten_rules():
    assert rule_names() == [
        "future-annotations",
        "seeded-rng",
        "counter-discipline",
        "boundary-validation",
        "float-equality",
        "wall-clock-discipline",
        "injected-clock",
        "guard-discipline",
        "lock-order-inversion",
        "blocking-while-locked",
    ]


# ---------------------------------------------------------------------------
# future-annotations
# ---------------------------------------------------------------------------
class TestFutureAnnotations:
    def test_missing_import_flagged_at_line_one(self):
        diagnostics = findings(
            '''\
            """Docstring."""

            import os

            x: int = 1
            ''',
            "future-annotations",
        )
        assert [(d.rule, d.line) for d in diagnostics] == [
            ("future-annotations", 1)
        ]
        assert diagnostics[0].code == "VIL001"

    def test_present_after_docstring_clean(self):
        assert not findings(
            '''\
            """Docstring."""

            from __future__ import annotations

            import os
            ''',
            "future-annotations",
        )

    def test_present_without_docstring_clean(self):
        assert not findings(
            "from __future__ import annotations\nimport os\n",
            "future-annotations",
        )

    def test_import_after_other_code_still_flagged(self):
        assert lines_for(
            "import os\nfrom __future__ import annotations\n",
            "future-annotations",
        ) == [1]

    def test_empty_and_docstring_only_modules_clean(self):
        assert not findings("", "future-annotations")
        assert not findings('"""Only a docstring."""\n', "future-annotations")


# ---------------------------------------------------------------------------
# seeded-rng
# ---------------------------------------------------------------------------
class TestSeededRng:
    def test_np_random_call_flagged(self):
        source = """\
        from __future__ import annotations

        import numpy as np

        def sample():
            return np.random.uniform(0.0, 1.0)
        """
        diagnostics = findings(source, "seeded-rng")
        assert [d.line for d in diagnostics] == [6]
        assert "numpy.random.uniform" in diagnostics[0].message

    def test_default_rng_and_seed_flagged(self):
        source = """\
        import numpy as np

        np.random.seed(0)
        rng = np.random.default_rng()
        """
        assert lines_for(source, "seeded-rng") == [3, 4]

    def test_stdlib_random_flagged(self):
        source = """\
        import random
        from random import randint

        def roll():
            return random.random() + randint(1, 6)
        """
        assert lines_for(source, "seeded-rng") == [5, 5]

    def test_threaded_generator_clean(self):
        source = """\
        from __future__ import annotations

        from repro.utils.rng import ensure_rng

        def sample(seed=None):
            rng = ensure_rng(seed)
            return rng.normal(size=4)
        """
        assert not findings(source, "seeded-rng")

    def test_generator_annotation_clean(self):
        source = """\
        import numpy as np

        def centre(data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
            return data[rng.integers(len(data))]
        """
        assert not findings(source, "seeded-rng")

    def test_unrelated_local_named_random_clean(self):
        source = """\
        def pick(random):
            return random.choice()
        """
        assert not findings(source, "seeded-rng")


# ---------------------------------------------------------------------------
# counter-discipline
# ---------------------------------------------------------------------------
class TestCounterDiscipline:
    def test_kernel_call_without_counters_param_flagged(self):
        source = """\
        from repro.core.similarity import video_similarity

        def score_pair(x, y):
            return video_similarity(x, y)
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [4]
        assert "video_similarity" in diagnostics[0].message

    def test_counters_param_dropped_on_call_flagged(self):
        source = """\
        from repro.core.similarity import video_similarity

        def score_pair(x, y, counters=None):
            return video_similarity(x, y)
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [4]
        assert "drops" in diagnostics[0].message

    def test_counters_propagated_clean(self):
        source = """\
        from repro.core.similarity import video_similarity

        def score_pair(x, y, counters=None):
            return video_similarity(x, y, counters)
        """
        assert not findings(source, "counter-discipline")

    def test_counters_propagated_as_keyword_clean(self):
        source = """\
        from repro.core.similarity import video_similarity

        def score_pair(x, y, counters=None):
            return video_similarity(x, y, counters=counters)
        """
        assert not findings(source, "counter-discipline")

    def test_raw_kernel_with_self_accounting_clean(self):
        source = """\
        from repro.core.similarity import _estimate_from_scalars

        class Accumulator:
            def evaluate(self, record):
                value = _estimate_from_scalars(2, 1.0, 3, 1.0, 3, 0.5)
                self.evaluations += 1
                return value
        """
        assert not findings(source, "counter-discipline")

    def test_raw_kernel_without_accounting_flagged(self):
        source = """\
        from repro.core.similarity import _estimate_from_scalars

        def estimate(record):
            return _estimate_from_scalars(2, 1.0, 3, 1.0, 3, 0.5)
        """
        assert lines_for(source, "counter-discipline") == [4]

    def test_raw_pager_io_outside_storage_flagged(self):
        diagnostics = lint_source(
            "def peek(pager):\n    return pager.read_page(0)\n",
            path="src/repro/core/index.py",
            select=["counter-discipline"],
        )
        assert [d.line for d in diagnostics] == [2]
        assert "BufferPool" in diagnostics[0].message

    def test_raw_pager_io_inside_storage_clean(self):
        assert not lint_source(
            "def peek(pager):\n    return pager.read_page(0)\n",
            path="src/repro/storage/buffer_pool.py",
            select=["counter-discipline"],
        )

    def test_querystats_from_global_pool_delta_flagged(self):
        source = """\
        def knn(self, query, k):
            pool = self._btree.buffer_pool
            requests_before = pool.requests
            stats = QueryStats(
                page_requests=pool.requests - requests_before,
                physical_reads=pool.misses,
            )
            return stats
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [5, 6]
        assert "global counter 'requests'" in diagnostics[0].message
        assert "per-query CostCounters bundle" in diagnostics[0].message

    def test_querystats_from_tree_node_visits_flagged(self):
        source = """\
        def knn(self, query, k):
            return QueryStats(
                node_visits=self._btree.node_visits - visits_before,
            )
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [3]
        assert "node_visits" in diagnostics[0].message

    def test_querystats_from_bundle_clean(self):
        source = """\
        def knn(self, query, k):
            counters = CostCounters()
            return QueryStats(
                page_requests=counters.page_requests,
                physical_reads=counters.page_reads,
                node_visits=counters.btree_node_visits,
            )
        """
        assert not findings(source, "counter-discipline")

    def test_querystats_from_attribute_bundle_clean(self):
        source = """\
        def serve(self, view, query, k):
            return QueryStats(
                page_requests=view.counters.page_requests,
                physical_reads=view.counters.page_reads,
            )
        """
        assert not findings(source, "counter-discipline")

    def test_global_counter_read_outside_querystats_clean(self):
        source = """\
        def hit_rate(pool):
            return pool.hits / pool.requests
        """
        assert not findings(source, "counter-discipline")

    def test_querystats_reaggregated_from_stats_flagged(self):
        # The shard-router temptation: build global stats by summing the
        # per-shard QueryStats objects instead of folding their bundles.
        source = """\
        def merge(self, results):
            return QueryStats(
                page_requests=sum(r.stats.page_requests for r in results),
                wall_time=sum(r.stats.wall_time for r in results),
            )
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [3, 4]
        assert "re-aggregating 'page_requests'" in diagnostics[0].message
        assert "fold" in diagnostics[0].message

    def test_querystats_from_direct_stats_attribute_flagged(self):
        source = """\
        def widen(self, stats):
            return QueryStats(candidates=stats.candidates + 1)
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [2]
        assert "'candidates'" in diagnostics[0].message

    def test_querystats_from_folded_bundles_clean(self):
        # The sanctioned pattern: fold per-shard bundles, then build the
        # aggregate from the folded CostCounters alone.
        source = """\
        def merge(self, bundles, elapsed):
            total_counters = CostCounters()
            for bundle in bundles:
                total_counters.add(bundle)
            return QueryStats(
                page_requests=total_counters.page_requests,
                physical_reads=total_counters.page_reads,
                node_visits=total_counters.btree_node_visits,
                wall_time=elapsed,
            )
        """
        assert not findings(source, "counter-discipline")

    def test_stats_field_read_outside_querystats_clean(self):
        # Reading stats fields is fine anywhere else (reporting, tests);
        # only re-aggregation into a new QueryStats is the hazard.
        source = """\
        def report(results):
            return sum(r.stats.page_requests for r in results)
        """
        assert not findings(source, "counter-discipline")

    # -- convention 6: batched reads stay record-accurate ---------------

    def test_batched_read_without_counters_param_flagged(self):
        source = """\
        def scan_batches(self):
            return [self._page(i) for i in range(self.num_pages)]
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [1]
        assert "batched read API" in diagnostics[0].message
        assert "counters" in diagnostics[0].message

    def test_batched_read_with_counters_param_clean(self):
        source = """\
        def range_search_many(self, ranges, *, counters=None):
            out = []
            for low, high in ranges:
                entries = self._walk(low, high)
                if counters is not None:
                    counters.records_scanned += len(entries)
                out.append(entries)
            return out
        """
        assert not findings(source, "counter-discipline")

    def test_batched_read_charging_constant_flagged(self):
        source = """\
        def decode_batch(self, payloads, *, counters=None):
            if counters is not None:
                counters.records_decoded += 1
            return self._decode_all(payloads)
        """
        diagnostics = findings(source, "counter-discipline")
        assert [d.line for d in diagnostics] == [3]
        assert "literal constant" in diagnostics[0].message

    def test_batched_read_charging_batch_size_clean(self):
        source = """\
        def decode_batch(self, payloads, *, counters=None):
            if counters is not None:
                counters.records_decoded += len(payloads)
            return self._decode_all(payloads)
        """
        assert not findings(source, "counter-discipline")

    def test_bulk_load_is_not_a_batched_read(self):
        # "load" is deliberately not a read verb: one-time construction
        # is not query work and carries no per-query bundle.
        source = """\
        def bulk_load(self, entries):
            for key, payload in entries:
                self._append(key, payload)
        """
        assert not findings(source, "counter-discipline")

    def test_batch_marker_without_read_verb_clean(self):
        source = """\
        def knn_many(self, queries, k):
            return [self._knn(query, k) for query in queries]
        """
        assert not findings(source, "counter-discipline")

    def test_raw_batch_kernel_exempt_from_convention_six(self):
        # estimated_shared_frames_many is a RAW_KERNELS member: its
        # callers account for it (convention 2), the kernel itself stays
        # signature-free.
        source = """\
        def estimated_shared_frames_many(query, positions, radii, counts):
            return _compute(query, positions, radii, counts)
        """
        assert not findings(source, "counter-discipline")


# ---------------------------------------------------------------------------
# boundary-validation
# ---------------------------------------------------------------------------
class TestBoundaryValidation:
    CORE = "src/repro/core/example.py"

    def test_public_array_function_without_check_flagged(self):
        diagnostics = lint_source(
            "def centroid(frames):\n    return frames.mean(axis=0)\n",
            path=self.CORE,
            select=["boundary-validation"],
        )
        assert [d.line for d in diagnostics] == [1]
        assert "'frames'" in diagnostics[0].message

    def test_annotated_array_param_flagged(self):
        source = (
            "import numpy as np\n"
            "def centroid(cloud: np.ndarray):\n"
            "    return cloud.mean(axis=0)\n"
        )
        diagnostics = lint_source(
            source, path=self.CORE, select=["boundary-validation"]
        )
        assert [d.line for d in diagnostics] == [2]

    def test_check_call_clean(self):
        source = (
            "from repro.utils.validation import check_matrix\n"
            "def centroid(frames):\n"
            "    frames = check_matrix(frames, 'frames')\n"
            "    return frames.mean(axis=0)\n"
        )
        assert not lint_source(
            source, path=self.CORE, select=["boundary-validation"]
        )

    def test_private_function_exempt(self):
        assert not lint_source(
            "def _centroid(frames):\n    return frames.mean(axis=0)\n",
            path=self.CORE,
            select=["boundary-validation"],
        )

    def test_outside_core_and_baselines_exempt(self):
        assert not lint_source(
            "def centroid(frames):\n    return frames.mean(axis=0)\n",
            path="src/repro/eval/example.py",
            select=["boundary-validation"],
        )

    def test_baselines_module_covered(self):
        assert lint_source(
            "def centroid(frames):\n    return frames.mean(axis=0)\n",
            path="src/repro/baselines/example.py",
            select=["boundary-validation"],
        )


# ---------------------------------------------------------------------------
# float-equality
# ---------------------------------------------------------------------------
class TestFloatEquality:
    @pytest.mark.parametrize(
        "expression",
        [
            "x == 0.0",
            "0.0 == x",
            "x != 1.5",
            "x == -2.0",
            "x == float(y)",
            "x == 2.0 * y",
        ],
    )
    def test_float_comparisons_flagged(self, expression):
        assert lines_for(f"def f(x, y):\n    return {expression}\n",
                         "float-equality") == [2]

    def test_math_inf_comparison_flagged(self):
        source = """\
        import math

        def degenerate(log_volume):
            return log_volume == -math.inf
        """
        assert lines_for(source, "float-equality") == [4]

    @pytest.mark.parametrize(
        "expression",
        [
            "x == 0",  # int literal: not provably float
            "x <= 0.0",  # ordered comparison is the accepted idiom
            "math.isclose(x, 0.0)",
            "x is None",
        ],
    )
    def test_accepted_idioms_clean(self, expression):
        source = f"import math\ndef f(x):\n    return {expression}\n"
        assert not findings(source, "float-equality")

    def test_chained_comparison_single_finding(self):
        assert lines_for("def f(a, b, c):\n    return a == 0.0 == b\n",
                         "float-equality") == [2]


# ---------------------------------------------------------------------------
# wall-clock-discipline
# ---------------------------------------------------------------------------
class TestWallClock:
    def test_time_time_flagged(self):
        source = """\
        import time

        def measure(fn):
            start = time.time()
            fn()
            return time.time() - start
        """
        assert lines_for(source, "wall-clock-discipline") == [4, 6]

    def test_perf_counter_and_monotonic_flagged(self):
        source = """\
        import time

        def stamp():
            return time.perf_counter() + time.monotonic()
        """
        assert len(lines_for(source, "wall-clock-discipline")) == 2

    def test_timer_usage_clean(self):
        source = """\
        from repro.utils.counters import Timer

        def measure(fn):
            with Timer() as timer:
                fn()
            return timer.elapsed
        """
        assert not findings(source, "wall-clock-discipline")

    def test_time_sleep_clean(self):
        source = """\
        import time

        def backoff():
            time.sleep(0.1)
        """
        assert not findings(source, "wall-clock-discipline")


# ---------------------------------------------------------------------------
# injected-clock
# ---------------------------------------------------------------------------
class TestInjectedClock:
    RESILIENCE = "src/repro/shard/resilience.py"
    FAULTS = "src/repro/shard/faults.py"

    def test_time_sleep_flagged_in_resilience(self):
        source = textwrap.dedent(
            """\
            import time

            def backoff(delay):
                time.sleep(delay)
            """
        )
        diagnostics = lint_source(
            source, path=self.RESILIENCE, select=["injected-clock"]
        )
        assert [(d.rule, d.line) for d in diagnostics] == [
            ("injected-clock", 4)
        ]
        assert diagnostics[0].code == "VIL007"

    def test_random_and_numpy_random_flagged(self):
        source = textwrap.dedent(
            """\
            import random

            import numpy as np

            def jitter():
                return random.random() + np.random.random()
            """
        )
        assert [
            d.line
            for d in lint_source(
                source, path=self.FAULTS, select=["injected-clock"]
            )
        ] == [6, 6]

    def test_time_call_flagged_even_where_vil006_is_silent(self):
        # time.sleep is clean under wall-clock-discipline repo-wide, but in
        # the resilience layer even a sleep breaks virtual-clock replays.
        source = textwrap.dedent(
            """\
            import time

            def wait():
                time.sleep(0.1)
            """
        )
        assert not lint_source(
            source, path=self.RESILIENCE, select=["wall-clock-discipline"]
        )
        assert lint_source(
            source, path=self.RESILIENCE, select=["injected-clock"]
        )

    def test_injected_clock_usage_clean(self):
        source = textwrap.dedent(
            """\
            from repro.utils.clock import Clock

            def backoff(clock: Clock, delay: float) -> None:
                clock.sleep(delay)
                now = clock.now()
            """
        )
        assert not lint_source(
            source, path=self.RESILIENCE, select=["injected-clock"]
        )

    def test_out_of_scope_path_clean(self):
        source = textwrap.dedent(
            """\
            import time

            def measure():
                time.sleep(0.1)
            """
        )
        assert not findings(source, "injected-clock")

    def test_ingest_layer_is_in_scope(self):
        # The ingest pipeline's pump backoff and drift floors must replay
        # under a virtual clock, so repro/ingest/ carries VIL007 too.
        source = textwrap.dedent(
            """\
            import time

            def pump_backoff(delay):
                time.sleep(delay)
            """
        )
        diagnostics = lint_source(
            source,
            path="src/repro/ingest/pipeline.py",
            select=["injected-clock"],
        )
        assert [(d.rule, d.line) for d in diagnostics] == [
            ("injected-clock", 4)
        ]
        assert diagnostics[0].code == "VIL007"
