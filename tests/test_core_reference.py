"""Tests for reference-point strategies and Theorem 1's key-variance claim."""

import numpy as np
import pytest

from repro.core.reference import (
    DataCenter,
    OptimalReference,
    SpaceCenter,
    make_reference_strategy,
)
from repro.core.transform import OneDimensionalTransform, key_variance


def correlated_points(rng, rows=400, dim=8):
    """Points with a dominant variance direction, as Theorem 1 assumes."""
    direction = rng.normal(0, 1, dim)
    direction /= np.linalg.norm(direction)
    coefficients = rng.uniform(-2.0, 2.0, rows)
    noise = rng.normal(0, 0.1, (rows, dim))
    return 0.5 + coefficients[:, None] * direction[None, :] + noise


class TestSpaceCenter:
    def test_midpoint(self):
        strategy = SpaceCenter(0.0, 1.0)
        point = strategy.locate(np.zeros((3, 5)))
        assert np.allclose(point, 0.5)

    def test_custom_domain(self):
        strategy = SpaceCenter(-2.0, 4.0)
        assert np.allclose(strategy.locate(np.zeros((1, 2))), 1.0)

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            SpaceCenter(1.0, 1.0)

    def test_name(self):
        assert SpaceCenter().name == "space_center"


class TestDataCenter:
    def test_mean(self, rng):
        data = rng.normal(3.0, 1.0, (50, 4))
        assert np.allclose(DataCenter().locate(data), data.mean(axis=0))

    def test_name(self):
        assert DataCenter().name == "data_center"


class TestOptimalReference:
    def test_lies_on_first_component_line(self, rng):
        data = correlated_points(rng)
        strategy = OptimalReference(margin=0.1)
        point = strategy.locate(data)
        pca = strategy.pca_
        # The vector from the centre to the reference point must be
        # parallel to the first principal component.
        offset = point - pca.center_
        cosine = abs(offset @ pca.first_component) / np.linalg.norm(offset)
        assert cosine == pytest.approx(1.0, abs=1e-10)

    def test_outside_variance_segment(self, rng):
        data = correlated_points(rng)
        strategy = OptimalReference(margin=0.05)
        point = strategy.locate(data)
        low, high = strategy.segment_
        projection = (point - strategy.pca_.center_) @ strategy.pca_.first_component
        assert projection < low

    def test_degenerate_data_fallback(self):
        data = np.ones((10, 3))
        point = OptimalReference().locate(data)
        # Unit offset fallback: the point differs from the (single) data
        # location.
        assert np.linalg.norm(point - data[0]) == pytest.approx(1.0)

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            OptimalReference(margin=0.0)

    def test_name(self):
        assert OptimalReference().name == "optimal"


class TestTheorem1:
    def test_optimal_maximises_key_variance(self, rng):
        """The heart of Section 5.1: on correlated data the optimal
        reference point yields higher key variance than the data centre,
        which beats the space centre."""
        data = correlated_points(rng)
        variances = {}
        for name in ("optimal", "data_center", "space_center"):
            transform = OneDimensionalTransform(name).fit(data)
            variances[name] = key_variance(transform, data)
        assert variances["optimal"] > variances["data_center"]
        assert variances["optimal"] > variances["space_center"]

    def test_variance_preserved_along_line(self, rng):
        """A reference point on the line, outside the segment, preserves
        pairwise distances of collinear points exactly."""
        direction = np.array([1.0, 2.0, -1.0])
        direction = direction / np.linalg.norm(direction)
        ts = rng.uniform(0.0, 3.0, 50)
        data = ts[:, None] * direction[None, :]
        transform = OneDimensionalTransform("optimal").fit(data)
        keys = transform.keys(data)
        # |key_i - key_j| == d(O_i, O_j) for all pairs.
        key_gaps = np.abs(keys[:, None] - keys[None, :])
        true_gaps = np.abs(ts[:, None] - ts[None, :])
        assert np.allclose(key_gaps, true_gaps, atol=1e-9)


class TestFactory:
    def test_all_kinds(self):
        assert isinstance(make_reference_strategy("optimal"), OptimalReference)
        assert isinstance(make_reference_strategy("data_center"), DataCenter)
        assert isinstance(make_reference_strategy("space_center"), SpaceCenter)

    def test_kwargs_forwarded(self):
        strategy = make_reference_strategy("optimal", margin=0.25)
        assert strategy.margin == 0.25

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            make_reference_strategy("centroid")
