"""Tests for sphere-sphere intersection volumes (repro.geometry.intersection)."""

import math

import pytest

from repro.geometry.intersection import (
    IntersectionCase,
    classify_intersection,
    intersection_fraction_of_smaller,
    intersection_volume,
    log_intersection_volume,
)
from repro.geometry.volumes import sphere_volume


def lens_volume_3d(r1: float, r2: float, d: float) -> float:
    """Closed-form 3-D lens volume (two intersecting spheres)."""
    return (
        math.pi
        * (r1 + r2 - d) ** 2
        * (d * d + 2 * d * (r1 + r2) - 3 * (r1 - r2) ** 2)
        / (12 * d)
    )


def lens_area_2d(r1: float, r2: float, d: float) -> float:
    """Closed-form 2-D lens area."""
    part1 = r1 * r1 * math.acos((d * d + r1 * r1 - r2 * r2) / (2 * d * r1))
    part2 = r2 * r2 * math.acos((d * d + r2 * r2 - r1 * r1) / (2 * d * r2))
    part3 = 0.5 * math.sqrt(
        (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
    )
    return part1 + part2 - part3


class TestClassification:
    def test_disjoint(self):
        assert (
            classify_intersection(1.0, 0.5, 1.6) is IntersectionCase.DISJOINT
        )

    def test_touching_is_disjoint(self):
        # d == R1 + R2 has zero-measure intersection: paper case 1.
        assert (
            classify_intersection(1.0, 0.5, 1.5) is IntersectionCase.DISJOINT
        )

    def test_lens_acute(self):
        assert (
            classify_intersection(1.0, 0.5, 0.9) is IntersectionCase.LENS_ACUTE
        )

    def test_lens_obtuse(self):
        # R1 - R2 <= d < R2 (paper case 3).
        assert (
            classify_intersection(1.0, 0.8, 0.5) is IntersectionCase.LENS_OBTUSE
        )

    def test_contained(self):
        assert (
            classify_intersection(1.0, 0.3, 0.5) is IntersectionCase.CONTAINED
        )

    def test_order_independent(self):
        assert classify_intersection(0.5, 1.0, 0.9) is classify_intersection(
            1.0, 0.5, 0.9
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            classify_intersection(-1.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            classify_intersection(1.0, 0.5, -0.5)


class TestIntersectionVolume:
    def test_disjoint_zero(self):
        assert intersection_volume(3, 1.0, 1.0, 2.5) == 0.0
        assert log_intersection_volume(3, 1.0, 1.0, 2.5) == -math.inf

    def test_contained_is_small_sphere(self):
        got = intersection_volume(4, 2.0, 0.5, 0.3)
        assert got == pytest.approx(sphere_volume(4, 0.5), rel=1e-12)

    def test_concentric(self):
        got = intersection_volume(3, 1.0, 0.4, 0.0)
        assert got == pytest.approx(sphere_volume(3, 0.4), rel=1e-12)

    def test_equal_spheres_2d(self):
        r, d = 1.0, 1.0
        expected = 2 * r * r * math.acos(d / (2 * r)) - d / 2 * math.sqrt(
            4 * r * r - d * d
        )
        assert intersection_volume(2, r, r, d) == pytest.approx(expected, rel=1e-10)

    @pytest.mark.parametrize(
        "r1, r2, d",
        [
            (2.0, 1.5, 2.2),   # case 2 (both caps acute)
            (2.0, 1.5, 0.8),   # case 3 (obtuse beta)
            (1.0, 1.0, 0.5),
            (3.0, 0.5, 2.8),
        ],
    )
    def test_3d_closed_form(self, r1, r2, d):
        assert intersection_volume(3, r1, r2, d) == pytest.approx(
            lens_volume_3d(r1, r2, d), rel=1e-9
        )

    @pytest.mark.parametrize(
        "r1, r2, d",
        [(2.0, 1.5, 2.2), (2.0, 1.5, 0.8), (1.0, 1.0, 1.2)],
    )
    def test_2d_closed_form(self, r1, r2, d):
        assert intersection_volume(2, r1, r2, d) == pytest.approx(
            lens_area_2d(r1, r2, d), rel=1e-9
        )

    def test_symmetric_in_radii(self):
        a = intersection_volume(5, 1.3, 0.9, 1.0)
        b = intersection_volume(5, 0.9, 1.3, 1.0)
        assert a == pytest.approx(b, rel=1e-12)

    def test_monotone_decreasing_in_distance(self):
        distances = [0.1, 0.4, 0.8, 1.2, 1.6, 1.9]
        values = [intersection_volume(4, 1.0, 1.0, d) for d in distances]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_case_boundary_continuity(self):
        # Volume must be continuous across the case-2/case-3 boundary
        # (d == R2) and the case-3/case-4 boundary (d == R1 - R2).
        r1, r2 = 1.0, 0.7
        for boundary in (r2, r1 - r2):
            below = intersection_volume(3, r1, r2, boundary - 1e-9)
            above = intersection_volume(3, r1, r2, boundary + 1e-9)
            assert below == pytest.approx(above, rel=1e-5)

    def test_monte_carlo_4d(self):
        # Monte Carlo estimate of the lens in 4 dimensions.
        import numpy as np

        rng = np.random.default_rng(5)
        r1, r2, d = 1.0, 0.8, 0.9
        samples = rng.uniform(-1.0, 1.0, size=(400_000, 4))
        inside1 = np.sum(samples * samples, axis=1) <= r1 * r1
        shifted = samples.copy()
        shifted[:, 0] -= d
        inside2 = np.sum(shifted * shifted, axis=1) <= r2 * r2
        box = 2.0**4
        estimate = box * np.mean(inside1 & inside2)
        assert intersection_volume(4, r1, r2, d) == pytest.approx(
            estimate, rel=0.05
        )


class TestFractionOfSmaller:
    def test_bounds(self):
        for d in (0.0, 0.2, 0.5, 1.0, 3.0):
            f = intersection_fraction_of_smaller(8, 1.0, 0.6, d)
            assert 0.0 <= f <= 1.0

    def test_contained_is_one(self):
        assert intersection_fraction_of_smaller(6, 2.0, 0.5, 0.2) == 1.0

    def test_disjoint_is_zero(self):
        assert intersection_fraction_of_smaller(6, 1.0, 0.5, 3.0) == 0.0

    def test_high_dim_stable(self):
        f = intersection_fraction_of_smaller(64, 0.15, 0.15, 0.05)
        assert 0.0 < f < 1.0
        assert math.isfinite(f)

    def test_point_mass_inside(self):
        assert intersection_fraction_of_smaller(3, 1.0, 0.0, 0.5) == 1.0

    def test_point_mass_on_boundary(self):
        assert intersection_fraction_of_smaller(3, 1.0, 0.0, 1.0) == 1.0

    def test_point_mass_outside(self):
        assert intersection_fraction_of_smaller(3, 1.0, 0.0, 1.5) == 0.0

    def test_matches_volume_ratio(self):
        n, r1, r2, d = 5, 1.2, 0.8, 1.0
        expected = intersection_volume(n, r1, r2, d) / sphere_volume(n, r2)
        assert intersection_fraction_of_smaller(n, r1, r2, d) == pytest.approx(
            expected, rel=1e-9
        )
