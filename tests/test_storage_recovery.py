"""Crash-point sweep: recovery must work from *every* disk operation.

The deterministic fault injector counts every disk operation of a
workload.  A sweep first runs the workload fault-free to measure its
operation count and record the state committed at each sync/checkpoint,
then re-runs it once per operation index k, crashing (and damaging the
k-th operation) and reopening the files with a plain, fault-free stack.

The recovery contract asserted for every k:

* all page checksums verify;
* structural invariants hold (B+-tree checker, heap accounting);
* the recovered state equals one of the committed snapshots — never a
  partial or mixed state;
* the recovered snapshot is at least as new as the last sync that fully
  completed before operation k (a crash *during* a commit may legally
  recover forward to that commit, but never backward past a completed
  one);
* at database level, every video committed before the crash is still
  present and queryable.

``RECOVERY_SEED`` (environment) varies the workload data and the damage
modes; CI runs the sweep under several seeds.
"""

import os

import numpy as np
import pytest

from repro.btree.checker import check_tree
from repro.btree.tree import BPlusTree
from repro.core.database import VideoDatabase
from repro.storage.buffer_pool import BufferPool
from repro.storage.faults import FaultInjectingPager, FaultInjector, SimulatedCrash
from repro.storage.pager import Pager
from repro.utils.rng import ensure_rng

SEED = int(os.environ.get("RECOVERY_SEED", "0"))
_MODES = ("drop", "torn", "duplicate")


def _mode_for(k: int) -> str:
    return _MODES[(k + SEED) % len(_MODES)]


class TestPagerSweep:
    """Sweep a plain pager workload of three syncs."""

    ROUNDS = 3
    PAGES = 4

    def _run(self, pager):
        """Three rounds of writes+sync; returns (snapshots, ops_after)."""
        snapshots = []
        ops_after = []
        for round_index in range(self.ROUNDS):
            if pager.num_pages == 0:
                for _ in range(self.PAGES):
                    pager.allocate_page()
            for page_id in range(self.PAGES):
                page = pager.read_page(page_id)
                page.data[:8] = bytes([round_index + 1 + SEED % 100]) * 8
                pager.write_page(page)
            pager.sync()
            snapshots.append(bytes([round_index + 1 + SEED % 100]) * 8)
            ops_after.append(pager.faults.ops if hasattr(pager, "faults") else 0)
        return snapshots, ops_after

    def test_sweep_every_crash_point(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        pager = FaultInjectingPager(baseline_dir / "d.pages")
        snapshots, ops_after = self._run(pager)
        pager.close()
        total_ops = pager.faults.ops
        assert total_ops > 0

        for k in range(1, total_ops + 1):
            workdir = tmp_path / f"k{k}"
            workdir.mkdir()
            path = workdir / "d.pages"
            crashed = False
            try:
                faulted = FaultInjectingPager(
                    path, crash_after=k, mode=_mode_for(k)
                )
                self._run(faulted)
                faulted.close()
            except SimulatedCrash:
                crashed = True
            assert crashed, f"k={k}: crash point never reached"

            with Pager(path) as recovered:
                recovered.verify_checksums()
                if recovered.num_pages == 0:
                    state = None  # nothing ever committed
                else:
                    assert recovered.num_pages == self.PAGES
                    contents = {
                        bytes(recovered.read_page(p).data[:8])
                        for p in range(self.PAGES)
                    }
                    assert len(contents) == 1, (
                        f"k={k}: pages from different commits: {contents}"
                    )
                    state = contents.pop()
            completed = sum(1 for ops in ops_after if ops < k)
            if state is None:
                assert completed == 0, (
                    f"k={k}: lost {completed} completed sync(s)"
                )
            else:
                recovered_round = snapshots.index(state)
                assert recovered_round + 1 >= completed, (
                    f"k={k}: recovered round {recovered_round + 1} but "
                    f"{completed} syncs completed before the crash"
                )


class TestBTreeSweep:
    """Sweep a B+-tree workload: inserts in committed batches."""

    BATCHES = 3
    BATCH = 25

    def _payload(self, key: float) -> bytes:
        return int(key).to_bytes(8, "little")

    def _keys(self):
        rng = ensure_rng(SEED)
        keys = rng.permutation(self.BATCHES * self.BATCH).astype(float)
        return [float(k) for k in keys]

    def _run(self, pager):
        pool = BufferPool(pager, capacity=8)
        tree = BPlusTree.create(pool, payload_size=8)
        keys = self._keys()
        ops_after = []
        for batch_index in range(self.BATCHES):
            for key in keys[
                batch_index * self.BATCH : (batch_index + 1) * self.BATCH
            ]:
                tree.insert(key, self._payload(key))
            tree.flush()
            pager.sync()
            ops_after.append(pager.faults.ops if hasattr(pager, "faults") else 0)
        return ops_after

    def test_sweep_every_crash_point(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        baseline_dir.mkdir()
        pager = FaultInjectingPager(baseline_dir / "t.pages")
        ops_after = self._run(pager)
        pager.close()
        total_ops = pager.faults.ops
        keys = self._keys()

        for k in range(1, total_ops + 1):
            workdir = tmp_path / f"k{k}"
            workdir.mkdir()
            path = workdir / "t.pages"
            try:
                faulted = FaultInjectingPager(
                    path, crash_after=k, mode=_mode_for(k)
                )
                self._run(faulted)
                faulted.close()
                raise AssertionError(f"k={k}: crash point never reached")
            except SimulatedCrash:
                pass

            with Pager(path) as recovered:
                recovered.verify_checksums()
                if recovered.num_pages == 0:
                    completed = sum(1 for ops in ops_after if ops < k)
                    assert completed == 0, (
                        f"k={k}: lost {completed} completed batch(es)"
                    )
                    continue
                pool = BufferPool(recovered, capacity=8)
                tree = BPlusTree.open(pool)
                check_tree(tree)
                # The entry count must be a whole number of batches, at
                # least every batch fully synced before the crash.
                assert tree.num_entries % self.BATCH == 0, (
                    f"k={k}: {tree.num_entries} entries is a partial batch"
                )
                batches = tree.num_entries // self.BATCH
                completed = sum(1 for ops in ops_after if ops < k)
                assert batches >= completed, (
                    f"k={k}: recovered {batches} batch(es) but {completed} "
                    "completed before the crash"
                )
                for key in keys[: batches * self.BATCH]:
                    found = tree.search(key)
                    assert self._payload(key) in found, (
                        f"k={k}: committed key {key} lost"
                    )


class TestDatabaseSweep:
    """Sweep the durable VideoDatabase: checkpointed videos survive any
    crash and stay queryable (the PR's acceptance criterion)."""

    VIDEOS = 3
    DIM = 4
    FRAMES = 12

    def _frames(self, video_id: int) -> np.ndarray:
        rng = ensure_rng(1000 * SEED + video_id)
        base = np.zeros((1, self.DIM))
        base[0, video_id % self.DIM] = 10.0 * (video_id + 1)
        return base + 0.05 * rng.normal(size=(self.FRAMES, self.DIM))

    def _run(self, path, fault_injector=None):
        db = VideoDatabase(
            epsilon=0.4, path=path, fault_injector=fault_injector
        )
        ops_after = []
        try:
            for video_id in range(self.VIDEOS):
                db.add(self._frames(video_id), video_id)
                db.checkpoint()
                if fault_injector is not None:
                    ops_after.append(fault_injector.ops)
            db.close()
        except SimulatedCrash:
            db.crash()
            raise
        return ops_after

    def test_sweep_every_crash_point(self, tmp_path):
        injector = FaultInjector()  # counting only
        ops_after = self._run(tmp_path / "baseline", injector)
        total_ops = injector.ops
        assert total_ops > 0

        for k in range(1, total_ops + 1):
            path = tmp_path / f"k{k}"
            try:
                self._run(
                    path,
                    FaultInjector(crash_after=k, mode=_mode_for(k)),
                )
                raise AssertionError(f"k={k}: crash point never reached")
            except SimulatedCrash:
                pass

            db = VideoDatabase(path=path)
            try:
                committed = sorted(db.index.video_frames) if db.index else []
                completed = sum(1 for ops in ops_after if ops < k)
                assert len(committed) >= completed, (
                    f"k={k}: {len(committed)} video(s) survive but "
                    f"{completed} checkpoint(s) completed before the crash"
                )
                assert committed == list(range(len(committed))), (
                    f"k={k}: non-prefix video set {committed}"
                )
                if db.index is not None:
                    check_tree(db.index.btree)
                    assert db.index.heap.verify() == []
                    db.index.btree.buffer_pool.pager.verify_checksums()
                    db.index.heap.buffer_pool.pager.verify_checksums()
                    for video_id in committed:
                        result = db.query(self._frames(video_id), k=1)
                        assert result.videos == (video_id,), (
                            f"k={k}: committed video {video_id} not "
                            f"queryable (got {result.videos})"
                        )
            finally:
                db.close()

    def test_crash_during_recovery_is_recoverable(self, tmp_path):
        """Crashing while *recovering* must itself be recoverable: run the
        workload, crash mid-commit, then crash the reopen at every one of
        its operations and verify a final clean reopen."""
        # Build a directory whose WAL holds a committed-but-unapplied txn
        # by crashing just before the post-commit apply completes.
        injector = FaultInjector()
        self._run(tmp_path / "baseline", injector)
        total_ops = injector.ops

        crash_k = max(1, total_ops - 2)
        path = tmp_path / "victim"
        with pytest.raises(SimulatedCrash):
            self._run(path, FaultInjector(crash_after=crash_k, mode="drop"))

        # Sweep the reopen itself.
        reopen_injector = FaultInjector()
        db = VideoDatabase(path=path, fault_injector=reopen_injector)
        expect_videos = sorted(db.index.video_frames) if db.index else []
        db.close()
        # db.close() committed (clean), so re-prime the directory.
        path2 = tmp_path / "victim2"
        with pytest.raises(SimulatedCrash):
            self._run(path2, FaultInjector(crash_after=crash_k, mode="drop"))
        reopen_ops = reopen_injector.ops
        for k in range(1, reopen_ops + 1):
            try:
                db = VideoDatabase(
                    path=path2,
                    fault_injector=FaultInjector(crash_after=k, mode=_mode_for(k)),
                )
                db.crash()
            except SimulatedCrash:
                pass
        # After arbitrarily many interrupted recoveries, a clean reopen
        # still lands on the committed state.
        db = VideoDatabase(path=path2)
        got = sorted(db.index.video_frames) if db.index else []
        assert got == expect_videos
        if db.index is not None:
            check_tree(db.index.btree)
            assert db.index.heap.verify() == []
        db.close()
