"""Tests for repro.core.summarize."""

import numpy as np
import pytest

from repro.core.summarize import summarize_video


def shot_frames(rng, anchors, per_shot=15, jitter=0.01):
    frames = []
    for anchor in anchors:
        frames.append(anchor + rng.normal(0, jitter, (per_shot, len(anchor))))
    return np.vstack(frames)


class TestSummarizeVideo:
    def test_counts_sum_to_frames(self, rng):
        frames = shot_frames(rng, [np.zeros(6), np.full(6, 1.0)])
        summary = summarize_video(5, frames, epsilon=0.3, seed=0)
        assert summary.video_id == 5
        assert summary.num_frames == len(frames)
        assert sum(v.count for v in summary.vitris) == len(frames)

    def test_radius_floor_applied(self):
        frames = np.ones((10, 4))  # identical frames -> raw radius 0
        summary = summarize_video(0, frames, epsilon=0.2, seed=0)
        assert len(summary) == 1
        assert summary.vitris[0].radius == pytest.approx(0.2 * 1e-3)

    def test_custom_radius_floor(self):
        frames = np.ones((10, 4))
        summary = summarize_video(0, frames, epsilon=0.2, min_radius=0.05, seed=0)
        assert summary.vitris[0].radius == 0.05

    def test_zero_floor_allowed(self):
        frames = np.ones((10, 4))
        summary = summarize_video(0, frames, epsilon=0.2, min_radius=0.0, seed=0)
        assert summary.vitris[0].radius == 0.0

    def test_epsilon_controls_granularity(self, rng):
        anchors = [rng.normal(0, 1, 8) for _ in range(4)]
        frames = shot_frames(rng, anchors, jitter=0.02)
        fine = summarize_video(0, frames, epsilon=0.1, seed=0)
        coarse = summarize_video(0, frames, epsilon=10.0, seed=0)
        assert len(fine) > len(coarse)
        assert len(coarse) == 1

    def test_radii_bounded_by_half_epsilon(self, rng):
        frames = shot_frames(rng, [np.zeros(5), np.full(5, 2.0)])
        epsilon = 0.4
        summary = summarize_video(0, frames, epsilon, seed=0)
        for vitri in summary.vitris:
            assert vitri.radius <= epsilon / 2.0 + 1e-12

    def test_deterministic_with_seed(self, rng):
        frames = shot_frames(rng, [np.zeros(5), np.full(5, 1.0)])
        a = summarize_video(0, frames, 0.3, seed=9)
        b = summarize_video(0, frames, 0.3, seed=9)
        assert len(a) == len(b)
        for va, vb in zip(a.vitris, b.vitris):
            assert np.allclose(va.position, vb.position)
            assert va.count == vb.count

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            summarize_video(0, np.zeros((3, 2)), epsilon=0.0)

    def test_invalid_frames(self):
        with pytest.raises(ValueError):
            summarize_video(0, np.zeros((0, 2)), epsilon=0.1)
        with pytest.raises(ValueError):
            summarize_video(0, [1.0, 2.0], epsilon=0.1)
