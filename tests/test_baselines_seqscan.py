"""Tests for the sequential-scan baseline."""

import numpy as np
import pytest

from repro.baselines.seqscan import SequentialScan


class TestSequentialScan:
    def test_results_match_index(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        for query_id in range(0, len(small_summaries), 4):
            query = small_summaries[query_id]
            a = scan.knn(query, 6)
            b = small_index.knn(query, 6, cold=True)
            assert a.videos == b.videos
            assert np.allclose(a.scores, b.scores)

    def test_reads_every_data_page(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        result = scan.knn(small_summaries[0], 5, cold=True)
        assert result.stats.page_requests == small_index.heap.num_data_pages

    def test_evaluates_every_pair(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        query = small_summaries[3]
        result = scan.knn(query, 5)
        expected = small_index.num_vitris * len(query.vitris)
        assert result.stats.similarity_computations == expected
        assert result.stats.candidates == small_index.num_vitris

    def test_cpu_cost_at_least_index(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        for query_id in (0, 7):
            query = small_summaries[query_id]
            a = scan.knn(query, 5)
            b = small_index.knn(query, 5, cold=True)
            assert a.stats.similarity_computations >= b.stats.similarity_computations

    def test_warm_scan_still_counts_requests(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        first = scan.knn(small_summaries[0], 5, cold=True)
        warm = scan.knn(small_summaries[0], 5, cold=False)
        assert warm.stats.page_requests == first.stats.page_requests

    def test_invalid_arguments(self, small_index, small_summaries):
        scan = SequentialScan(small_index)
        with pytest.raises(ValueError):
            scan.knn(small_summaries[0], 0)
        with pytest.raises(TypeError):
            scan.knn("nope", 5)
        with pytest.raises(TypeError):
            SequentialScan("not an index")
