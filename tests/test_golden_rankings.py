"""Golden-ranking regression fixtures.

Three seeded corpora are frozen under ``tests/golden/``: for each, the
full KNN answer of every query — ranked videos, the *exact* score floats
(round-tripped through ``repr`` so every bit is pinned), and the logical
cost signature.  Any change to clustering, the 1-D transform, the
geometry kernels, score folding, or the counter discipline shows up here
as a diff against a committed file rather than a silently shifted
number.

Regenerating: run ``pytest tests/test_golden_rankings.py --update-golden``
after an intentional behaviour change and commit the new fixtures
together with the code that changed them.  The test fails (rather than
writes) by default so CI can never "self-heal" a regression.

Physical I/O counts are part of the signature: queries run cold against
a fixed buffer capacity, so ``page_requests`` / ``physical_reads`` are
deterministic.
"""

import json
import os

import pytest

from repro.core.index import VitriIndex
from repro.core.summarize import summarize_video
from repro.datasets.synthetic import DatasetConfig, generate_dataset
from repro.utils.counters import CostCounters

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

SEEDS = (101, 202, 303)
EPSILON = 0.3
DIM = 16
K = 5
BUFFER_CAPACITY = 64  # fixed so cold physical reads are reproducible


def build_corpus(seed):
    config = DatasetConfig(
        dim=DIM,
        num_families=3,
        family_size=3,
        num_distractors=5,
        duration_classes=((30, 0.6), (20, 0.4)),
    )
    dataset = generate_dataset(config, seed=seed)
    summaries = [
        summarize_video(i, dataset.frames(i), EPSILON, seed=seed + i)
        for i in range(dataset.num_videos)
    ]
    index = VitriIndex.build(
        summaries, EPSILON, buffer_capacity=BUFFER_CAPACITY
    )
    return summaries, index


def snapshot_corpus(seed):
    """The corpus's full golden record: every video queried, both methods."""
    summaries, index = build_corpus(seed)
    queries = {}
    for query in summaries:
        per_method = {}
        for method in ("composed", "naive"):
            counters = CostCounters()
            result = index.knn(
                query,
                K,
                method=method,
                cold=True,
                out_counters=counters,
            )
            per_method[method] = {
                "videos": list(result.videos),
                # repr round-trips the exact float64 bits through JSON.
                "scores": [repr(score) for score in result.scores],
                "cost": {
                    "page_requests": result.stats.page_requests,
                    "physical_reads": result.stats.physical_reads,
                    "node_visits": result.stats.node_visits,
                    "similarity_computations": (
                        result.stats.similarity_computations
                    ),
                    "candidates": result.stats.candidates,
                    "ranges": result.stats.ranges,
                    "records_scanned": counters.records_scanned,
                    "records_decoded": counters.records_decoded,
                },
            }
        queries[str(query.video_id)] = per_method
    return {
        "seed": seed,
        "epsilon": EPSILON,
        "dim": DIM,
        "k": K,
        "buffer_capacity": BUFFER_CAPACITY,
        "num_videos": len(summaries),
        "queries": queries,
    }


def golden_path(seed):
    return os.path.join(GOLDEN_DIR, f"rankings_seed_{seed}.json")


@pytest.mark.parametrize("seed", SEEDS)
def test_rankings_match_golden(seed, update_golden):
    current = snapshot_corpus(seed)
    path = golden_path(seed)
    if update_golden:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=1, sort_keys=True)
            handle.write("\n")
        pytest.skip(f"golden fixture regenerated: {path}")
    assert os.path.exists(path), (
        f"missing golden fixture {path}; generate it with "
        "pytest tests/test_golden_rankings.py --update-golden"
    )
    with open(path, encoding="utf-8") as handle:
        golden = json.load(handle)
    # Compare piecewise for actionable failure messages before the full
    # structural equality check.
    assert current["num_videos"] == golden["num_videos"]
    for video_id, per_method in golden["queries"].items():
        for method, want in per_method.items():
            got = current["queries"][video_id][method]
            assert got["videos"] == want["videos"], (
                f"seed {seed} query {video_id} ({method}): ranking changed"
            )
            assert got["scores"] == want["scores"], (
                f"seed {seed} query {video_id} ({method}): score bits changed"
            )
            assert got["cost"] == want["cost"], (
                f"seed {seed} query {video_id} ({method}): cost signature "
                "changed"
            )
    assert current == golden


@pytest.mark.parametrize("seed", SEEDS)
def test_scalar_impl_reproduces_golden_scores(seed):
    """The scalar oracle reproduces the frozen (vectorized) score bits."""
    path = golden_path(seed)
    if not os.path.exists(path):
        pytest.skip("golden fixture not generated yet")
    with open(path, encoding="utf-8") as handle:
        golden = json.load(handle)
    summaries, index = build_corpus(seed)
    for query in summaries[:3]:
        want = golden["queries"][str(query.video_id)]["composed"]
        result = index.knn(query, K, impl="scalar", cold=True)
        assert list(result.videos) == want["videos"]
        assert [repr(score) for score in result.scores] == want["scores"]
