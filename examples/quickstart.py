"""Quickstart: build a ViTri index over a video library and query it.

Walks the full pipeline of the paper:

1. a video library (synthetic TV ads — sequences of 64-d colour
   histograms);
2. summarisation of every video into Video Triplets (clusters of similar
   frames modelled as hyperspheres);
3. a B+-tree index over the 1-D-transformed ViTri positions, using the
   PCA-based optimal reference point;
4. a KNN query, with the exact I/O and CPU cost of answering it.

Run:  python examples/quickstart.py
"""

import repro
from repro.datasets import DatasetConfig, generate_dataset

EPSILON = 0.3  # frame similarity threshold (paper Section 6.2 setting)


def main() -> None:
    # 1. A small library: 6 near-duplicate families plus distractors.
    config = DatasetConfig.precision_preset(
        num_families=6,
        family_size=4,
        num_distractors=16,
        duration_classes=((60, 0.5), (40, 0.5)),
    )
    library = generate_dataset(config, seed=7)
    print(f"library: {library.num_videos} videos, {library.total_frames} frames, "
          f"{library.dim}-d features")

    # 2. Summarise every video into ViTris.
    summaries = [
        repro.summarize_video(video_id, library.frames(video_id), EPSILON,
                              seed=video_id)
        for video_id in range(library.num_videos)
    ]
    total_vitris = sum(len(summary) for summary in summaries)
    print(f"summaries: {total_vitris} ViTris "
          f"({library.total_frames / total_vitris:.0f} frames per cluster)")

    # 3. Build the index (bulk, one-off construction).
    index = repro.VitriIndex.build(summaries, EPSILON, reference="optimal")
    print(f"index: {index}")

    # 4. Query: find the 5 most similar videos to video 0.
    query = summaries[0]
    result = index.knn(query, k=5, cold=True)
    print("\ntop-5 most similar videos to video 0 "
          f"(family {library.info(0).family}):")
    for rank, (video, score) in enumerate(zip(result.videos, result.scores), 1):
        family = library.info(video).family
        print(f"  {rank}. video {video:3d} (family {family:2d})  "
              f"similarity {score:.4f}")

    stats = result.stats
    print(f"\nquery cost: {stats.page_requests} page accesses, "
          f"{stats.similarity_computations} ViTri similarity computations, "
          f"{stats.ranges} composed range search(es) "
          f"over {index.num_vitris} indexed ViTris")


if __name__ == "__main__":
    main()
