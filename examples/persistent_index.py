"""On-disk indexes: build once, reopen later.

The index's two page stores (B+-tree and ViTri heap) live in ordinary
files with 4 KiB pages; the non-paged metadata (epsilon, the fitted
reference point, per-video frame counts) is a small JSON sidecar.  This
script builds a file-backed index, closes everything, reopens it in a
fresh process state and repeats the query.

Run:  python examples/persistent_index.py
"""

import os
import tempfile

import repro
from repro.datasets import DatasetConfig, generate_dataset

EPSILON = 0.3


def main() -> None:
    config = DatasetConfig.precision_preset(
        num_families=4,
        family_size=3,
        num_distractors=12,
        duration_classes=((50, 1.0),),
    )
    library = generate_dataset(config, seed=21)
    summaries = [
        repro.summarize_video(i, library.frames(i), EPSILON, seed=i)
        for i in range(library.num_videos)
    ]

    with tempfile.TemporaryDirectory() as directory:
        btree_path = os.path.join(directory, "ads.btree")
        heap_path = os.path.join(directory, "ads.heap")
        meta_path = os.path.join(directory, "ads.meta.json")

        # Build and persist.
        index = repro.VitriIndex.build(
            summaries, EPSILON,
            btree_path=btree_path, heap_path=heap_path,
        )
        first_answer = index.knn(summaries[0], 5).videos
        index.flush()
        index.save_meta(meta_path)
        btree_size = os.path.getsize(btree_path)
        heap_size = os.path.getsize(heap_path)
        print(f"persisted: {index.num_vitris} ViTris -> "
              f"{btree_size // 1024} KiB B+-tree + {heap_size // 1024} KiB heap "
              f"({btree_size // 4096} + {heap_size // 4096} pages)")

        # Reopen from the files alone and query again.
        reopened = repro.VitriIndex.open(btree_path, heap_path, meta_path)
        second_answer = reopened.knn(summaries[0], 5).videos
        print(f"reopened:  {reopened}")
        print(f"answers identical: {first_answer == second_answer}")
        print(f"top-5 for video 0: {list(second_answer)}")


if __name__ == "__main__":
    main()
