"""The precision-efficiency trade-off of the frame similarity threshold.

Epsilon is the paper's single tuning knob.  A small epsilon keeps clusters
tight (many ViTris, accurate retrieval, more work per query); a large
epsilon collapses videos into a handful of coarse clusters (tiny summary,
cheaper queries, degraded precision).  This script sweeps epsilon and
prints the whole trade-off surface: summary size, retrieval precision
against exact frame-level ground truth, and query cost.

Run:  python examples/epsilon_tradeoff.py
"""

import numpy as np

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import GroundTruthCache, precision_at_k

EPSILONS = (0.2, 0.3, 0.4, 0.5)
K = 5


def main() -> None:
    config = DatasetConfig.precision_preset(
        num_families=6,
        family_size=5,
        num_distractors=14,
        duration_classes=((60, 0.5), (40, 0.5)),
    )
    library = generate_dataset(config, seed=13)
    ground_truth = GroundTruthCache(library)
    queries = [library.family_members(f)[0] for f in library.families]
    print(f"library: {library.num_videos} videos, "
          f"{library.total_frames} frames; {len(queries)} queries, {K}-NN\n")

    print(f"{'eps':>5} {'ViTris':>7} {'frames/cluster':>15} "
          f"{'precision':>10} {'pages/query':>12} {'sims/query':>11}")
    for epsilon in EPSILONS:
        summaries = [
            repro.summarize_video(i, library.frames(i), epsilon, seed=i)
            for i in range(library.num_videos)
        ]
        index = repro.VitriIndex.build(summaries, epsilon)
        num_vitris = index.num_vitris

        precisions = []
        pages = []
        sims = []
        for query_id in queries:
            relevant = ground_truth.top_k(query_id, K, epsilon)
            result = index.knn(summaries[query_id], K, cold=True)
            precisions.append(precision_at_k(relevant, result.videos))
            pages.append(result.stats.page_requests)
            sims.append(result.stats.similarity_computations)

        print(f"{epsilon:>5} {num_vitris:>7} "
              f"{library.total_frames / num_vitris:>15.0f} "
              f"{np.mean(precisions):>10.3f} {np.mean(pages):>12.1f} "
              f"{np.mean(sims):>11.1f}")

    print("\nreading the table: a small epsilon keeps retrieval sharp; "
          "loosening it\ndegrades precision while queries get slightly "
          "cheaper. The paper picks 0.3.\n(For the effect of epsilon on "
          "summary granularity over scene-structured\nvideos, see "
          "benchmarks/bench_table3_summary.py.)")


if __name__ == "__main__":
    main()
