"""A growing video library: dynamic insertion and drift-triggered rebuilds.

New videos arrive in batches and are inserted with standard B+-tree
insertions — the reference point is *not* refitted.  As the content
distribution drifts, the build-time reference point stops being optimal
and query I/O degrades; the paper's remedy (Section 6.3.3) is to monitor
the angle between the original first principal component and the current
one, and rebuild once it exceeds an allowed degree.

The script grows a library whose later batches have a different palette
distribution, shows the drift angle and the query cost after each batch,
and lets :class:`~repro.core.maintenance.ManagedVitriIndex` trigger the
rebuild automatically.

Run:  python examples/dynamic_library.py
"""

import math

import numpy as np

import repro
from repro.core.maintenance import ManagedVitriIndex, RebuildPolicy
from repro.datasets import DatasetConfig, generate_dataset


def shifted_batch(seed: int, shift_dims: tuple[int, ...], num_videos: int,
                  id_base: int, epsilon: float):
    """A batch of videos whose histograms lean on different bins, so the
    collection's principal component rotates as batches arrive."""
    config = DatasetConfig.indexing_preset(
        num_distractors=num_videos,
        duration_classes=((50, 1.0),),
    )
    dataset = generate_dataset(config, seed=seed)
    summaries = []
    for i in range(dataset.num_videos):
        frames = dataset.frames(i).copy()
        # Lean the batch's mass onto its designated bins.
        frames[:, list(shift_dims)] += 0.4 / len(shift_dims)
        frames = frames / frames.sum(axis=1, keepdims=True)
        summaries.append(
            repro.summarize_video(id_base + i, frames, epsilon, seed=i)
        )
    return summaries


def average_query_cost(index, queries, k=20):
    pages = [index.knn(q, k, cold=True).stats.page_requests for q in queries]
    return float(np.mean(pages))


def main() -> None:
    epsilon = 0.3
    batches = [
        shifted_batch(seed=1, shift_dims=(0, 1), num_videos=60, id_base=0,
                      epsilon=epsilon),
        shifted_batch(seed=2, shift_dims=(10, 11), num_videos=60, id_base=1000,
                      epsilon=epsilon),
        shifted_batch(seed=3, shift_dims=(30, 31), num_videos=60, id_base=2000,
                      epsilon=epsilon),
    ]
    # Query workload drawn from every batch: the index must serve the
    # whole library, not just the founding content.
    queries = batches[0][:3] + batches[1][:3] + batches[2][:3]

    # --- Without maintenance: insert everything, watch the drift. -------
    index = repro.VitriIndex.build(batches[0], epsilon)
    print("growing the library without rebuilds:")
    print(f"  initial: {index.num_vitris} ViTris, "
          f"{average_query_cost(index, queries):.1f} pages/query")
    for number, batch in enumerate(batches[1:], start=2):
        for summary in batch:
            index.insert_video(summary)
        drift = math.degrees(index.drift_angle())
        print(f"  after batch {number}: {index.num_vitris} ViTris, "
              f"{average_query_cost(index, queries):.1f} pages/query, "
              f"PC drift {drift:.1f} deg")

    rebuilt = index.rebuild()
    print(f"  one-off rebuild at same content: "
          f"{average_query_cost(rebuilt, queries):.1f} pages/query")

    # --- With automatic maintenance. ------------------------------------
    managed = ManagedVitriIndex(
        repro.VitriIndex.build(batches[0], epsilon),
        RebuildPolicy(max_angle_degrees=10.0, check_every=30),
    )
    for batch in batches[1:]:
        for summary in batch:
            managed.insert_video(summary)
    print(f"\nmanaged index: {managed.rebuilds} automatic rebuild(s), "
          f"{average_query_cost(managed.index, queries):.1f} pages/query, "
          f"final drift "
          f"{math.degrees(managed.index.drift_angle()):.1f} deg")


if __name__ == "__main__":
    main()
