"""From raw RGB frames to a searchable index.

The other examples work on pre-extracted feature vectors; this one starts
one step earlier, at decoded video frames (``(height, width, 3)`` uint8
arrays — what any decoder like OpenCV or imageio yields), and runs the
paper's actual front end: the 64-bin quantised RGB histogram (2 bits per
channel, normalised by pixel count).

Without video files in this environment the "footage" is synthesised —
each clip is a sequence of colour-graded noise scenes, and each clip gets
one re-encoded copy (brightness shift + compression-like noise).  Swap
``synthesize_clip`` for a real decode loop and nothing else changes.

Run:  python examples/raw_frames_pipeline.py
"""

import numpy as np

from repro.core.database import VideoDatabase
from repro.datasets import video_histograms

EPSILON = 0.3
HEIGHT, WIDTH = 36, 48
SCENES = 3
FRAMES_PER_SCENE = 10


def synthesize_clip(rng):
    """Fake decoded footage: scenes of colour-graded noise with camera
    drift (the within-scene motion that makes real clusters wide)."""
    palette = [rng.integers(30, 226, 3) for _ in range(SCENES)]
    frames = []
    for base_color in palette:
        color = base_color.astype(np.int32)
        for _ in range(FRAMES_PER_SCENE):
            color = color + rng.integers(-6, 7, 3)  # slow pan / lighting
            noise = rng.integers(-25, 26, (HEIGHT, WIDTH, 3))
            frame = np.clip(color[None, None, :] + noise, 0, 255)
            frames.append(frame.astype(np.uint8))
    return frames


def reencode(frames, rng, brightness=3, noise=3):
    """A lossy copy: global brightness shift plus fresh noise."""
    copied = []
    for frame in frames:
        shifted = frame.astype(np.int32) + brightness
        shifted += rng.integers(-noise, noise + 1, frame.shape)
        copied.append(np.clip(shifted, 0, 255).astype(np.uint8))
    return copied


def main() -> None:
    rng = np.random.default_rng(3)
    db = VideoDatabase(epsilon=EPSILON)

    # Index the original clips; keep the re-encoded copies as queries.
    copies = {}
    for clip in range(5):
        frames = synthesize_clip(rng)
        original_id = db.add(video_histograms(frames))
        copies[original_id] = reencode(frames, rng)
    for _ in range(6):  # unrelated filler clips
        db.add(video_histograms(synthesize_clip(rng)))

    print(f"database: {len(db)} clips of {HEIGHT}x{WIDTH} footage, "
          f"{SCENES} scenes each, 64-bin RGB histograms\n")

    hits = 0
    for original_id, copy_frames in copies.items():
        result = db.query(video_histograms(copy_frames), k=2)
        found = original_id in result.videos
        hits += found
        print(f"querying with the re-encoded copy of clip {original_id}: "
              f"top-2 = {list(result.videos)} "
              f"({'found original' if found else 'missed'})")

    print(f"\nre-encode robustness: {hits}/{len(copies)} originals recovered")


if __name__ == "__main__":
    main()
