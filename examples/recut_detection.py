"""Re-cut detection: telling faithful copies from re-edited versions.

The paper's similarity measure is deliberately order-robust — a shuffled
re-cut of an ad scores the same as a faithful re-broadcast.  The temporal
extension (``repro.temporal``) aligns the ViTri *sequences* monotonically,
distinguishing the two at summary cost (cluster-pair work instead of the
warping distance's frame-pair work).

The script builds an archive containing, for each source ad, one faithful
re-recording and one scene-shuffled re-cut, then classifies every pair.

Run:  python examples/recut_detection.py
"""

import numpy as np

import repro
from repro.temporal import temporal_video_similarity, warping_distance

EPSILON = 0.3
DIM = 32
NUM_ADS = 6
SCENES = 5
FRAMES_PER_SCENE = 12


def render(anchors, rng):
    frames = []
    for anchor in anchors:
        noise = rng.normal(0.0, 0.008, (FRAMES_PER_SCENE, DIM))
        block = np.clip(anchor[None, :] + noise, 0.0, None)
        frames.append(block / block.sum(axis=1, keepdims=True))
    return np.vstack(frames)


def main() -> None:
    rng = np.random.default_rng(42)
    print(f"{'ad':>3} {'kind':>9} {'order-robust':>13} {'temporal':>9} "
          f"{'verdict':>10}")
    correct = 0
    for ad in range(NUM_ADS):
        anchors = [rng.dirichlet(np.full(DIM, 0.1)) for _ in range(SCENES)]
        source = repro.summarize_video(0, render(anchors, rng), EPSILON, seed=0)
        copy_frames = render(anchors, rng)
        # A re-cut that actually re-orders: reversed scenes (a random
        # permutation can keep long monotone runs that still align).
        recut_frames = render(anchors[::-1], rng)

        for kind, frames in (("copy", copy_frames), ("re-cut", recut_frames)):
            other = repro.summarize_video(1, frames, EPSILON, seed=1)
            robust = repro.video_similarity(source, other)
            temporal = temporal_video_similarity(source, other)
            # Classification rule: a re-cut keeps the order-robust score
            # but loses a chunk of the temporal one.
            is_recut = temporal < 0.8 * robust
            verdict = "re-cut" if is_recut else "copy"
            correct += verdict == kind
            print(f"{ad:>3} {kind:>9} {robust:>13.3f} {temporal:>9.3f} "
                  f"{verdict:>10}")

    total = NUM_ADS * 2
    print(f"\nclassified {correct}/{total} correctly")

    # Cost comparison against the frame-level alternative.
    anchors = [rng.dirichlet(np.full(DIM, 0.1)) for _ in range(SCENES)]
    x = render(anchors, rng)
    y = render(anchors, rng)
    sx = repro.summarize_video(0, x, EPSILON, seed=0)
    sy = repro.summarize_video(1, y, EPSILON, seed=1)
    print(f"\nwork per pair: warping distance = {len(x) * len(y)} "
          f"frame comparisons; temporal ViTri alignment = "
          f"{len(sx) * len(sy)} cluster comparisons")
    print(f"(warping distance for the copy: "
          f"{warping_distance(x, y, normalise=True):.4f}, "
          f"for its reverse: "
          f"{warping_distance(x, y[::-1], normalise=True):.4f})")


if __name__ == "__main__":
    main()
