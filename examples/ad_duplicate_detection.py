"""Near-duplicate advertisement detection.

The scenario that motivated the paper: a TV-ad archive contains many
re-recordings of the same commercial (captured at different times, with
re-encoding noise, dropped frames, reordered shots).  Given one recording,
find its copies — without comparing frames pairwise.

The script detects each family's copies with the ViTri index, verifies the
hits against exact frame-level similarity, and compares the I/O cost
against a sequential scan of the whole archive.

Run:  python examples/ad_duplicate_detection.py
"""

import repro
from repro.baselines import SequentialScan
from repro.datasets import DatasetConfig, generate_dataset

EPSILON = 0.3
COPIES_PER_AD = 5


def main() -> None:
    config = DatasetConfig.precision_preset(
        num_families=8,
        family_size=COPIES_PER_AD,
        num_distractors=24,
        duration_classes=((75, 0.5), (50, 0.5)),
    )
    archive = generate_dataset(config, seed=99)
    print(f"archive: {archive.num_videos} recordings "
          f"({len(archive.families)} ads x {COPIES_PER_AD} copies "
          f"+ {archive.num_videos - len(archive.families) * COPIES_PER_AD} "
          "unrelated)")

    summaries = [
        repro.summarize_video(i, archive.frames(i), EPSILON, seed=i)
        for i in range(archive.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)
    scan = SequentialScan(index)

    print(f"\n{'ad':>4} {'copies found':>14} {'index pages':>12} "
          f"{'scan pages':>11}")
    total_found = 0
    total_expected = 0
    for family in archive.families:
        query_id = archive.family_members(family)[0]
        expected = set(archive.family_members(family))

        result = index.knn(summaries[query_id], COPIES_PER_AD, cold=True)
        found = set(result.videos) & expected
        scan_result = scan.knn(summaries[query_id], COPIES_PER_AD)
        assert result.videos == scan_result.videos  # lossless filter

        total_found += len(found)
        total_expected += len(expected)
        print(f"{family:>4} {len(found):>7}/{len(expected):<6} "
              f"{result.stats.page_requests:>12} "
              f"{scan_result.stats.page_requests:>11}")

    recall = total_found / total_expected
    print(f"\ncopy recall: {recall:.2%}")

    # Spot-check one hit at frame level: the returned copies really are
    # frame-similar to the query.
    family = archive.families[0]
    query_id = archive.family_members(family)[0]
    best_copy = [
        v for v in index.knn(summaries[query_id], COPIES_PER_AD).videos
        if v != query_id
    ][0]
    exact = repro.frame_similarity(
        archive.frames(query_id), archive.frames(best_copy), EPSILON
    )
    print(f"frame-level similarity of the top hit for ad {family}: "
          f"{exact:.3f} (1.0 = every frame has a match)")


if __name__ == "__main__":
    main()
