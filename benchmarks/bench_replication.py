"""Read scaling via WAL-shipped replicas — the replication headline.

One shard group — a durable primary plus WAL-shipped read replicas
behind :class:`repro.replication.ReplicaSet` — serves a zipf-skewed
query stream under closed-loop client pressure.  Queries route by
video-id affinity, so each copy owns a slice of the hot set and keeps
it resident in its two cache tiers (L1 exact-repeat results, L2 range
blocks) while the cold tail's physical reads overlap across copies.

Correctness is asserted *inside* the sweep: every replica count must
return rankings bit-identical to primary-only serving, position by
position, or :func:`repro.eval.replication.run_replication_benchmark`
raises instead of reporting a QPS.  This file gates on the serving
numbers — replicated read throughput and combined cache hit rate —
written to ``BENCH_replication.json`` (the artifact CI uploads).
"""

import json
import os
import tempfile

from repro.core.summarize import summarize_video
from repro.eval.replication import run_replication_benchmark
from repro.eval.serving import make_query_stream

from _common import save_result
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import format_table

EPSILON = 0.3
# Pool: a small hot-family core plus a wide distractor tail, so the
# zipf stream has a cacheable head and a tail that pays physical reads.
DATASET = DatasetConfig(dim=8, num_families=20, family_size=3, num_distractors=180)
NUM_QUERIES = 300
WARMUP = 60  # served on the bare primary before replicas attach
REPEAT_FRACTION = 0.35
SKEW = 1.2
K_VALUES = (5, 10)
REPLICA_COUNTS = (0, 2)
CLIENTS = 48
SEED = 0
# Tiny buffer pool + a real per-read sleep: the tree cannot live in
# memory, so the tail is disk-bound and replicas overlap its waits.
BUFFER_CAPACITY = 4
READ_LATENCY = 0.015
CACHE_SIZE = 128
RANGE_CACHE_SIZE = 256

JSON_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_replication.json"
)


def run_experiment():
    dataset = generate_dataset(DATASET, seed=7)
    summaries = [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    stream = make_query_stream(
        summaries,
        NUM_QUERIES,
        seed=SEED,
        repeat_fraction=REPEAT_FRACTION,
        skew=SKEW,
    )
    with tempfile.TemporaryDirectory(prefix="bench-replication-") as tmp:
        results = run_replication_benchmark(
            tmp,
            summaries,
            stream,
            epsilon=EPSILON,
            k_values=K_VALUES,
            replica_counts=REPLICA_COUNTS,
            clients=CLIENTS,
            warmup=WARMUP,
            seed=SEED,
            buffer_capacity=BUFFER_CAPACITY,
            read_latency=READ_LATENCY,
            cache_size=CACHE_SIZE,
            range_cache_size=RANGE_CACHE_SIZE,
        )
    results["skew"] = SKEW
    results["repeat_fraction"] = REPEAT_FRACTION
    rows = [
        (
            run["replicas"],
            run["copies"],
            f"{run['qps']:.1f}",
            f"{run['latency_p50_ms']:.1f}",
            f"{run['latency_p95_ms']:.1f}",
            f"{run['result_cache_hit_rate']:.2f}",
            f"{run['range_cache_hit_rate']:.2f}",
            f"{run['combined_cache_hit_rate']:.2f}",
            run["fallbacks_to_primary"],
        )
        for run in results["runs"]
    ]
    table = format_table(
        [
            "replicas",
            "copies",
            "QPS",
            "p50 ms",
            "p95 ms",
            "L1 hit",
            "L2 hit",
            "combined",
            "fallbacks",
        ],
        rows,
        title=(
            f"replicated reads: {NUM_QUERIES - WARMUP} measured queries, "
            f"zipf s={SKEW}, {CLIENTS} clients, "
            f"{READ_LATENCY * 1e3:.0f} ms/read simulated disk"
        ),
    )
    return table, results


def check_acceptance(results):
    # Acceptance: two replicas must nearly double read throughput on the
    # skewed disk-bound workload, and the tiered caches must absorb most
    # of the traffic (rankings already asserted bit-identical inside
    # run_replication_benchmark).
    assert results["speedup_replicated"] >= 1.8, results["speedup_replicated"]
    assert results["combined_cache_hit_rate"] >= 0.6, results[
        "combined_cache_hit_rate"
    ]


def test_replication_throughput(benchmark):
    table, results = run_experiment()
    save_result("replication_throughput", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    check_acceptance(results)

    dataset = generate_dataset(DATASET, seed=7)
    summaries = [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    benchmark(
        lambda: make_query_stream(
            summaries,
            NUM_QUERIES,
            seed=SEED,
            repeat_fraction=REPEAT_FRACTION,
            skew=SKEW,
        )
    )


if __name__ == "__main__":
    table, results = run_experiment()
    save_result("replication_throughput", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {os.path.abspath(JSON_PATH)}")
    check_acceptance(results)
