"""Ablation — the min(R, mu + sigma) radius refinement (Section 4.1).

The paper argues the refinement matters because a small radius increase
inflates a high-dimensional hypersphere's volume enormously (x1.1 radius
= ~445x volume at n = 64), so outlier frames would wreck the density
estimate.  This ablation compares summaries built with the refined radius
against summaries using the raw maximum distance:

* the refined radius is never larger, and the log-volume gap is large;
* retrieval precision with the refined radius is at least as good.
"""

import numpy as np

import repro
from repro.core.vitri import VideoSummary, ViTri
from repro.clustering.bisecting import generate_clusters
from repro.eval import format_table, precision_at_k

from _common import save_result

EPSILON = 0.3
K = 5


def summarize_raw_radius(video_id, frames, epsilon, seed):
    """Summaries using the unrefined max-distance radius."""
    clusters = generate_clusters(frames, epsilon, seed=seed)
    vitris = tuple(
        ViTri(
            position=cluster.center,
            radius=max(cluster.max_distance, epsilon * 1e-3),
            count=cluster.count,
        )
        for cluster in clusters
    )
    return VideoSummary(video_id=video_id, vitris=vitris, num_frames=len(frames))


def run_experiment(dataset, ground_truth, queries):
    refined = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    raw = [
        summarize_raw_radius(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]

    refined_radii = np.concatenate([s.radii() for s in refined])
    raw_radii = np.concatenate([s.radii() for s in raw])
    dim = dataset.dim
    log_volume_ratio = dim * float(
        np.mean(np.log(np.maximum(raw_radii, 1e-12)) - np.log(refined_radii))
    )

    index_refined = repro.VitriIndex.build(refined, EPSILON)
    index_raw = repro.VitriIndex.build(raw, EPSILON)
    precision = {"refined": [], "raw": []}
    for query_id in queries:
        relevant = ground_truth.top_k(query_id, K, EPSILON)
        precision["refined"].append(
            precision_at_k(
                relevant, index_refined.knn(refined[query_id], K).videos
            )
        )
        precision["raw"].append(
            precision_at_k(relevant, index_raw.knn(raw[query_id], K).videos)
        )

    rows = [
        (
            "min(R, mu+sigma)",
            float(refined_radii.mean()),
            float(np.mean(precision["refined"])),
        ),
        (
            "raw max distance",
            float(raw_radii.mean()),
            float(np.mean(precision["raw"])),
        ),
    ]
    table = format_table(
        ["radius rule", "mean radius", f"precision@{K}"],
        rows,
        title=(
            "Ablation: radius refinement (mean cluster volume inflation "
            f"of the raw rule: e^{log_volume_ratio:.1f})"
        ),
    )
    return table, refined_radii, raw_radii, precision


def test_ablation_radius(
    benchmark, precision_dataset, precision_ground_truth, precision_queries
):
    table, refined_radii, raw_radii, precision = run_experiment(
        precision_dataset, precision_ground_truth, precision_queries
    )
    save_result("ablation_radius", table)
    # Refinement can only shrink the radius.
    assert float(refined_radii.mean()) <= float(raw_radii.mean()) + 1e-12
    # And must not hurt retrieval.
    assert np.mean(precision["refined"]) >= np.mean(precision["raw"]) - 0.05

    benchmark(
        lambda: repro.summarize_video(
            0, precision_dataset.frames(0), EPSILON, seed=0
        )
    )
