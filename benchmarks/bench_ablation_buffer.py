"""Ablation — buffer-pool capacity vs the benefit of query composition.

Query composition saves the *repeated* page accesses of the naive
per-ViTri range searches.  Whether those repeats cost real I/O depends on
the buffer pool: with a pool large enough to hold the query's working
set, the repeats are cache hits and only the first access per page is
physical.  This ablation sweeps the pool capacity and reports both
logical page requests (capacity-independent) and physical reads.

Expected shape: composed <= naive on logical requests at every capacity;
on physical reads the gap closes as the pool grows (the buffer pool
"pre-composes" repeated accesses), vanishing once the working set fits.
"""

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table

from _common import save_result, summarize_dataset

EPSILON = 0.22
CAPACITIES = (0, 4, 32, 256)
NUM_QUERIES = 15
K = 50


def run_experiment():
    config = DatasetConfig.indexing_preset(
        num_distractors=250,
        scene_weight=9.0,
        palette_weight=12.0,
        duration_classes=((150, 0.6), (100, 0.4)),
    )
    dataset = generate_dataset(config, seed=61)
    summaries = summarize_dataset(dataset, EPSILON)
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    rows = []
    physical_gaps = []
    for capacity in CAPACITIES:
        index = repro.VitriIndex.build(
            summaries, EPSILON, buffer_capacity=capacity
        )
        naive = aggregate_stats(
            [
                index.knn(summaries[q], K, method="naive", cold=True).stats
                for q in queries
            ]
        )
        composed = aggregate_stats(
            [
                index.knn(summaries[q], K, method="composed", cold=True).stats
                for q in queries
            ]
        )
        physical_gaps.append(
            naive["physical_reads"] - composed["physical_reads"]
        )
        rows.append(
            (
                capacity,
                naive["page_requests"],
                composed["page_requests"],
                naive["physical_reads"],
                composed["physical_reads"],
            )
        )

    table = format_table(
        [
            "pool capacity",
            "logical naive",
            "logical composed",
            "physical naive",
            "physical composed",
        ],
        rows,
        title=(
            "Ablation: buffer-pool capacity vs query-composition benefit "
            f"(epsilon = {EPSILON}, {NUM_QUERIES} queries)"
        ),
    )
    return table, rows, physical_gaps


def test_ablation_buffer(benchmark):
    table, rows, physical_gaps = run_experiment()
    save_result("ablation_buffer", table)
    for capacity, ln, lc, pn, pc in rows:
        # Logical requests: composition always wins (capacity-independent).
        assert lc <= ln
        # Physical reads: composed never exceeds naive.
        assert pc <= pn + 1e-9
    # The physical-read gap shrinks as the pool grows: a big enough cache
    # absorbs the naive method's repeats.
    assert physical_gaps[-1] <= physical_gaps[0] + 1e-9

    config = DatasetConfig.indexing_preset(num_distractors=80)
    dataset = generate_dataset(config, seed=61)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(summaries, EPSILON)
    benchmark(lambda: index.knn(summaries[0], K, cold=True))
