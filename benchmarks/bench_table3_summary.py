"""Table 3 — summary statistics vs epsilon.

The paper sweeps eps over {0.2 .. 0.6} and reports the number of clusters
and the average cluster size: clusters shrink in number and grow in size
as eps loosens.  Same sweep here on the synthetic corpus.
"""

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import format_table

from _common import save_result

EPSILONS = (0.2, 0.3, 0.4, 0.5, 0.6)


def run_experiment():
    # A scene-structured corpus: shots are distinct at eps = 0.2, shots
    # within a scene merge around eps = 0.3, and scenes merge along the
    # scene-axis continuum as eps keeps growing — the mechanism behind
    # the paper's declining cluster counts.
    config = DatasetConfig(
        num_families=0,
        family_size=1,
        num_distractors=50,
        duration_classes=((100, 0.4), (60, 0.4), (40, 0.2)),
        palette_weight=6.0,
        scene_weight=13.0,
        identity_weight=2.0,
        shot_weight=5.0,
        shot_concentration=0.03,
        shots_per_scene_mean=2.5,
        shot_length_mean=8.0,
    )
    dataset = generate_dataset(config, seed=3)
    rows = []
    cluster_counts = []
    for epsilon in EPSILONS:
        summaries = [
            repro.summarize_video(i, dataset.frames(i), epsilon, seed=i)
            for i in range(dataset.num_videos)
        ]
        clusters = sum(len(s) for s in summaries)
        cluster_counts.append(clusters)
        rows.append(
            (epsilon, clusters, round(dataset.total_frames / clusters))
        )
    table = format_table(
        ["epsilon", "Number of clusters", "Average cluster size"],
        rows,
        title=(
            f"Table 3: summary statistics, {dataset.num_videos} videos / "
            f"{dataset.total_frames} frames"
        ),
    )
    return table, cluster_counts, dataset


def test_table3_summary(benchmark):
    table, cluster_counts, dataset = run_experiment()
    save_result("table3_summary", table)
    # Paper's trend: cluster count decreases monotonically with epsilon.
    assert all(
        later <= earlier
        for earlier, later in zip(cluster_counts, cluster_counts[1:])
    )
    # The eps sweep must actually change the summary granularity.
    assert cluster_counts[0] > cluster_counts[-1]
    benchmark(
        lambda: repro.summarize_video(0, dataset.frames(0), 0.3, seed=0)
    )
