"""Extension — all four summarisation categories head to head.

Figure 14 compares ViTri against the keyframe method only; the related
work names two more categories: random-seed video signatures (ViSig,
ref [6]) and statistical-distribution models (Gaussian, refs [8, 14]).
This bench runs all four on the same workload at eps = 0.3 and reports
retrieval precision plus the summary footprint (floats stored per video).
"""

import numpy as np

import repro
from repro.baselines import (
    VideoSignatureIndex,
    bhattacharyya_similarity,
    keyframe_similarity,
    summarize_gaussian,
    summarize_keyframes,
)
from repro.eval import format_table, precision_at_k

from _common import save_result

EPSILON = 0.3
K = 5
NUM_SEEDS = 12


def rank_by(scores, tie_break):
    order = sorted(
        range(len(scores)), key=lambda v: (-scores[v], tie_break[v])
    )
    return order[:K]


def make_workload():
    """Multi-scene videos: the workload where distribution models lose
    the multimodal structure (a single Gaussian merges distinct scenes)."""
    import repro
    from repro.datasets import DatasetConfig, generate_dataset
    from repro.eval import GroundTruthCache

    config = DatasetConfig.precision_preset(
        num_families=10,
        family_size=5,
        num_distractors=15,
        duration_classes=((60, 0.5), (45, 0.5)),
        scene_weight=4.0,
        shot_weight=2.0,
        shot_concentration=0.04,
        shots_per_scene_mean=2.5,
        shot_length_mean=8.0,
    )
    dataset = generate_dataset(config, seed=8)
    ground_truth = GroundTruthCache(dataset)
    queries = [dataset.family_members(f)[0] for f in dataset.families]
    return dataset, ground_truth, queries


def run_experiment(dataset, ground_truth, queries):
    rng = np.random.default_rng(7)
    num_videos = dataset.num_videos

    vitri = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(num_videos)
    ]
    index = repro.VitriIndex.build(vitri, EPSILON)
    keyframes = [
        summarize_keyframes(i, dataset.frames(i), k=len(vitri[i]), seed=i)
        for i in range(num_videos)
    ]
    visig = VideoSignatureIndex(dim=dataset.dim, num_seeds=NUM_SEEDS, seed=1)
    signatures = [
        visig.summarize(i, dataset.frames(i)) for i in range(num_videos)
    ]
    gaussians = [
        summarize_gaussian(i, dataset.frames(i)) for i in range(num_videos)
    ]

    precisions = {"vitri": [], "keyframe": [], "visig": [], "gaussian": []}
    for query_id in queries:
        relevant = ground_truth.top_k(query_id, K, EPSILON)
        tie_break = rng.permutation(num_videos)

        precisions["vitri"].append(
            precision_at_k(relevant, index.knn(vitri[query_id], K).videos)
        )
        precisions["keyframe"].append(
            precision_at_k(
                relevant,
                rank_by(
                    [
                        keyframe_similarity(
                            keyframes[query_id], keyframes[v], EPSILON
                        )
                        for v in range(num_videos)
                    ],
                    tie_break,
                ),
            )
        )
        precisions["visig"].append(
            precision_at_k(
                relevant,
                rank_by(
                    [
                        visig.similarity(
                            signatures[query_id], signatures[v], EPSILON
                        )
                        for v in range(num_videos)
                    ],
                    tie_break,
                ),
            )
        )
        precisions["gaussian"].append(
            precision_at_k(
                relevant,
                rank_by(
                    [
                        bhattacharyya_similarity(
                            gaussians[query_id], gaussians[v]
                        )
                        for v in range(num_videos)
                    ],
                    tie_break,
                ),
            )
        )

    dim = dataset.dim
    mean_clusters = float(np.mean([len(s) for s in vitri]))
    footprint = {
        "vitri": mean_clusters * (dim + 2),
        "keyframe": mean_clusters * dim,
        "visig": NUM_SEEDS * dim,
        "gaussian": 2 * dim,
    }
    rows = [
        (method, float(np.mean(values)), round(footprint[method]))
        for method, values in precisions.items()
    ]
    table = format_table(
        ["method", f"precision@{K}", "floats / video"],
        rows,
        title=(
            f"Extension: summarisation methods at epsilon = {EPSILON} "
            f"({len(queries)} queries, {dataset.num_videos} videos)"
        ),
    )
    return table, precisions


def test_ext_summary_methods(benchmark):
    dataset, ground_truth, queries = make_workload()
    table, precisions = run_experiment(dataset, ground_truth, queries)
    save_result("ext_summary_methods", table)
    means = {m: float(np.mean(v)) for m, v in precisions.items()}
    # The paper's claim extended: ViTri's local volume/density information
    # beats every lossier summary category.
    assert means["vitri"] >= max(
        means["keyframe"], means["visig"], means["gaussian"]
    ) - 0.05

    benchmark(lambda: summarize_gaussian(0, dataset.frames(0)))
