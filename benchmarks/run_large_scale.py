"""Large-scale demonstration (not collected by pytest — run directly).

The pytest benches keep workloads small so the whole suite re-runs in
minutes.  This script demonstrates headroom at a scale closer to the
paper's (thousands of videos, tens of thousands of ViTris is reachable;
the default here builds a few thousand ViTris in a couple of minutes on
a laptop):

    python benchmarks/run_large_scale.py [num_videos] [epsilon]

It reports build time, index size, per-query costs for the index vs the
sequential scan, and verifies result equality on sampled queries.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

import repro
from repro.baselines import SequentialScan
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table
from repro.utils.counters import Timer

from _common import save_result


def main(num_videos: int = 2000, epsilon: float = 0.25) -> None:
    config = DatasetConfig.indexing_preset(
        num_distractors=num_videos,
        scene_weight=8.0,
        palette_weight=16.0,
        duration_classes=((150, 0.45), (75, 0.38), (50, 0.17)),
    )

    with Timer() as generate_timer:
        dataset = generate_dataset(config, seed=2005)
    generated = generate_timer.elapsed
    print(
        f"generated {dataset.num_videos} videos / {dataset.total_frames} "
        f"frames in {generated:.1f}s"
    )

    with Timer() as summarize_timer:
        summaries = [
            repro.summarize_video(i, dataset.frames(i), epsilon, seed=i)
            for i in range(dataset.num_videos)
        ]
    summarised = summarize_timer.elapsed
    num_vitris = sum(len(s) for s in summaries)
    print(f"summarised into {num_vitris} ViTris in {summarised:.1f}s")

    with Timer() as build_timer:
        index = repro.VitriIndex.build(summaries, epsilon)
    built = build_timer.elapsed
    pages = (
        index.btree.buffer_pool.pager.num_pages
        + index.heap.buffer_pool.pager.num_pages
    )
    print(
        f"built index in {built:.1f}s: height {index.btree.height}, "
        f"{pages} pages ({pages * 4096 // 1024} KiB)"
    )

    scan = SequentialScan(index)
    queries = list(range(0, 100, 2))
    index_stats = []
    scan_stats = []
    for query_id in queries:
        a = index.knn(summaries[query_id], 50, cold=True)
        b = scan.knn(summaries[query_id], 50)
        assert a.videos == b.videos, f"divergence on query {query_id}"
        index_stats.append(a.stats)
        scan_stats.append(b.stats)

    agg_index = aggregate_stats(index_stats)
    agg_scan = aggregate_stats(scan_stats)
    table = format_table(
        ["method", "pages/query", "similarity computations", "ms/query"],
        [
            (
                "ViTri index (optimal)",
                agg_index["page_requests"],
                agg_index["similarity_computations"],
                agg_index["wall_time"] * 1000,
            ),
            (
                "sequential scan",
                agg_scan["page_requests"],
                agg_scan["similarity_computations"],
                agg_scan["wall_time"] * 1000,
            ),
        ],
        title=(
            f"Large-scale demo: {dataset.num_videos} videos, "
            f"{num_vitris} ViTris, epsilon = {epsilon}, "
            f"{len(queries)} queries of 50-NN (results verified equal)"
        ),
    )
    save_result("large_scale_demo", table)


if __name__ == "__main__":
    videos = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    eps = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    main(videos, eps)
