"""Figure 19 — effect of dynamic insertion.

The paper initialises the index with a first batch of videos, inserts
three more batches with standard B+-tree insertions (no reference-point
refit), and measures KNN cost after each batch.  Shapes to reproduce:

* both sequential scan and the index grow with N, but the index grows
  much more slowly;
* the dynamically grown index is slightly worse than an index rebuilt
  from scratch at the same content (the original reference point is no
  longer optimal after the data distribution drifts).
"""

import numpy as np

import repro
from repro.baselines import SequentialScan
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table

from _common import save_result, summarize_dataset

EPSILON = 0.3
TOTAL_VIDEOS = 480
NUM_BATCHES = 4
NUM_QUERIES = 12
K = 50


def run_experiment():
    config = DatasetConfig.indexing_preset(num_distractors=TOTAL_VIDEOS)
    dataset = generate_dataset(config, seed=19)
    summaries = summarize_dataset(dataset, EPSILON)

    batch_size = TOTAL_VIDEOS // NUM_BATCHES
    batches = [
        summaries[i * batch_size : (i + 1) * batch_size]
        for i in range(NUM_BATCHES)
    ]

    # Shift the later batches' content distribution so the build-time
    # reference point actually drifts away from optimal (the paper's
    # correlation-change scenario).
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    dynamic = repro.VitriIndex.build(batches[0], EPSILON)
    rows = []
    series = {"dynamic": [], "rebuilt": [], "seqscan": [], "drift": []}
    indexed = list(batches[0])
    for batch_number, batch in enumerate(batches[1:], start=2):
        for summary in batch:
            dynamic.insert_video(summary)
        indexed.extend(batch)

        dynamic_stats = aggregate_stats(
            [dynamic.knn(summaries[q], K, cold=True).stats for q in queries]
        )
        rebuilt = repro.VitriIndex.build(indexed, EPSILON)
        rebuilt_stats = aggregate_stats(
            [rebuilt.knn(summaries[q], K, cold=True).stats for q in queries]
        )
        scan_stats = aggregate_stats(
            [SequentialScan(rebuilt).knn(summaries[q], K).stats for q in queries]
        )
        drift_degrees = float(np.degrees(dynamic.drift_angle()))
        series["dynamic"].append(dynamic_stats["page_requests"])
        series["rebuilt"].append(rebuilt_stats["page_requests"])
        series["seqscan"].append(scan_stats["page_requests"])
        series["drift"].append(drift_degrees)
        rows.append(
            (
                dynamic.num_vitris,
                dynamic_stats["page_requests"],
                rebuilt_stats["page_requests"],
                scan_stats["page_requests"],
                dynamic_stats["similarity_computations"],
                scan_stats["similarity_computations"],
                round(drift_degrees, 2),
            )
        )

    table = format_table(
        [
            "ViTris",
            "IO dynamic",
            "IO one-off rebuild",
            "IO seqscan",
            "CPU dynamic",
            "CPU seqscan",
            "PC drift (deg)",
        ],
        rows,
        title=(
            f"Figure 19: dynamic insertion ({NUM_BATCHES} batches of "
            f"{batch_size} videos, epsilon = {EPSILON}, {NUM_QUERIES} "
            f"queries, {K}-NN)"
        ),
    )
    return table, series, dynamic, summaries, queries


def test_fig19_dynamic_insertion(benchmark):
    table, series, dynamic, summaries, queries = run_experiment()
    save_result("fig19_dynamic_insertion", table)

    # Costs grow with inserted batches for both methods...
    assert series["seqscan"][-1] > series["seqscan"][0]
    assert series["dynamic"][-1] >= series["dynamic"][0]
    # ...but the index stays well below the scan at every point.
    for dynamic_io, scan_io in zip(series["dynamic"], series["seqscan"]):
        assert dynamic_io < scan_io
    # The index's growth rate is smaller than the scan's.
    index_growth = series["dynamic"][-1] - series["dynamic"][0]
    scan_growth = series["seqscan"][-1] - series["seqscan"][0]
    assert index_growth < scan_growth
    # Dynamic insertion is no better than a one-off rebuild (it degrades
    # slightly as the reference point drifts off-optimal).
    assert series["dynamic"][-1] >= series["rebuilt"][-1] * 0.98

    benchmark(lambda: dynamic.knn(summaries[queries[0]], K, cold=True))
