"""Network service under burst load — availability, shedding, tail latency.

The serving and sharding benchmarks measure in-process engines; this one
stands up the whole deployed stack — a durable fleet opened as a
:class:`repro.serve.frontdoor.NetworkFleet` (thread-mode shard servers,
remote proxies over real TCP, read-only router, bounded front door) —
and drives it through two phases: an uncontended serial baseline, then a
closed-loop burst where every client offers twice its admission quota.

Correctness is asserted *inside* the sweep (every completed answer is
bit-identical to the in-process router's ranking), so the benchmark
gates on the serving numbers: the over-admitted excess sheds typed, the
admitted fraction completes at ≥ 99% availability, and the burst p99
stays within a bounded multiple of the baseline p50.  Written to
``BENCH_service.json`` (the artifact CI uploads).
"""

import json
import os

from repro.eval.service import run_service_benchmark
from repro.eval.serving import make_query_stream

from _common import save_result, summarize_dataset
from repro.datasets import generate_dataset
from repro.eval import format_table

EPSILON = 0.3
K = 10
NUM_QUERIES = 16
NUM_SHARDS = 3
WORKERS = 2
MAX_QUEUE = 8
CLIENTS = 4
OVERADMISSION = 2.0
SEED = 0

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")


def run_experiment():
    dataset = generate_dataset(seed=7)
    summaries = summarize_dataset(dataset, EPSILON)
    stream = make_query_stream(
        summaries, NUM_QUERIES, seed=SEED, repeat_fraction=0.0
    )
    results = run_service_benchmark(
        summaries,
        stream,
        K,
        epsilon=EPSILON,
        num_shards=NUM_SHARDS,
        workers=WORKERS,
        max_queue=MAX_QUEUE,
        clients=CLIENTS,
        overadmission=OVERADMISSION,
    )
    burst, baseline = results["burst"], results["baseline"]
    rows = [
        (
            "baseline",
            baseline["latency"]["samples"],
            baseline["latency"]["samples"],
            0,
            "1.000",
            f"{baseline['latency']['p50_ms']:.1f}",
            f"{baseline['latency']['p99_ms']:.1f}",
        ),
        (
            "burst",
            burst["offered"],
            burst["admitted"],
            burst["shed"],
            f"{burst['availability']:.3f}",
            f"{burst['latency']['p50_ms']:.1f}",
            f"{burst['latency']['p99_ms']:.1f}",
        ),
    ]
    table = format_table(
        ["phase", "offered", "admitted", "shed", "avail", "p50 ms", "p99 ms"],
        rows,
        title=(
            f"network service: {NUM_SHARDS} shards, {CLIENTS} clients x "
            f"{NUM_QUERIES} queries at {OVERADMISSION:.0f}x quota, k={K}, "
            f"{len(summaries)} videos"
        ),
    )
    return table, results, summaries, stream


def _write(results) -> None:
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)


def _gate(results) -> None:
    burst = results["burst"]
    # Acceptance: under 2x over-admission every admitted query completes
    # (≥ 99% availability), the excess sheds typed rather than erroring,
    # and the tail stays bounded by the queue, not by offered load.
    assert burst["availability"] >= 0.99, burst["availability"]
    assert burst["shed"] > 0, "burst never shed: no over-admission happened"
    assert burst["frontdoor"]["shed_rate_limited"] > 0, burst["frontdoor"]
    assert results["p99_within_bound"], (
        burst["latency"]["p99_ms"],
        results["p99_bound_ms"],
    )


def test_service_availability(benchmark):
    table, results, summaries, stream = run_experiment()
    save_result("service_availability", table)
    _write(results)
    _gate(results)

    benchmark(
        lambda: run_service_benchmark(
            summaries,
            stream[:4],
            K,
            epsilon=EPSILON,
            num_shards=NUM_SHARDS,
            workers=WORKERS,
            clients=2,
        )
    )


if __name__ == "__main__":
    table, results, _, _ = run_experiment()
    save_result("service_availability", table)
    _write(results)
    print(f"\nwrote {os.path.abspath(JSON_PATH)}")
    _gate(results)
