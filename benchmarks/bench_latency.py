"""Single-query KNN latency with a per-stage breakdown.

Times the vectorized query path against the per-record scalar oracle —
the faithful reimplementation of the pre-vectorization (PR 6) hot path:
one B+-tree ``range_search`` per composed range, one ``codec.decode``
per record, one geometry evaluation per (query ViTri, record) pair.
Both implementations return bit-identical answers (the equivalence
suite asserts it), so the comparison is purely about milliseconds.

Each stage of the query is attributed via the counters' stage timers:

* ``io``          — B+-tree descent + leaf walking (page accesses),
* ``deserialize`` — payload bytes → records / columnar arrays,
* ``geometry``    — sphere-intersection shared-frame estimation,
* ``merge``       — score folding and video-level aggregation.

Writes ``BENCH_latency.json`` at the repository root (every
``bench_*.py`` lands its ``BENCH_<name>.json`` artifact there) and
enforces two gates so CI catches regressions:

1. the vectorized path must be >= ``MIN_SPEEDUP`` faster (p50) than the
   per-record baseline, and
2. the geometry-stage speedup must not regress more than 25% below the
   committed baseline (``benchmarks/baselines/BENCH_latency_baseline.json``).

Both gates compare ratios measured within one process on one machine,
so they are robust to absolute machine speed.  Regenerate the baseline
after an intentional change with ``--update-baseline``.
"""

import argparse
import json
import os
import sys

import numpy as np

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.utils.counters import CostCounters, Timer

from _common import summarize_dataset

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "BENCH_latency_baseline.json"
)
OUTPUT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_latency.json"
)

EPSILON = 0.22
K = 10
NUM_QUERIES = 10
WARMUP_QUERIES = 2
MIN_SPEEDUP = 3.0
MAX_GEOMETRY_REGRESSION = 0.25

STAGES = ("io", "deserialize", "geometry", "merge")


def build_workload(seed=7):
    """Fig-16-style composition workload: long videos, fine epsilon, so
    queries compose many overlapping ranges over a few hundred ViTris."""
    config = DatasetConfig.indexing_preset(
        num_distractors=250,
        scene_weight=9.0,
        palette_weight=12.0,
        duration_classes=((150, 0.6), (100, 0.4)),
    )
    dataset = generate_dataset(config, seed=seed)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(summaries, EPSILON)
    queries = [summaries[i] for i in range(0, 2 * NUM_QUERIES, 2)]
    return summaries, index, queries


def run_mode(index, queries, impl):
    """Warm p50 latency + aggregated stage/counter breakdown for one impl."""
    for query in queries[:WARMUP_QUERIES]:
        index.knn(query, K, impl=impl)
    counters = CostCounters()
    latencies = []
    for query in queries:
        with Timer() as timer:
            result = index.knn(query, K, impl=impl, out_counters=counters)
        latencies.append(timer.elapsed)
    stages = {
        stage: counters.extra.get(f"stage_{stage}_s", 0.0)
        for stage in STAGES
    }
    return {
        "impl": impl,
        "queries": len(queries),
        "p50_latency_ms": float(np.median(latencies)) * 1000.0,
        "mean_latency_ms": float(np.mean(latencies)) * 1000.0,
        "stage_seconds": stages,
        "stage_share": {
            stage: seconds / total if (total := sum(stages.values())) else 0.0
            for stage, seconds in stages.items()
        },
        "counters": {
            "page_requests": counters.page_requests,
            "records_scanned": counters.records_scanned,
            "records_decoded": counters.records_decoded,
            "similarity_computations": counters.similarity_computations,
        },
        "last_result": {
            "candidates": result.stats.candidates,
            "ranges": result.stats.ranges,
        },
    }


def run_experiment():
    summaries, index, queries = build_workload()
    scalar = run_mode(index, queries, "scalar")
    vectorized = run_mode(index, queries, "vectorized")

    speedup = scalar["p50_latency_ms"] / vectorized["p50_latency_ms"]
    geometry_speedup = (
        scalar["stage_seconds"]["geometry"]
        / vectorized["stage_seconds"]["geometry"]
    )
    return {
        "bench": "single-query KNN latency, vectorized vs per-record",
        "workload": {
            "videos": len(summaries),
            "vitris": index.num_vitris,
            "dim": index.dim,
            "epsilon": EPSILON,
            "k": K,
            "queries": len(queries),
        },
        "modes": {"scalar": scalar, "vectorized": vectorized},
        "speedup_p50": speedup,
        "geometry_stage_speedup": geometry_speedup,
    }


def check_gates(report, baseline_path):
    """Return a list of failure messages (empty = all gates pass)."""
    failures = []
    if report["speedup_p50"] < MIN_SPEEDUP:
        failures.append(
            f"vectorized p50 speedup {report['speedup_p50']:.2f}x is below "
            f"the {MIN_SPEEDUP:.1f}x gate"
        )
    if not os.path.exists(baseline_path):
        failures.append(
            f"missing committed baseline {baseline_path}; generate it with "
            "--update-baseline"
        )
        return failures
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    floor = baseline["geometry_stage_speedup"] * (
        1.0 - MAX_GEOMETRY_REGRESSION
    )
    if report["geometry_stage_speedup"] < floor:
        failures.append(
            "geometry stage regressed: speedup "
            f"{report['geometry_stage_speedup']:.2f}x < floor {floor:.2f}x "
            f"(baseline {baseline['geometry_stage_speedup']:.2f}x - 25%)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=OUTPUT_PATH,
        help="where to write BENCH_latency.json",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed geometry-speedup baseline",
    )
    args = parser.parse_args(argv)

    report = run_experiment()

    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print(f"workload: {report['workload']}")
    for impl, mode in report["modes"].items():
        shares = ", ".join(
            f"{stage}={mode['stage_share'][stage] * 100.0:.0f}%"
            for stage in STAGES
        )
        print(
            f"{impl:>10}: p50 {mode['p50_latency_ms']:7.2f} ms  ({shares})"
        )
    print(
        f"speedup: {report['speedup_p50']:.2f}x p50, "
        f"{report['geometry_stage_speedup']:.2f}x geometry stage"
    )
    print(f"wrote {args.output}")

    if args.update_baseline:
        os.makedirs(os.path.dirname(BASELINE_PATH), exist_ok=True)
        with open(BASELINE_PATH, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "bench": report["bench"],
                    "geometry_stage_speedup": report[
                        "geometry_stage_speedup"
                    ],
                    "speedup_p50": report["speedup_p50"],
                },
                handle,
                indent=1,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"baseline updated: {BASELINE_PATH}")
        return 0

    failures = check_gates(report, BASELINE_PATH)
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
