"""Extension — filter-and-refine: recovering exact quality at bounded cost.

The ViTri index filters cheaply but approximately; with raw frames at
hand, re-ranking the over-fetched top candidates with the exact frame-
level measure recovers precision while paying the quadratic frame cost
only on ``k * overfetch`` videos instead of the whole corpus.
"""

import numpy as np

import repro
from repro.eval import precision_at_k
from repro.eval.refine import refined_knn
from repro.eval import format_table

from _common import save_result

EPSILON = 0.3
K = 5
OVERFETCHES = (1, 2, 4)


def run_experiment(dataset, ground_truth, queries):
    summaries = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)

    mean_frames = dataset.total_frames / dataset.num_videos
    rows = []
    coarse_precision = []
    refined_by_overfetch = {o: [] for o in OVERFETCHES}
    for query_id in queries:
        relevant = ground_truth.top_k(query_id, K, EPSILON)
        coarse = index.knn(summaries[query_id], K).videos
        coarse_precision.append(precision_at_k(relevant, coarse))
        for overfetch in OVERFETCHES:
            refined = refined_knn(
                index, dataset, summaries, query_id, k=K, overfetch=overfetch
            ).videos
            refined_by_overfetch[overfetch].append(
                precision_at_k(relevant, refined)
            )

    rows.append(("index only", float(np.mean(coarse_precision)), 0))
    for overfetch in OVERFETCHES:
        exact_comparisons = round(K * overfetch * mean_frames**2)
        rows.append(
            (
                f"refined (overfetch {overfetch})",
                float(np.mean(refined_by_overfetch[overfetch])),
                exact_comparisons,
            )
        )
    exhaustive = round(dataset.num_videos * mean_frames**2)
    rows.append(("exhaustive exact", 1.0, exhaustive))

    table = format_table(
        ["method", f"precision@{K}", "exact frame comparisons / query"],
        rows,
        title=(
            f"Extension: filter-and-refine (epsilon = {EPSILON}, "
            f"{len(queries)} queries, {dataset.num_videos} videos)"
        ),
    )
    return table, coarse_precision, refined_by_overfetch


def test_ext_refine(
    benchmark, precision_dataset, precision_ground_truth, precision_queries
):
    table, coarse, refined = run_experiment(
        precision_dataset, precision_ground_truth, precision_queries
    )
    save_result("ext_refine", table)
    # Refinement never hurts, and more over-fetch never hurts.
    best = float(np.mean(refined[max(OVERFETCHES)]))
    assert best >= float(np.mean(coarse)) - 1e-9
    for small, large in zip(OVERFETCHES, OVERFETCHES[1:]):
        assert (
            float(np.mean(refined[large]))
            >= float(np.mean(refined[small])) - 1e-9
        )

    summaries = [
        repro.summarize_video(
            i, precision_dataset.frames(i), EPSILON, seed=i
        )
        for i in range(precision_dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)
    benchmark(
        lambda: refined_knn(
            index,
            precision_dataset,
            summaries,
            precision_queries[0],
            k=K,
        )
    )
