"""Figure 17 — I/O and CPU cost vs the number of ViTris.

Four methods at each scale: sequential scan, and the B+-tree index with
the space-centre, data-centre and optimal reference points.  Paper shape:
sequential scan worst, then space centre, then data centre; the optimal
reference point wins by a multiple, and the gap persists as N grows.

I/O cost = page accesses per query (B+-tree nodes + ViTri data pages);
CPU cost = ViTri similarity computations per query.
"""

import numpy as np

import repro
from repro.baselines import SequentialScan
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table

from _common import save_result, summarize_dataset

EPSILON = 0.3
SCALES = (100, 200, 400, 800)
NUM_QUERIES = 15
K = 50
METHODS = ("seqscan", "space_center", "data_center", "optimal")


def measure_scale(num_videos: int):
    config = DatasetConfig.indexing_preset(num_distractors=num_videos)
    dataset = generate_dataset(config, seed=17)
    summaries = summarize_dataset(dataset, EPSILON)
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    per_method = {}
    optimal_index = None
    for reference in ("space_center", "data_center", "optimal"):
        index = repro.VitriIndex.build(summaries, EPSILON, reference=reference)
        if reference == "optimal":
            optimal_index = index
        stats = [
            index.knn(summaries[q], K, cold=True).stats for q in queries
        ]
        per_method[reference] = aggregate_stats(stats)
    scan = SequentialScan(optimal_index)
    per_method["seqscan"] = aggregate_stats(
        [scan.knn(summaries[q], K).stats for q in queries]
    )
    return optimal_index.num_vitris, per_method


def run_experiment():
    rows = []
    io_series = {method: [] for method in METHODS}
    cpu_series = {method: [] for method in METHODS}
    for num_videos in SCALES:
        num_vitris, per_method = measure_scale(num_videos)
        for method in METHODS:
            io_series[method].append(per_method[method]["page_requests"])
            cpu_series[method].append(
                per_method[method]["similarity_computations"]
            )
        rows.append(
            (
                num_vitris,
                *(per_method[m]["page_requests"] for m in METHODS),
                *(per_method[m]["similarity_computations"] for m in METHODS),
            )
        )
    headers = (
        ["ViTris"]
        + [f"IO {m}" for m in METHODS]
        + [f"CPU {m}" for m in METHODS]
    )
    table = format_table(
        headers,
        rows,
        title=(
            f"Figure 17: cost vs number of ViTris (epsilon = {EPSILON}, "
            f"{NUM_QUERIES} queries, {K}-NN; IO = page accesses/query, "
            "CPU = similarity computations/query)"
        ),
    )
    return table, io_series, cpu_series


def test_fig17_scale_vitris(benchmark):
    table, io_series, cpu_series = run_experiment()
    save_result("fig17_scale_vitris", table)

    for i in range(len(SCALES)):
        # Paper ordering per scale: optimal <= data centre <= space
        # centre <= sequential scan (IO), with optimal strictly best.
        assert io_series["optimal"][i] < io_series["data_center"][i]
        assert io_series["data_center"][i] <= io_series["space_center"][i] + 1
        assert io_series["optimal"][i] < io_series["seqscan"][i]
        # CPU: every indexed method evaluates no more pairs than the scan.
        assert cpu_series["optimal"][i] < cpu_series["seqscan"][i]
        assert cpu_series["data_center"][i] <= cpu_series["seqscan"][i]
    # Costs grow with N for every method.
    for method in METHODS:
        assert io_series[method][-1] > io_series[method][0]
    # The optimal reference point wins by a meaningful multiple at the
    # largest scale (paper: 2-5x).
    ratio = io_series["seqscan"][-1] / io_series["optimal"][-1]
    assert ratio > 1.3

    config = DatasetConfig.indexing_preset(num_distractors=SCALES[0])
    dataset = generate_dataset(config, seed=17)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(summaries, EPSILON)
    benchmark(lambda: index.knn(summaries[0], K, cold=True))
