"""Ablation — reference-point placement beyond the variance segment.

Theorem 1 only requires the reference point to sit on the first principal
component's line *outside* the variance segment; the margin beyond the
segment is a free parameter.  This ablation sweeps the margin and reports
key variance and query I/O: any positive margin preserves the collinear
distances, so performance should be flat in the margin — which is itself
the interesting result (the theorem's "anywhere outside" claim).
"""

import repro
from repro.core.reference import OptimalReference
from repro.core.transform import OneDimensionalTransform, key_variance
from repro.eval import aggregate_stats, format_table

from _common import save_result

MARGINS = (0.01, 0.1, 0.5, 2.0)
K = 50
NUM_QUERIES = 12


def run_experiment(workload):
    dataset, summaries, _, epsilon = workload
    positions = [v.position for s in summaries for v in s.vitris]
    import numpy as np

    position_matrix = np.stack(positions)
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    rows = []
    io_by_margin = []
    variance_by_margin = []
    for margin in MARGINS:
        strategy = OptimalReference(margin=margin)
        transform = OneDimensionalTransform(strategy).fit(position_matrix)
        variance = key_variance(transform, position_matrix)
        index = repro.VitriIndex.build(summaries, epsilon, reference=strategy)
        stats = aggregate_stats(
            [index.knn(summaries[q], K, cold=True).stats for q in queries]
        )
        io_by_margin.append(stats["page_requests"])
        variance_by_margin.append(variance)
        rows.append((margin, variance, stats["page_requests"]))

    table = format_table(
        ["margin", "key variance", "page accesses / query"],
        rows,
        title=(
            "Ablation: reference-point margin beyond the variance segment "
            f"({len(position_matrix)} ViTris)"
        ),
    )
    return table, io_by_margin, variance_by_margin


def test_ablation_refpoint(benchmark, indexing_workload):
    table, io_by_margin, variance_by_margin = run_experiment(indexing_workload)
    save_result("ablation_refpoint", table)
    # Theorem 1: performance is insensitive to the margin (all placements
    # outside the segment are optimal).  Allow 25% slack for page-boundary
    # effects.
    assert max(io_by_margin) <= min(io_by_margin) * 1.25

    dataset, summaries, index, epsilon = indexing_workload
    benchmark(lambda: index.knn(summaries[0], K, cold=True))
