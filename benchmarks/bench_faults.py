"""Availability under injected faults — the resilient router's headline.

The fault sweep (:func:`repro.eval.faults.run_fault_benchmark`) drives
one seeded query stream through a 4-shard fleet five times: fault-free,
one shard hard-down, transiently failing, a permanent straggler (hedged),
and a straggler past the deadline.  Correctness is asserted *inside* the
sweep — degraded rankings equal the surviving-shards oracle, transient
retries recover the exact reference rankings and cost counters — so this
benchmark only has to gate on the serving numbers: availability and p99
latency, written to ``BENCH_faults.json`` (the artifact CI uploads).

Everything is deterministic (operation-count faults, seeded jitter,
virtual clock), so a failure here reproduces bit-for-bit.
"""

import json
import os

from repro.eval.faults import run_fault_benchmark
from repro.eval.serving import make_query_stream

from _common import save_result, summarize_dataset
from repro.datasets import generate_dataset
from repro.eval import format_table

EPSILON = 0.3
K = 10
NUM_QUERIES = 16
NUM_SHARDS = 4
SEED = 0

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_faults.json")


def run_experiment():
    dataset = generate_dataset(seed=7)
    summaries = summarize_dataset(dataset, EPSILON)
    stream = make_query_stream(
        summaries, NUM_QUERIES, seed=SEED, repeat_fraction=0.0
    )
    results = run_fault_benchmark(
        summaries,
        stream,
        K,
        epsilon=EPSILON,
        num_shards=NUM_SHARDS,
        seed=SEED,
    )
    rows = [
        (
            entry["scenario"],
            f"{entry['availability']:.3f}",
            entry["degraded_queries"],
            entry["retries"],
            entry["hedges"],
            entry["timeouts"],
            entry["breaker_trips"],
            f"{entry['latency_p99'] * 1e3:.1f}",
        )
        for entry in results["scenarios"]
    ]
    table = format_table(
        [
            "scenario",
            "avail",
            "degraded",
            "retries",
            "hedges",
            "timeouts",
            "trips",
            "p99 ms",
        ],
        rows,
        title=(
            f"fault sweep: {NUM_QUERIES} queries x "
            f"{len(results['scenarios'])} scenarios, k={K}, "
            f"{NUM_SHARDS} shards, {len(summaries)} videos"
        ),
    )
    return table, results, summaries, stream


def _write(results) -> None:
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)


def test_fault_availability(benchmark):
    table, results, summaries, stream = run_experiment()
    save_result("fault_availability", table)
    _write(results)

    # Acceptance: ≥ 99% of queries across the injected-fault sweep must
    # produce a usable answer (rankings already asserted inside the
    # sweep), and the report must show the machinery actually engaged.
    assert results["availability"] >= 0.99, results["availability"]
    assert results["total_retries"] > 0
    assert results["total_hedges"] > 0
    assert results["total_timeouts"] > 0
    assert results["total_breaker_trips"] > 0

    benchmark(
        lambda: run_fault_benchmark(
            summaries,
            stream[:4],
            K,
            epsilon=EPSILON,
            num_shards=NUM_SHARDS,
            seed=SEED,
        )
    )


if __name__ == "__main__":
    table, results, _, _ = run_experiment()
    save_result("fault_availability", table)
    _write(results)
    print(f"\nwrote {os.path.abspath(JSON_PATH)}")
    if results["availability"] < 0.99:
        raise SystemExit(
            f"availability {results['availability']:.4f} < 0.99 acceptance bar"
        )
