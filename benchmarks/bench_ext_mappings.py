"""Extension — the 1-D mapping shootout.

The paper's related work names two other classic high-dimensional-to-1-D
mappings: the Pyramid technique and the original multi-partition
iDistance (whose single-reference simplification the paper adopts).  This
bench runs all of them over the same records and B+-tree substrate.

Findings (asserted below):

* The pyramid technique prunes CPU work but loses badly on I/O at d = 64:
  a KNN sphere's bounding box spans the space centre, intersecting most
  of the 2d pyramids and triggering ~d range searches per query — the
  classic large-query weakness of space-partitioning mappings.
* Multi-partition iDistance also trails the single optimal reference at
  this query radius (gamma ~ 0.2 on a diameter-1 corpus): each query
  sphere intersects most partitions, so the search fragments into many
  short ranges, each paying its own tree descent — while per-partition
  references barely tighten bands that are already narrow.  The paper's
  Theorem-1 single reference point is the right call for this workload.
"""

import repro
from repro.baselines import MultiRefIndex, PyramidIndex, SequentialScan
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table

from _common import save_result, summarize_dataset

EPSILON = 0.3
NUM_VIDEOS = 400
NUM_QUERIES = 15
K = 50


def run_experiment():
    config = DatasetConfig.indexing_preset(num_distractors=NUM_VIDEOS)
    dataset = generate_dataset(config, seed=23)
    summaries = summarize_dataset(dataset, EPSILON)
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    optimal = repro.VitriIndex.build(summaries, EPSILON, reference="optimal")
    pyramid = PyramidIndex(optimal)
    multi_ref = MultiRefIndex(optimal, num_partitions=8)
    scan = SequentialScan(optimal)

    results = {}
    stats = {
        "optimal reference": aggregate_stats(
            [optimal.knn(summaries[q], K, cold=True).stats for q in queries]
        ),
        "multi-ref iDistance (8)": aggregate_stats(
            [multi_ref.knn(summaries[q], K, cold=True).stats for q in queries]
        ),
        "pyramid technique": aggregate_stats(
            [pyramid.knn(summaries[q], K, cold=True).stats for q in queries]
        ),
        "sequential scan": aggregate_stats(
            [scan.knn(summaries[q], K).stats for q in queries]
        ),
    }
    # All three indexes must return identical rankings.
    for q in queries[:5]:
        a = optimal.knn(summaries[q], K, cold=True)
        b = pyramid.knn(summaries[q], K, cold=True)
        c = multi_ref.knn(summaries[q], K, cold=True)
        results[q] = a.videos == b.videos == c.videos

    rows = [
        (
            method,
            agg["page_requests"],
            agg["similarity_computations"],
            agg["ranges"],
        )
        for method, agg in stats.items()
    ]
    table = format_table(
        ["method", "page accesses / query", "similarity computations", "ranges"],
        rows,
        title=(
            f"Extension: 1-D mappings ({optimal.num_vitris} ViTris, "
            f"epsilon = {EPSILON}, {NUM_QUERIES} queries, {K}-NN)"
        ),
    )
    return table, stats, results


def test_ext_mappings(benchmark):
    table, stats, results = run_experiment()
    save_result("ext_mappings", table)
    assert all(results.values()), "pyramid results diverged from the index"
    # The distance-based mapping beats the scan on I/O...
    assert (
        stats["optimal reference"]["page_requests"]
        < stats["sequential scan"]["page_requests"]
    )
    # ...and both indexed mappings prune CPU work relative to the scan.
    assert (
        stats["pyramid technique"]["similarity_computations"]
        < stats["sequential scan"]["similarity_computations"]
    )
    assert (
        stats["optimal reference"]["similarity_computations"]
        < stats["sequential scan"]["similarity_computations"]
    )
    # The documented finding: the pyramid technique's sphere-to-box blowup
    # costs it many range searches per query at this dimensionality.
    assert stats["pyramid technique"]["ranges"] > 10
    assert (
        stats["pyramid technique"]["page_requests"]
        > stats["optimal reference"]["page_requests"]
    )
    # Multi-partition iDistance fragments the search at this query radius
    # and does not beat the Theorem-1 single reference.
    assert (
        stats["multi-ref iDistance (8)"]["page_requests"]
        >= stats["optimal reference"]["page_requests"]
    )
    assert stats["multi-ref iDistance (8)"]["ranges"] > 1

    config = DatasetConfig.indexing_preset(num_distractors=100)
    dataset = generate_dataset(config, seed=23)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(summaries, EPSILON)
    pyramid = PyramidIndex(index)
    benchmark(lambda: pyramid.knn(summaries[0], K, cold=True))
