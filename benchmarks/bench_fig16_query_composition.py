"""Figure 16 — naive KNN processing vs query composition.

A query video summarises into several ViTris whose key ranges overlap;
the naive method runs one B+-tree range search per query ViTri and
re-reads the shared leaf and data pages, while query composition merges
the ranges first so each page is accessed at most once per query.

The workload uses a finer epsilon (more ViTris per query video, hence
more overlapping ranges) and longer videos than the Figure 17 base point.
"""

import numpy as np

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table

from _common import save_result, summarize_dataset

EPSILON = 0.22
NUM_QUERIES = 20
K = 50


def run_experiment():
    config = DatasetConfig.indexing_preset(
        num_distractors=250,
        scene_weight=9.0,
        palette_weight=12.0,
        duration_classes=((150, 0.6), (100, 0.4)),
    )
    dataset = generate_dataset(config, seed=16)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(summaries, EPSILON)
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    stats = {"naive": [], "composed": []}
    for method in ("naive", "composed"):
        for query_id in queries:
            result = index.knn(
                summaries[query_id], K, method=method, cold=True
            )
            stats[method].append(result.stats)

    naive = aggregate_stats(stats["naive"])
    composed = aggregate_stats(stats["composed"])
    rows = [
        (
            method,
            agg["page_requests"],
            agg["ranges"],
            agg["candidates"],
            agg["similarity_computations"],
        )
        for method, agg in (("naive", naive), ("composed", composed))
    ]
    mean_vitris = float(
        np.mean([len(summaries[q]) for q in queries])
    )
    table = format_table(
        [
            "method",
            "page accesses / query",
            "range searches",
            "candidates",
            "similarity computations",
        ],
        rows,
        title=(
            f"Figure 16: query processing methods (epsilon = {EPSILON}, "
            f"{index.num_vitris} ViTris, ~{mean_vitris:.1f} ViTris/query, "
            f"{NUM_QUERIES} queries)"
        ),
    )
    return table, naive, composed, index, summaries, queries


def test_fig16_query_composition(benchmark):
    table, naive, composed, index, summaries, queries = run_experiment()
    save_result("fig16_query_composition", table)
    # Paper shape: composition strictly reduces page accesses...
    assert composed["page_requests"] < naive["page_requests"]
    # ...without changing the evaluated (query ViTri, db ViTri) pairs.
    assert composed["similarity_computations"] == naive["similarity_computations"]

    query = summaries[queries[0]]
    benchmark(lambda: index.knn(query, K, method="composed", cold=True))
