"""Figure 15 — retrieval precision vs K (eps fixed at 0.3).

Paper shape: ViTri keeps a noticeable gap over the keyframe method across
K, and precision is not very sensitive to K (slightly rising for ViTri,
because a single miss hurts less as K grows).
"""

import numpy as np

import repro
from repro.baselines import keyframe_similarity, summarize_keyframes
from repro.eval import format_table, precision_at_k

from _common import save_result

EPSILON = 0.3
KS = (2, 4, 6, 8, 10)


def run_experiment(dataset, ground_truth, queries):
    rng = np.random.default_rng(123)
    summaries = [
        repro.summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, EPSILON)
    keyframes = [
        summarize_keyframes(i, dataset.frames(i), k=len(summaries[i]), seed=i)
        for i in range(dataset.num_videos)
    ]

    # Rank once per query, then slice per K.
    vitri_rankings = {}
    keyframe_rankings = {}
    for query_id in queries:
        vitri_rankings[query_id] = index.knn(
            summaries[query_id], dataset.num_videos
        ).videos
        tie_break = rng.permutation(dataset.num_videos)
        ranked = sorted(
            (
                (
                    keyframe_similarity(
                        keyframes[query_id], keyframes[v], EPSILON
                    ),
                    tie_break[v],
                    v,
                )
                for v in range(dataset.num_videos)
            ),
            reverse=True,
        )
        keyframe_rankings[query_id] = [video for _, _, video in ranked]

    rows = []
    series = {"vitri": [], "keyframe": []}
    for k in KS:
        precision_vitri = []
        precision_keyframe = []
        for query_id in queries:
            relevant = ground_truth.top_k(query_id, k, EPSILON)
            precision_vitri.append(
                precision_at_k(relevant, vitri_rankings[query_id][:k])
            )
            precision_keyframe.append(
                precision_at_k(relevant, keyframe_rankings[query_id][:k])
            )
        series["vitri"].append(float(np.mean(precision_vitri)))
        series["keyframe"].append(float(np.mean(precision_keyframe)))
        rows.append((k, series["vitri"][-1], series["keyframe"][-1]))

    table = format_table(
        ["K", "ViTri precision", "Keyframe precision"],
        rows,
        title=(
            f"Figure 15: precision vs K (epsilon = {EPSILON}, "
            f"{len(queries)} queries, {dataset.num_videos} videos)"
        ),
    )
    return table, series, index, summaries


def test_fig15_precision_vs_k(
    benchmark, precision_dataset, precision_ground_truth, precision_queries
):
    table, series, index, summaries = run_experiment(
        precision_dataset, precision_ground_truth, precision_queries
    )
    save_result("fig15_precision_vs_k", table)
    vitri = np.array(series["vitri"])
    keyframe = np.array(series["keyframe"])
    # Paper shape: ViTri above keyframe on average across the K sweep.
    assert vitri.mean() > keyframe.mean()
    # Paper shape: precision not very sensitive to K — total swing across
    # the sweep stays moderate.
    assert vitri.max() - vitri.min() <= 0.5

    query = summaries[precision_queries[0]]
    benchmark(lambda: index.knn(query, max(KS)))
