"""Online ingestion under live traffic — the ingest/cutover headline.

A durable 2-shard fleet serves a closed-loop reader while the
:class:`repro.ingest.IngestPipeline` commits a drifted insert stream in
WAL-batched transactions.  The stream's suffix is drawn from a rotated
frame distribution, so the attached :class:`repro.ingest.DriftMonitor`
crosses its principal-angle threshold mid-run and the router performs
at least one *online* reference-point rebuild — side-build in a sibling
generation directory, then an atomic ``epoch.json`` cutover — without
pausing reads.

Correctness is asserted *inside* the sweep
(:func:`repro.eval.ingest.run_ingest_benchmark`): at every checkpoint
the fleet's rankings — videos and scores — must bit-identically equal a
from-scratch :class:`~repro.core.index.VitriIndex` oracle over
everything ingested so far, across the cutover boundary.  A second
sweep (:func:`repro.eval.ingest.run_cutover_crash_sweep`) crashes the
rebuild at every disk operation and requires recovery to land on
exactly one of {old complete, new complete}.  This file gates on the
serving numbers — ingest throughput, read p95 during ingest vs idle,
oracle agreement, crash recovery — written to ``BENCH_ingest.json``
(the artifact CI uploads).
"""

import json
import os
import tempfile

import numpy as np

from repro.core.summarize import summarize_video
from repro.eval.ingest import run_cutover_crash_sweep, run_ingest_benchmark

from _common import save_result
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import format_table

EPSILON = 0.3
DIM = 8
INITIAL = DatasetConfig(dim=DIM, num_families=6, family_size=3, num_distractors=42)
STREAM = DatasetConfig(dim=DIM, num_families=6, family_size=3, num_distractors=62)
# The stream's tail is rotated (an axis roll of the frame space): the
# first principal component of the ingested positions swings away from
# the built transform's, which is exactly the drift the monitor gates.
DRIFT_AT_FRACTION = 1 / 3
K = 5
NUM_SHARDS = 2
BATCH_SIZE = 16
MAX_QUEUE = 64
# Group-commit window: a paced trickle coalesces into full batches, so
# the fleet pays one engine/cache invalidation per ~BATCH_SIZE writes.
LINGER = 0.3
DRIFT_MAX_ANGLE = 10.0
DRIFT_CHECK_EVERY = 12
ORACLE_CHECKPOINTS = 4
IDLE_QUERIES = 60
# Simulated per-read disk wait: large enough that query latency is
# dominated by deterministic sleeps (stable p95 ratios in CI), small
# enough that the run stays in seconds.
READ_LATENCY = 0.003
BUFFER_CAPACITY = 64
SEED = 0
# Offered write rate: one summary every PACE seconds (open loop), so the
# reader measures availability under a live stream rather than a burst
# that saturates the interpreter.
PACE = 0.02
SWEEP_VIDEOS = DatasetConfig(dim=6, num_families=2, family_size=3, num_distractors=4)

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_ingest.json")


def make_workload():
    dataset = generate_dataset(INITIAL, seed=7)
    initial = [
        summarize_video(i, dataset.frames(i), EPSILON, seed=i)
        for i in range(dataset.num_videos)
    ]
    tail = generate_dataset(STREAM, seed=11)
    rotation = np.roll(np.eye(DIM), 3, axis=0)
    drift_from = int(tail.num_videos * DRIFT_AT_FRACTION)
    stream = []
    for j in range(tail.num_videos):
        frames = tail.frames(j)
        if j >= drift_from:
            frames = frames @ rotation.T
        video_id = len(initial) + j
        stream.append(summarize_video(video_id, frames, EPSILON, seed=video_id))
    return initial, stream


def run_experiment():
    initial, stream = make_workload()
    with tempfile.TemporaryDirectory(prefix="bench-ingest-") as tmp:
        results = run_ingest_benchmark(
            os.path.join(tmp, "live"),
            initial,
            stream,
            epsilon=EPSILON,
            k=K,
            num_shards=NUM_SHARDS,
            batch_size=BATCH_SIZE,
            max_queue=MAX_QUEUE,
            linger=LINGER,
            drift_max_angle=DRIFT_MAX_ANGLE,
            drift_check_every=DRIFT_CHECK_EVERY,
            oracle_checkpoints=ORACLE_CHECKPOINTS,
            idle_queries=IDLE_QUERIES,
            buffer_capacity=BUFFER_CAPACITY,
            read_latency=READ_LATENCY,
            pace=PACE,
            seed=SEED,
        )
        sweep_set = generate_dataset(SWEEP_VIDEOS, seed=3)
        sweep_summaries = [
            summarize_video(i, sweep_set.frames(i), EPSILON, seed=i)
            for i in range(sweep_set.num_videos)
        ]
        results["crash_sweep"] = run_cutover_crash_sweep(
            os.path.join(tmp, "sweep"),
            sweep_summaries,
            epsilon=EPSILON,
            k=K,
        )

    sweep = results["crash_sweep"]
    rows = [
        (
            checkpoint["position"],
            f"{checkpoint['matched']}/{checkpoint['probes']}",
            checkpoint["rebuilds_so_far"],
        )
        for checkpoint in results["oracle_checkpoints"]
    ]
    table = format_table(
        ["ingested", "oracle match", "cutovers so far"],
        rows,
        title=(
            f"online ingest: {results['ingested']} summaries at "
            f"{results['ingest_throughput']:.0f}/s into {NUM_SHARDS} shards, "
            f"{results['queries_during_ingest']} concurrent reads "
            f"(p95 {results['p95_during_ms']:.2f} ms vs "
            f"{results['p95_idle_ms']:.2f} ms idle), "
            f"{results['rebuilds']} online rebuild(s); crash sweep "
            f"{sweep['recovered']}/{sweep['crash_points']} recovered "
            f"(old={sweep['outcomes']['old']}, new={sweep['outcomes']['new']})"
        ),
    )
    return table, results


def check_acceptance(results):
    # Acceptance: every checkpoint probe must match the from-scratch
    # oracle exactly (videos and scores, across >=1 live cutover), reads
    # must stay available while ingesting, the pipeline must sustain a
    # usable commit rate, and the crash sweep must recover from every
    # scripted fault onto exactly one side of the pointer.
    assert results["oracle_agreement"] == 1.0, results["oracle_agreement"]
    assert results["rejected"] == 0, results["rejected"]
    assert results["rebuilds"] >= 1, results["rebuilds"]
    assert results["ingest_throughput"] >= 20.0, results["ingest_throughput"]
    assert results["p95_during_ms"] <= 2.0 * results["p95_idle_ms"], (
        results["p95_during_ms"],
        results["p95_idle_ms"],
    )
    sweep = results["crash_sweep"]
    assert sweep["recovered"] == sweep["crash_points"], sweep
    assert sweep["outcomes"]["old"] > 0 and sweep["outcomes"]["new"] > 0, sweep


def test_ingest_under_live_traffic(benchmark):
    table, results = run_experiment()
    save_result("ingest_live_traffic", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    check_acceptance(results)

    benchmark(make_workload)


if __name__ == "__main__":
    table, results = run_experiment()
    save_result("ingest_live_traffic", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {os.path.abspath(JSON_PATH)}")
    check_acceptance(results)
