"""Figure 14 — retrieval precision vs epsilon: ViTri vs keyframe.

The paper's headline effectiveness result: both methods lose precision as
eps grows (looser clusters represent the original frames less faithfully),
and ViTri beats the keyframe method at every eps because it retains each
cluster's volume and density instead of reducing it to a centre point with
a binary threshold.

Protocol (scaled from 50 queries / 50-NN on 6,500 videos): one query per
near-duplicate family, K = 5, ground truth by exact frame-level
similarity.  Keyframe summaries get the same budget (as many keyframes as
ViTri has clusters) and random tie-breaking (the binary threshold measure
produces massive ties; breaking them by video id would copy the ground
truth's own tie-break and overstate the baseline).
"""

import numpy as np

import repro
from repro.baselines import keyframe_similarity, summarize_keyframes
from repro.eval import format_table, precision_at_k

from _common import save_result

EPSILONS = (0.2, 0.3, 0.4, 0.5)
K = 5


def keyframe_topk(keyframes, query_id, num_videos, epsilon, k, rng):
    tie_break = rng.permutation(num_videos)
    ranked = sorted(
        (
            (
                keyframe_similarity(keyframes[query_id], keyframes[v], epsilon),
                tie_break[v],
                v,
            )
            for v in range(num_videos)
        ),
        reverse=True,
    )
    return [video for _, _, video in ranked[:k]]


def run_experiment(dataset, ground_truth, queries):
    rng = np.random.default_rng(99)
    rows = []
    series = {"vitri": [], "keyframe": []}
    for epsilon in EPSILONS:
        summaries = [
            repro.summarize_video(i, dataset.frames(i), epsilon, seed=i)
            for i in range(dataset.num_videos)
        ]
        index = repro.VitriIndex.build(summaries, epsilon)
        keyframes = [
            summarize_keyframes(
                i, dataset.frames(i), k=len(summaries[i]), seed=i
            )
            for i in range(dataset.num_videos)
        ]
        precision_vitri = []
        precision_keyframe = []
        for query_id in queries:
            relevant = ground_truth.top_k(query_id, K, epsilon)
            retrieved = index.knn(summaries[query_id], K).videos
            precision_vitri.append(precision_at_k(relevant, retrieved))
            retrieved_kf = keyframe_topk(
                keyframes, query_id, dataset.num_videos, epsilon, K, rng
            )
            precision_keyframe.append(precision_at_k(relevant, retrieved_kf))
        series["vitri"].append(float(np.mean(precision_vitri)))
        series["keyframe"].append(float(np.mean(precision_keyframe)))
        rows.append((epsilon, series["vitri"][-1], series["keyframe"][-1]))
    table = format_table(
        ["epsilon", "ViTri precision", "Keyframe precision"],
        rows,
        title=(
            f"Figure 14: precision vs epsilon ({len(queries)} queries, "
            f"{K}-NN, {dataset.num_videos} videos)"
        ),
    )
    return table, series


def test_fig14_precision_vs_epsilon(
    benchmark, precision_dataset, precision_ground_truth, precision_queries
):
    table, series = run_experiment(
        precision_dataset, precision_ground_truth, precision_queries
    )
    save_result("fig14_precision_vs_epsilon", table)
    vitri = series["vitri"]
    keyframe = series["keyframe"]
    # Paper shape 1: ViTri meets or beats keyframe at every epsilon and
    # wins on average.
    assert all(v >= k - 0.05 for v, k in zip(vitri, keyframe))
    assert float(np.mean(vitri)) > float(np.mean(keyframe))
    # Paper shape 2: precision declines as epsilon loosens.
    assert vitri[0] > vitri[-1]

    # Benchmark the core operation: one indexed KNN query.
    epsilon = 0.3
    summaries = [
        repro.summarize_video(
            i, precision_dataset.frames(i), epsilon, seed=i
        )
        for i in range(precision_dataset.num_videos)
    ]
    index = repro.VitriIndex.build(summaries, epsilon)
    query = summaries[precision_queries[0]]
    benchmark(lambda: index.knn(query, K))
