"""Benchmark fixtures.

The precision workload (Figures 14-15) and the indexing workload
(Figures 16-19) are session-scoped: several benches share them.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import repro
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import GroundTruthCache

from _common import summarize_dataset

PRECISION_EPSILON = 0.3


@pytest.fixture(scope="session")
def precision_dataset():
    """Workload for Figures 14-15: near-duplicate families, 50 queries'
    worth of family sources, frame-level ground truth."""
    config = DatasetConfig.precision_preset(
        num_families=10,
        family_size=6,
        num_distractors=20,
        duration_classes=((60, 0.5), (40, 0.5)),
    )
    return generate_dataset(config, seed=2005)


@pytest.fixture(scope="session")
def precision_ground_truth(precision_dataset):
    return GroundTruthCache(precision_dataset)


@pytest.fixture(scope="session")
def precision_queries(precision_dataset):
    """One query per family (the family source), like the paper's
    50-query average over database members."""
    return [
        precision_dataset.family_members(family)[0]
        for family in precision_dataset.families
    ]


@pytest.fixture(scope="session")
def indexing_workload():
    """Workload for Figure 16/17 base point: 400 videos, eps = 0.3."""
    config = DatasetConfig.indexing_preset(num_distractors=400)
    dataset = generate_dataset(config, seed=41)
    epsilon = 0.3
    summaries = summarize_dataset(dataset, epsilon)
    index = repro.VitriIndex.build(summaries, epsilon)
    return dataset, summaries, index, epsilon
