"""Extension — temporal-order-aware similarity (the paper's future work).

Two questions:

1. *Discrimination*: the order-robust ViTri measure cannot tell a true
   re-recording from a scene-shuffled re-cut; the temporal alignment
   (weighted monotone alignment of the ViTri sequences) can, at cluster
   granularity instead of the warping distance's frame granularity.
2. *Cost*: the warping distance pays O(|X| * |Y|) frame-level work per
   pair; the temporal ViTri alignment pays O(M_X * M_Y) cluster-level
   work — the same summary-level saving the paper's order-robust measure
   enjoys.

The workload is purpose-built: videos with several well-separated scenes
(so each scene becomes one ViTri), a faithful re-recording of each, and a
scene-shuffled re-cut of each.
"""

import numpy as np

import repro
from repro.eval import format_table
from repro.temporal import temporal_video_similarity, warping_distance

from _common import save_result

EPSILON = 0.3
NUM_SOURCES = 8
NUM_SCENES = 5
FRAMES_PER_SCENE = 14
DIM = 32


def render(anchors, rng, jitter=0.008):
    """Frames jittering around a sequence of scene anchors."""
    frames = []
    for anchor in anchors:
        noise = rng.normal(0.0, jitter, (FRAMES_PER_SCENE, DIM))
        block = np.clip(anchor[None, :] + noise, 0.0, None)
        frames.append(block / block.sum(axis=1, keepdims=True))
    return np.vstack(frames)


def run_experiment():
    rng = np.random.default_rng(31)
    rows = []
    robust_gaps = []
    temporal_gaps = []
    frame_ops = []
    cluster_ops = []
    for family in range(NUM_SOURCES):
        anchors = [
            rng.dirichlet(np.full(DIM, 0.1)) for _ in range(NUM_SCENES)
        ]
        source_frames = render(anchors, rng)
        copy_frames = render(anchors, rng)  # fresh jitter = re-recording
        order = rng.permutation(NUM_SCENES)
        shuffled_frames = render([anchors[i] for i in order], rng)

        source = repro.summarize_video(0, source_frames, EPSILON, seed=0)
        copy = repro.summarize_video(1, copy_frames, EPSILON, seed=1)
        shuffled = repro.summarize_video(2, shuffled_frames, EPSILON, seed=2)

        robust_copy = repro.video_similarity(source, copy)
        robust_shuffled = repro.video_similarity(source, shuffled)
        temporal_copy = temporal_video_similarity(source, copy)
        temporal_shuffled = temporal_video_similarity(source, shuffled)

        robust_gaps.append(1.0 - robust_shuffled / max(robust_copy, 1e-12))
        temporal_gaps.append(
            1.0 - temporal_shuffled / max(temporal_copy, 1e-12)
        )
        frame_ops.append(len(source_frames) * len(copy_frames))
        cluster_ops.append(len(source) * len(copy))
        rows.append(
            (
                family,
                round(robust_copy, 3),
                round(robust_shuffled, 3),
                round(temporal_copy, 3),
                round(temporal_shuffled, 3),
            )
        )

    table = format_table(
        [
            "family",
            "robust(copy)",
            "robust(shuffled)",
            "temporal(copy)",
            "temporal(shuffled)",
        ],
        rows,
        title=(
            "Extension: temporal alignment vs order-robust measure "
            f"(epsilon = {EPSILON}; frame-pair ops/pair "
            f"{np.mean(frame_ops):.0f} vs cluster-pair ops/pair "
            f"{np.mean(cluster_ops):.0f})"
        ),
    )
    return table, robust_gaps, temporal_gaps, rng


def test_ext_temporal(benchmark):
    table, robust_gaps, temporal_gaps, rng = run_experiment()
    save_result("ext_temporal", table)
    # Gaps are relative score drops: 1 - sim(shuffled)/sim(copy).
    # The order-robust measure cannot distinguish a faithful copy from a
    # shuffled re-cut (relative drop ~0 by construction of the measure)...
    assert abs(float(np.mean(robust_gaps))) < 0.15
    # ...while the temporal alignment penalises the re-cut by a clear
    # relative margin.
    assert float(np.mean(temporal_gaps)) > 0.2
    assert float(np.mean(temporal_gaps)) > float(np.mean(robust_gaps)) + 0.15

    anchors = [rng.dirichlet(np.full(DIM, 0.1)) for _ in range(NUM_SCENES)]
    source = repro.summarize_video(0, render(anchors, rng), EPSILON, seed=0)
    copy = repro.summarize_video(1, render(anchors, rng), EPSILON, seed=1)
    benchmark(lambda: temporal_video_similarity(source, copy))


def test_ext_temporal_warping_cost(benchmark):
    """The comparator the summary avoids: frame-level DTW per pair."""
    rng = np.random.default_rng(5)
    anchors = [rng.dirichlet(np.full(DIM, 0.1)) for _ in range(NUM_SCENES)]
    x = render(anchors, rng)
    y = render(anchors, rng)
    assert warping_distance(x, y, normalise=True) < warping_distance(
        x, y[::-1], normalise=True
    )
    benchmark(lambda: warping_distance(x, y))
