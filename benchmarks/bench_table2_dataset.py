"""Table 2 — dataset statistics.

The paper's corpus: 6,500 TV advertisements in three duration classes
(30 s / 15 s / 10 s at PAL 25 fps).  This bench generates the synthetic
equivalent at 1/30 of the video count and 1/5 of the frame rate-duration
product, and prints the same three-row table (duration class, number of
videos, number of frames).
"""

from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import format_table

from _common import save_result

# Paper: (frames/video, count) = (750, 2934), (375, 2519), (250, 1134).
# Scaled: frames / 5, counts / 30.
DURATION_CLASSES = ((150, 2934.0), (75, 2519.0), (50, 1134.0))
NUM_VIDEOS = (2934 + 2519 + 1134) // 30


def build_dataset():
    config = DatasetConfig(
        num_families=0,
        family_size=1,
        num_distractors=NUM_VIDEOS,
        duration_classes=DURATION_CLASSES,
    )
    return generate_dataset(config, seed=2)


def run_experiment():
    dataset = build_dataset()
    rows = [
        (length, videos, frames)
        for length, videos, frames in dataset.duration_table()
    ]
    table = format_table(
        ["Frames per video", "Number of videos", "Number of frames"],
        rows,
        title=(
            "Table 2 (scaled 1/30 videos, 1/5 frames): synthetic dataset "
            "statistics"
        ),
    )
    return table, dataset


def test_table2_dataset(benchmark):
    table, dataset = run_experiment()
    save_result("table2_dataset", table)
    assert dataset.num_videos == NUM_VIDEOS
    # The duration mix follows the paper's proportions: the longest class
    # dominates the frame count.
    rows = dataset.duration_table()
    assert rows[0][2] > rows[-1][2]
    benchmark(lambda: dataset.duration_table())
