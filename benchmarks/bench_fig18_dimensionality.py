"""Figure 18 — I/O and CPU cost vs feature-space dimensionality.

Paper shape: all costs grow with dimensionality (a 1-D mapping loses
relatively more information in higher dimensions), the method ordering of
Figure 17 is preserved at every dimensionality, and the optimal reference
point's cost grows more slowly than data-centre / space-centre.
"""

import repro
from repro.baselines import SequentialScan
from repro.datasets import DatasetConfig, generate_dataset
from repro.eval import aggregate_stats, format_table

from _common import save_result, summarize_dataset

EPSILON = 0.3
DIMENSIONS = (16, 32, 48, 64)
NUM_VIDEOS = 250
NUM_QUERIES = 15
K = 50
METHODS = ("seqscan", "space_center", "data_center", "optimal")


def measure_dimension(dim: int):
    config = DatasetConfig.indexing_preset(
        dim=dim, num_distractors=NUM_VIDEOS
    )
    dataset = generate_dataset(config, seed=18)
    summaries = summarize_dataset(dataset, EPSILON)
    queries = list(range(0, 2 * NUM_QUERIES, 2))

    per_method = {}
    optimal_index = None
    for reference in ("space_center", "data_center", "optimal"):
        index = repro.VitriIndex.build(summaries, EPSILON, reference=reference)
        if reference == "optimal":
            optimal_index = index
        per_method[reference] = aggregate_stats(
            [index.knn(summaries[q], K, cold=True).stats for q in queries]
        )
    scan = SequentialScan(optimal_index)
    per_method["seqscan"] = aggregate_stats(
        [scan.knn(summaries[q], K).stats for q in queries]
    )
    return per_method


def run_experiment():
    rows = []
    io_series = {method: [] for method in METHODS}
    for dim in DIMENSIONS:
        per_method = measure_dimension(dim)
        for method in METHODS:
            io_series[method].append(per_method[method]["page_requests"])
        rows.append(
            (
                dim,
                *(per_method[m]["page_requests"] for m in METHODS),
                *(per_method[m]["similarity_computations"] for m in METHODS),
            )
        )
    headers = (
        ["dim"]
        + [f"IO {m}" for m in METHODS]
        + [f"CPU {m}" for m in METHODS]
    )
    table = format_table(
        headers,
        rows,
        title=(
            f"Figure 18: cost vs dimensionality ({NUM_VIDEOS} videos, "
            f"epsilon = {EPSILON}, {NUM_QUERIES} queries, {K}-NN)"
        ),
    )
    return table, io_series


def test_fig18_dimensionality(benchmark):
    table, io_series = run_experiment()
    save_result("fig18_dimensionality", table)

    for i in range(len(DIMENSIONS)):
        # Method ordering preserved at every dimensionality.
        assert io_series["optimal"][i] <= io_series["data_center"][i]
        assert io_series["optimal"][i] < io_series["seqscan"][i]
    # I/O grows with dimensionality for every method (larger records,
    # lossier 1-D mapping).
    for method in METHODS:
        assert io_series[method][-1] > io_series[method][0]
    # The optimal reference point's growth is the slowest among the
    # indexed methods (paper: it offsets part of the dimensionality
    # penalty).
    growth_optimal = io_series["optimal"][-1] / io_series["optimal"][0]
    growth_space = io_series["space_center"][-1] / io_series["space_center"][0]
    assert growth_optimal <= growth_space * 1.1

    config = DatasetConfig.indexing_preset(dim=32, num_distractors=100)
    dataset = generate_dataset(config, seed=18)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(summaries, EPSILON)
    benchmark(lambda: index.knn(summaries[0], K, cold=True))
