"""Serving throughput — the concurrent query engine vs a single worker.

Beyond the paper's per-query cost figures: a serving layer's value is
measured in sustained queries per second against a disk-bound index.
The workload builds the index over a pager with a simulated per-read
disk latency (reads sleep outside the pager lock, so concurrent workers
overlap their waits exactly like outstanding requests against one disk),
then sweeps :class:`repro.core.engine.QueryEngine` worker counts over a
seeded, repetition-skewed query stream.

Every configuration is asserted to return the serial rankings, and the
full metrics (QPS, latency percentiles, cache behaviour, per-worker I/O)
are written to ``BENCH_serving.json`` — the artifact CI uploads.
"""

import json
import os

import repro
from repro.eval.serving import make_query_stream, run_serving_benchmark
from repro.storage.buffer_pool import BufferPool
from repro.storage.pager import Pager

from _common import save_result, summarize_dataset
from repro.datasets import generate_dataset
from repro.eval import format_table

EPSILON = 0.3
K = 10
NUM_QUERIES = 24
SKEW = 1.1  # zipf exponent: hot-key traffic, the shape real logs have
READ_LATENCY = 0.002
BUFFER_CAPACITY = 32
CACHE_SIZE = 128
WORKER_COUNTS = (1, 2, 4)

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_serving.json")


def run_experiment():
    dataset = generate_dataset(seed=7)
    summaries = summarize_dataset(dataset, EPSILON)
    index = repro.VitriIndex.build(
        summaries,
        EPSILON,
        btree_pool=BufferPool(
            Pager(read_latency=READ_LATENCY), capacity=BUFFER_CAPACITY
        ),
    )
    stream = make_query_stream(summaries, NUM_QUERIES, seed=0, skew=SKEW)
    results = run_serving_benchmark(
        index,
        stream,
        K,
        worker_counts=WORKER_COUNTS,
        buffer_capacity=BUFFER_CAPACITY,
        cache_size=CACHE_SIZE,
        cold=True,
    )
    results["skew"] = SKEW
    rows = [
        (
            run["workers"],
            f"{run['qps']:.1f}",
            f"{run['speedup_vs_single']:.2f}x",
            f"{run['latency_p50'] * 1e3:.1f}",
            f"{run['latency_p95'] * 1e3:.1f}",
            f"{run['cache_hit_rate']:.2f}",
            run["total_physical_reads"],
        )
        for run in results["runs"]
    ]
    table = format_table(
        ["workers", "QPS", "speedup", "p50 ms", "p95 ms", "hit rate", "reads"],
        rows,
        title=(
            f"serving throughput: {NUM_QUERIES} queries, k={K}, "
            f"{READ_LATENCY * 1e3:.0f} ms/read simulated disk, "
            f"{index.num_vitris} ViTris"
        ),
    )
    return table, results, index, stream


def test_serving_throughput(benchmark):
    table, results, index, stream = run_experiment()
    save_result("serving_throughput", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    # Acceptance: concurrency must at least double throughput on the
    # disk-bound workload (waits overlap; rankings already asserted
    # identical inside run_serving_benchmark).
    assert results["max_speedup"] >= 2.0, results["max_speedup"]

    engine = repro.QueryEngine(
        index, buffer_capacity=BUFFER_CAPACITY, cache_size=CACHE_SIZE
    )
    benchmark(
        lambda: engine.knn_many(stream, K, workers=4, cold=True)
    )


if __name__ == "__main__":
    table, results, _, _ = run_experiment()
    save_result("serving_throughput", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {os.path.abspath(JSON_PATH)}")
    if results["max_speedup"] < 2.0:
        raise SystemExit(
            f"speedup {results['max_speedup']:.2f}x < 2.0x acceptance bar"
        )
