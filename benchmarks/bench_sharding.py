"""Scatter-gather scaling — the sharded router vs one shard.

The sharded database's value proposition: a query scattered across N
shards waits on N disks concurrently, so on a disk-bound fleet its
latency approaches the slowest shard's share of the work instead of the
whole index's.  The workload builds fleets of 1/2/4 shards over the same
summaries (key-range placement, fitted boundaries), each shard over
pagers with a simulated per-read disk latency, then serves one seeded
query stream through every fleet.

Every fleet size is asserted to return the 1-shard rankings (done inside
:func:`repro.eval.sharding.run_sharding_benchmark`), and the full metrics
(QPS, latency percentiles, prune rate, per-shard I/O) are written to
``BENCH_sharding.json`` — the artifact CI uploads.
"""

import json
import os

from repro.eval.sharding import build_fleet, run_sharding_benchmark
from repro.eval.serving import make_query_stream

from _common import save_result, summarize_dataset
from repro.datasets import generate_dataset
from repro.eval import format_table

EPSILON = 0.3
K = 10
NUM_QUERIES = 16
READ_LATENCY = 0.002
BUFFER_CAPACITY = 32
SHARD_COUNTS = (1, 2, 4)

JSON_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sharding.json")


def run_experiment():
    dataset = generate_dataset(seed=7)
    summaries = summarize_dataset(dataset, EPSILON)
    stream = make_query_stream(summaries, NUM_QUERIES, seed=0, repeat_fraction=0.0)
    results = run_sharding_benchmark(
        summaries,
        stream,
        K,
        epsilon=EPSILON,
        shard_counts=SHARD_COUNTS,
        partitioner="key_range",
        read_latency=READ_LATENCY,
        buffer_capacity=BUFFER_CAPACITY,
        cache_size=0,
        cold=True,
    )
    rows = [
        (
            run["shards"],
            f"{run['qps']:.1f}",
            f"{run['speedup_vs_single']:.2f}x",
            f"{run['latency_p50'] * 1e3:.1f}",
            f"{run['latency_p95'] * 1e3:.1f}",
            f"{run['pruned_fraction']:.2f}",
            run["total_physical_reads"],
        )
        for run in results["runs"]
    ]
    table = format_table(
        ["shards", "QPS", "speedup", "p50 ms", "p95 ms", "pruned", "reads"],
        rows,
        title=(
            f"scatter-gather scaling: {NUM_QUERIES} queries, k={K}, "
            f"{READ_LATENCY * 1e3:.0f} ms/read simulated disk, "
            f"{len(summaries)} videos"
        ),
    )
    return table, results, summaries, stream


def test_sharding_scaling(benchmark):
    table, results, summaries, stream = run_experiment()
    save_result("sharding_scaling", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)

    # Acceptance: scattering across 4 shards must beat one shard by at
    # least 1.5x on the disk-bound workload (per-shard waits overlap;
    # rankings already asserted identical inside the sweep).
    assert results["max_speedup"] >= 1.5, results["max_speedup"]

    fleet = build_fleet(
        summaries,
        4,
        epsilon=EPSILON,
        partitioner="key_range",
        read_latency=READ_LATENCY,
        buffer_capacity=BUFFER_CAPACITY,
        cache_size=0,
    )
    benchmark(lambda: fleet.serve_many(stream, K, cold=True))


if __name__ == "__main__":
    table, results, _, _ = run_experiment()
    save_result("sharding_scaling", table)
    with open(os.path.abspath(JSON_PATH), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {os.path.abspath(JSON_PATH)}")
    if results["max_speedup"] < 1.5:
        raise SystemExit(
            f"speedup {results['max_speedup']:.2f}x < 1.5x acceptance bar"
        )
