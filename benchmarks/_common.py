"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` reproduces one table or figure from the paper's
Section 6: it builds the workload, runs the experiment once, prints the
paper-style table, and writes it to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference the measured numbers.  A ``pytest-benchmark``
hook additionally times the experiment's core operation.

Scales are reduced from the paper's 6,500-video corpus to keep the whole
suite re-runnable in minutes; every bench states its workload in the
output header.
"""

from __future__ import annotations

import os

import repro
from repro.datasets import generate_dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    """Print an experiment table and persist it under benchmarks/results."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def summarize_dataset(dataset, epsilon: float, seed_base: int = 0):
    """Summarise every video of a dataset with deterministic seeds."""
    return [
        repro.summarize_video(
            video_id, dataset.frames(video_id), epsilon, seed=seed_base + video_id
        )
        for video_id in range(dataset.num_videos)
    ]


def build_workload(config, epsilon: float, *, seed: int, reference="optimal"):
    """Dataset + summaries + index for one experiment."""
    dataset = generate_dataset(config, seed=seed)
    summaries = summarize_dataset(dataset, epsilon)
    index = repro.VitriIndex.build(summaries, epsilon, reference=reference)
    return dataset, summaries, index
